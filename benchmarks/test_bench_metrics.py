"""The cost of the metrics layer when it is switched off.

The instrumentation contract of :mod:`repro.obs.metrics` is that the
disabled fast path is cheap enough to leave in every hot loop: one
global load and one attribute check per call, no argument packing, no
allocation.  This bench holds the replay engine to that promise with an
analytic bound: measure the real per-call cost of a disabled module
function, count the instrumentation touches a replay actually makes
(kernel events, batches, decisions), and require the product to stay
under 3% of the replay's measured wall time.
"""

from __future__ import annotations

from repro import perf
from repro.experiments.config import TINY
from repro.experiments.workload import build_workload
from repro.obs import metrics as obs_metrics
from repro.wlan.replay import ReplayEngine
from repro.wlan.strategies import LeastLoadedFirst

#: Disabled no-op calls timed to estimate the per-call cost.
DISABLED_CALLS = 200_000

#: Maximum tolerated overhead of metrics-off instrumentation.
OVERHEAD_BUDGET = 0.03


def _disabled_call_seconds() -> float:
    """Measured wall seconds per disabled module-function call."""
    registry = perf.PerfRegistry()
    inc = obs_metrics.inc
    with registry.timer("disabled"):
        for _ in range(DISABLED_CALLS):
            inc("replay.decisions", 1.0, 0.0)
    return registry.total("disabled") / DISABLED_CALLS


def test_bench_metrics_disabled_overhead(benchmark, report_writer):
    workload = build_workload(TINY)
    metrics_registry = obs_metrics.get_metrics()
    assert not metrics_registry.enabled, "bench must run metrics-off"

    engine = ReplayEngine(
        workload.world.layout, LeastLoadedFirst(), workload.config.replay
    )
    wall = perf.PerfRegistry()

    def run():
        with wall.timer("replay"):
            return engine.run(workload.test_demands)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    stat = wall.timers()["replay"]
    replay_seconds = stat.minimum

    per_call = _disabled_call_seconds()
    # Touches per replay when disabled: one branch per kernel event plus
    # a handful of guarded call sites per decision/batch/sampler tick —
    # bounded generously by 4 full module-function calls per session.
    touches = result.events_processed + 4 * len(result.sessions)
    overhead = touches * per_call / replay_seconds

    report_writer(
        "micro_metrics_overhead",
        f"metrics-off replay overhead: {overhead * 100:.3f}% "
        f"({touches} touches x {per_call * 1e9:.0f}ns over "
        f"{replay_seconds:.3f}s replay)",
        benchmark=benchmark,
        metrics={
            "events": int(result.events_processed),
            "sessions": len(result.sessions),
            "touches": int(touches),
            "disabled_call_ns": per_call * 1e9,
            "replay_min_s": replay_seconds,
            "overhead_frac": overhead,
        },
    )
    assert metrics_registry.enabled is False
    assert not metrics_registry, "disabled run must not create series"
    assert overhead < OVERHEAD_BUDGET, (
        f"metrics-off instrumentation costs {overhead * 100:.2f}% of replay "
        f"wall time (budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
