"""Bench: delta(u, v) forecasts the evaluation days' co-leavings.

Section IV claims the social relation index "can effectively forecast the
co-leaving events"; the paper never quantifies it.  This bench does: AUC
of delta over (co-leaving, non-co-leaving) pairs of the held-out days.

Shape: the full index clearly beats chance, and the pair-history term
adds forecast power beyond the type prior alone.
"""

from conftest import run_once

from repro.experiments import forecast
from repro.experiments.config import PAPER


def test_forecast_coleavings(benchmark, paper_workload, paper_model, report_writer):
    result = run_once(benchmark, lambda: forecast.run(PAPER))
    report_writer(
        "forecast_coleavings",
        result.render(),
        benchmark=benchmark,
        metrics={
            "auc_full": result.auc_full,
            "auc_type_only": result.auc_type_only,
            "precision_at_k": result.precision_at_k,
            "n_positive_pairs": int(result.n_positive_pairs),
            "n_scored_pairs": int(result.n_scored_pairs),
        },
    )

    assert result.n_positive_pairs > 200
    # Clearly better than chance.
    assert result.auc_full > 0.7
    # The pair-history term carries signal beyond the type prior.
    assert result.auc_full > result.auc_type_only + 0.02
    # The type prior alone is already informative (Table I's content).
    assert result.auc_type_only > 0.55
    # Top-ranked pairs are enriched far above the base rate.
    base_rate = result.n_positive_pairs / result.n_scored_pairs
    assert result.precision_at_k > 5 * base_rate
