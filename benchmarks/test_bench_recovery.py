"""Benchmark crash recovery: snapshot restore plus full WAL replay.

The robustness budget of the supervised controller service (PR 10): a
controller that dies must be back — snapshot loaded, unpickled, global
observability state rolled back, and the *entire* write-ahead-log
suffix replayed through the live submission path — in **under one
second** for a 1k-event WAL.  The scenario is the worst case a cadence
snapshot allows: only the genesis snapshot exists, so recovery replays
every event the run ever delivered.

The companion JSON (``out/bench_recovery.json``) carries the restore
wall time and replay throughput; its pytest-benchmark timing is gated
against ``baselines/bench_recovery.json`` by ``scripts/bench_check.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

from repro import perf
from repro.faults import FaultPlan
from repro.service.checkpoint import restore_checkpoint
from repro.service.loop import ControllerService
from repro.service.supervisor import Supervisor, read_wal
from repro.service.workload import WorkloadSpec

from conftest import run_once

_SPEC = WorkloadSpec(users=64, aps=8, events=1000, seed=17)
_MAX_RECOVERY_SECONDS = 1.0


def _recover(supervisor: Supervisor) -> Tuple[float, int, ControllerService]:
    """One cold recovery: load, restore, replay the whole WAL suffix."""
    start = perf.wall_seconds()
    checkpoint = supervisor._load_latest_checkpoint()
    service = restore_checkpoint(checkpoint, supervisor.fingerprint)
    replayed = 0
    for event in read_wal(supervisor.wal_path):
        if event.seq >= checkpoint.next_seq:
            service.submit(event)
            replayed += 1
    service.drain()
    return perf.wall_seconds() - start, replayed, service


def test_bench_recovery(benchmark, report_writer, tmp_path: Path) -> None:
    # A huge cadence keeps the genesis snapshot as the only one, so the
    # recovery below replays the complete 1k-event WAL.
    supervisor = Supervisor(
        _SPEC, FaultPlan(), tmp_path, snapshot_every=10_000
    )
    supervisor.run()
    assert supervisor.snapshots_taken == 1

    elapsed, replayed, service = run_once(
        benchmark, lambda: _recover(supervisor)
    )
    assert replayed == _SPEC.events
    assert service.events_processed == _SPEC.events
    events_per_sec = replayed / elapsed if elapsed > 0 else float("inf")

    text = "\n".join(
        [
            "--- bench: crash recovery (restore + full WAL replay) ---",
            f"wal_events           {replayed}",
            f"recovery_s           {elapsed:.4f}",
            f"replay_events_per_s  {events_per_sec:,.0f}",
            f"decisions_rederived  {service.admission.decisions}",
        ]
    )
    report_writer(
        "bench_recovery",
        text,
        benchmark=benchmark,
        metrics={
            "wal_events": replayed,
            "recovery_s": elapsed,
            "replay_events_per_sec": events_per_sec,
            "decisions_rederived": service.admission.decisions,
        },
    )

    assert elapsed < _MAX_RECOVERY_SECONDS, (
        f"recovery took {elapsed:.3f}s for {replayed} WAL events; "
        f"the budget is {_MAX_RECOVERY_SECONDS:.1f}s"
    )
