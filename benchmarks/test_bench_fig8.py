"""Fig. 8 reproduction bench: four distinct cluster centroids.

Paper shape: each of the four k-means centroids over the six application
realms is dominated by a different realm mix — users split into visibly
distinct usage groups.  The synthetic campus additionally lets us verify
the clusters against the planted ground truth.
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig8_centroids
from repro.experiments.config import PAPER


def test_fig8_centroids(benchmark, paper_workload, paper_model, report_writer):
    result = run_once(benchmark, lambda: fig8_centroids.run(PAPER))
    report_writer(
        "fig8_centroids",
        result.render(),
        benchmark=benchmark,
        metrics={
            "purity": result.purity,
            "distinct_dominant_realms": len(set(result.dominant_realms)),
            "smallest_cluster": int(result.type_sizes.min()),
        },
    )

    assert result.centroids.shape == (4, 6)
    assert np.allclose(result.centroids.sum(axis=1), 1.0, atol=1e-6)
    # Centroids visibly distinct: dominant realms differ.
    assert len(set(result.dominant_realms)) == 4
    # Ground-truth validation: clusters recover the planted types.
    assert result.purity > 0.85
    # No degenerate clusters.
    assert result.type_sizes.min() > 0
