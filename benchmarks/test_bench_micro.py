"""Micro-benchmarks of the performance-critical substrates.

Unlike the figure benches (one-shot reproductions), these measure the hot
paths with real repetition: the event kernel's throughput, maximum-clique
search at controller-batch scale, k-means on campus-sized profile
matrices, churn extraction over a week of sessions, and a full replay of
one evaluation day.  Regressions here translate directly into slower
experiment turnaround.
"""

import itertools

import numpy as np
import pytest

from repro.analysis.churn import extract_churn
from repro.cluster.kmeans import KMeans
from repro.graph.clique import max_clique
from repro.graph.graph import Graph
from repro.sim.kernel import Simulator
from repro.wlan.replay import ReplayEngine
from repro.wlan.strategies import LeastLoadedFirst


def test_bench_kernel_event_throughput(benchmark, report_writer):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for t in range(10_000):
            sim.schedule(float(t), tick)
        sim.run_until_empty()
        return count[0]

    processed = benchmark(run_events)
    report_writer(
        "micro_kernel_events",
        f"event kernel: {processed} events processed",
        benchmark=benchmark,
        metrics={"events": int(processed)},
    )
    assert processed == 10_000


def test_bench_max_clique_controller_scale(benchmark):
    # A 48-user waiting graph with realistic density (~15% edges):
    # the size Algorithm 1 faces at a busy controller.
    rng = np.random.default_rng(42)
    graph = Graph()
    users = [f"u{i}" for i in range(48)]
    for user in users:
        graph.add_node(user)
    for u, v in itertools.combinations(users, 2):
        if rng.random() < 0.15:
            graph.add_edge(u, v, float(rng.random()) + 0.01)

    members, weight = benchmark(lambda: max_clique(graph))
    assert len(members) >= 3
    assert weight >= 0


def test_bench_kmeans_campus_scale(benchmark):
    rng = np.random.default_rng(0)
    data = np.vstack(
        [rng.dirichlet(np.full(6, 2.0) + 30 * np.eye(6)[i % 6], size=200) for i in range(4)]
    )

    result = benchmark(lambda: KMeans(k=4, n_init=4, rng=np.random.default_rng(1)).fit(data))
    assert result.k == 4


@pytest.mark.parametrize("engine", ["python", "numpy"])
def test_bench_churn_extraction_week(benchmark, paper_workload, engine):
    sessions = [
        s for s in paper_workload.collected.sessions if s.connect < 7 * 86400
    ]

    churn = benchmark.pedantic(
        lambda: extract_churn(sessions, engine=engine),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(churn.co_leavings) > 0


@pytest.mark.parametrize("engine", ["python", "numpy"])
def test_bench_social_graph_batch(benchmark, paper_model, engine):
    # A 200-user controller batch: the graph Algorithm 1 thresholds on
    # every flush.  The numpy path must amortize to >= 10x the loop.
    social = paper_model.social
    users = sorted(paper_model.types.assignments)[:200]
    assert len(users) == 200

    def build():
        return social.build_graph(users, threshold=0.3, engine=engine)

    graph = benchmark.pedantic(build, rounds=3, iterations=1, warmup_rounds=1)
    assert len(graph.nodes) == 200


def test_bench_replay_one_day(benchmark, paper_workload, report_writer):
    day_demands = [
        d
        for d in paper_workload.test_demands
        if d.arrival < (paper_workload.config.train_days + 1) * 86400
    ]
    engine = ReplayEngine(
        paper_workload.world.layout, LeastLoadedFirst(), paper_workload.config.replay
    )

    result = benchmark.pedantic(
        lambda: engine.run(day_demands), rounds=1, iterations=1
    )
    report_writer(
        "micro_replay_one_day",
        f"one-day LLF replay: {len(result.sessions)} sessions, "
        f"{len(day_demands)} demands",
        benchmark=benchmark,
        metrics={
            "sessions": len(result.sessions),
            "demands": len(day_demands),
        },
    )
    assert len(result.sessions) > 0
