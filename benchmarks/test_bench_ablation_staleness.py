"""Ablation: controller load-measurement staleness.

The replay engine models what real controllers face: AP loads are polled
on an interval, so between polls the least-loaded view is stale and
arrival herding appears.  This bench (logic in
:mod:`repro.experiments.ablations`) sweeps the poll interval for LLF and
S³: LLF's quality should degrade as measurements age (it has nothing but
the load signal), while S³ — whose primary signal is user identity — is
much less sensitive.  This isolates *why* S³ is steady.
"""

from conftest import run_once

from repro.experiments.ablations import run_staleness
from repro.experiments.config import PAPER
from repro.sim.timeline import MINUTE


def test_ablation_measurement_staleness(
    benchmark, paper_workload, paper_model, report_writer
):
    result = run_once(benchmark, lambda: run_staleness(PAPER))
    by_interval = {row[0]: (row[1], row[2]) for row in result.rows}
    report_writer(
        "ablation_staleness",
        result.render(),
        benchmark=benchmark,
        metrics={
            f"{name}_at_{int(interval)}s": value
            for interval, pair in sorted(by_interval.items())
            for name, value in zip(("llf", "s3"), pair)
        },
    )
    fresh_llf, fresh_s3 = by_interval[1.0]
    stale_llf, stale_s3 = by_interval[15 * MINUTE]
    # LLF loses more from staleness than S3 does.
    llf_drop = fresh_llf - stale_llf
    s3_drop = fresh_s3 - stale_s3
    assert llf_drop > s3_drop - 0.01
    # At heavy staleness S3's lead is clear.
    assert stale_s3 > stale_llf
