"""Ablation: clique-based batch distribution vs purely online selection.

Algorithm 1 distributes *batches* of waiting users by clique decomposition;
a purely online controller assigns each arrival independently with the same
social cost function.  The clique machinery matters exactly for co-arriving
groups; this bench (logic in :mod:`repro.experiments.ablations`) measures
how much.
"""

from conftest import run_once

from repro.experiments.ablations import run_batching
from repro.experiments.config import PAPER


def test_ablation_clique_batching(benchmark, paper_workload, paper_model, report_writer):
    result = run_once(benchmark, lambda: run_batching(PAPER))
    rows = {name: values[0] for name, values in result.as_dict().items()}
    report_writer(
        "ablation_batch",
        result.render(),
        benchmark=benchmark,
        metrics={f"balance_{name}": value for name, value in sorted(rows.items())},
    )
    # Both run the same scoring; the batch path must not be worse beyond
    # noise, and both must stay in valid range.
    assert 0.0 <= rows["online-only"] <= 1.0
    assert rows["clique-batched"] >= rows["online-only"] - 0.02
