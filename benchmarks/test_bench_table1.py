"""Table I reproduction bench: diagonal-dominant type-pair affinity.

Paper shape: the probability that two users co-leave, conditioned on
encountering, is clearly higher for same-type pairs (diagonal 0.51-0.66)
than for cross-type pairs (0.17-0.31) — a dominance ratio around 2.
"""

import numpy as np

from conftest import run_once

from repro.experiments import table1
from repro.experiments.config import PAPER


def test_table1_type_affinity(benchmark, paper_workload, paper_model, report_writer):
    result = run_once(benchmark, lambda: table1.run(PAPER))
    report_writer(
        "table1_type_affinity",
        result.render(),
        benchmark=benchmark,
        metrics={
            "dominance_ratio": result.dominance_ratio,
            "diagonal_mean": float(result.affinity.diagonal().mean()),
        },
    )

    affinity = result.affinity
    assert affinity.shape == (4, 4)
    assert np.allclose(affinity, affinity.T, atol=1e-9)
    assert np.all(affinity >= 0.0) and np.all(affinity <= 1.0)
    # Diagonal dominance in aggregate...
    assert result.dominance_ratio > 1.3
    # ...and per row: every type co-leaves with itself more than its row mean.
    for i in range(4):
        row_off = (affinity[i].sum() - affinity[i, i]) / 3
        assert affinity[i, i] > row_off
