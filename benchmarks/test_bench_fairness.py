"""Cross-check bench: the headline result under alternative fairness metrics.

Section III.B notes that max-min and proportional fairness "may also be
used" in place of the Chiu-Jain index.  A result that flips under a
different fairness notion is fragile; this bench re-scores the Fig. 12
comparison under max-min, proportional fairness and the Gini complement
and asserts the ordering survives every one of them.
"""

import numpy as np

from conftest import run_once

from repro.analysis.fairness import FAIRNESS_METRICS
from repro.experiments.config import PAPER
from repro.experiments.reporting import format_table
from repro.sim.timeline import DAY, HOUR
from repro.wlan.strategies import LeastLoadedFirst, S3Strategy


def scored(result):
    """Mean of each fairness metric over active daytime samples."""
    sums = {name: 0.0 for name in FAIRNESS_METRICS}
    count = 0
    for series in result.series.values():
        mask = series.active_mask()
        for t, loads, active in zip(series.times, series.loads, mask):
            if not active or not 8 * HOUR <= t % DAY < 24 * HOUR:
                continue
            count += 1
            for name, metric in FAIRNESS_METRICS.items():
                sums[name] += metric(loads)
    return {name: total / count for name, total in sums.items()}


def test_fairness_cross_check(benchmark, paper_workload, paper_model, report_writer):
    def run_comparison():
        llf = scored(paper_workload.replay_test(LeastLoadedFirst()))
        s3 = scored(
            paper_workload.replay_test(S3Strategy(paper_model.selector()))
        )
        return llf, s3

    llf, s3 = run_once(benchmark, run_comparison)
    rows = [
        (name, llf[name], s3[name], 100.0 * (s3[name] - llf[name]) / llf[name])
        for name in sorted(FAIRNESS_METRICS)
    ]
    report_writer(
        "fairness_cross_check",
        format_table(
            ["metric", "LLF", "S3", "gain_%"],
            rows,
            title="Fig. 12 comparison under alternative fairness metrics",
        ),
        benchmark=benchmark,
        metrics={
            **{f"llf_{name}": llf[name] for name in sorted(FAIRNESS_METRICS)},
            **{f"s3_{name}": s3[name] for name in sorted(FAIRNESS_METRICS)},
        },
    )

    # The headline ordering survives every fairness notion.
    for name in FAIRNESS_METRICS:
        assert s3[name] > llf[name], name
