"""Fig. 12 reproduction bench: S³ versus LLF (the headline result).

Paper shape: S³ beats LLF on the mean normalized balance index (paper:
~41.2% on the SJTU campus), wins inside the departure peaks where
co-leavings strike (paper: ~52.1%), and is more *stable* — its
per-controller error bars shrink (paper: ~72.1%).  Absolute factors differ
on the synthetic campus; the ordering and the double-digit magnitude are
the reproduced claims.
"""

from conftest import run_once

from repro.experiments import fig12_compare
from repro.experiments.config import PAPER


def test_fig12_s3_vs_llf(benchmark, paper_workload, paper_model, report_writer):
    result = run_once(benchmark, lambda: fig12_compare.run(PAPER))
    report_writer(
        "fig12_s3_vs_llf",
        result.render(),
        benchmark=benchmark,
        metrics={
            "gain_percent": result.gain_percent,
            "peak_gain_percent": result.peak_gain_percent,
            "errorbar_reduction_percent": result.errorbar_reduction_percent,
            **{
                f"mean_balance_{name}": outcome.mean_balance
                for name, outcome in sorted(result.outcomes.items())
            },
        },
    )

    llf = result.outcomes["llf"]
    s3 = result.outcomes["s3"]
    rssi = result.outcomes["rssi"]

    # Who wins: S3 > LLF by a double-digit relative margin.
    assert result.gain_percent > 10.0
    # The gain holds inside the departure peaks S3 was designed for.
    assert result.peak_gain_percent > 5.0
    # S3 is the best strategy overall; RSSI (the 802.11 default) the worst
    # of the load-aware ones.
    assert s3.mean_balance > result.outcomes["llf-users"].mean_balance - 0.02
    assert rssi.mean_balance < llf.mean_balance + 0.02
    # Stability: day-to-day error bars shrink under S3.
    assert result.errorbar_reduction_percent > 0.0
    # Every controller domain individually improves.
    for controller_id, (llf_mean, _) in llf.per_controller.items():
        s3_mean, _ = s3.per_controller[controller_id]
        assert s3_mean > llf_mean
