"""Fig. 5 reproduction bench: most departures are co-leavings.

Paper shape: the per-user fraction of departures that are co-leavings is
high for most users ("most users show strong sociality ... and do not
leave an AP independently"), and larger extraction windows shift the CDF
toward higher fractions.
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig5_coleave
from repro.experiments.config import PAPER
from repro.sim.timeline import MINUTE


def test_fig5_coleaving_cdf(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig5_coleave.run(PAPER))
    report_writer(
        "fig5_coleaving_cdf",
        result.render(),
        benchmark=benchmark,
        metrics={
            f"median_fraction_{int(w // MINUTE)}min": result.median(w)
            for w in sorted(result.fractions)
        },
    )

    medians = [result.median(w) for w in sorted(result.fractions)]
    # Monotone in the window: a longer window can only find more co-leavings.
    assert medians == sorted(medians)
    # Strong sociality: the median user's departures are mostly shared.
    assert result.median(10 * MINUTE) > 0.3
    assert result.median(30 * MINUTE) > 0.5
    # Every fraction is a valid probability.
    for values in result.fractions.values():
        assert np.all(values >= 0.0) and np.all(values <= 1.0)
