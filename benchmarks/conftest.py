"""Benchmark-harness fixtures.

Each ``test_bench_*`` module reproduces one table or figure of the paper on
the calibrated PAPER campus: it runs the experiment through
pytest-benchmark (one timed round — the value is the reproduction, the
timing is a bonus), writes the rendered report to ``benchmarks/out/`` and
asserts the paper's qualitative shape.

The expensive artifacts (campus, collected trace, trained model) are
session-cached by :mod:`repro.experiments.workload`, so the whole harness
pays generation and training once.

Besides the human-readable ``out/<name>.txt`` report, every bench writes a
machine-readable ``out/<name>.json`` companion — benchmark name, seed,
pytest-benchmark timings (``null`` under ``--benchmark-disable``), the
process tree's peak RSS, and the bench's key metrics — so CI can archive
and diff reproduction results across commits, and
``scripts/bench_check.py`` can gate timing regressions against the
committed baselines in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

import pytest

from repro import perf
from repro.experiments.config import PAPER
from repro.experiments.workload import build_workload, trained_model

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def paper_workload():
    return build_workload(PAPER)


@pytest.fixture(scope="session")
def paper_model(paper_workload):
    return trained_model(PAPER)


def _timings(benchmark) -> Optional[Dict[str, float]]:
    """Timing stats off a pytest-benchmark fixture.

    Returns ``None`` when no stats exist — notably under
    ``--benchmark-disable``, where the fixture runs the callable but
    records nothing.
    """
    metadata = getattr(benchmark, "stats", None)
    stats = getattr(metadata, "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return None
    return {
        "rounds": float(len(stats.data)),
        "mean_s": float(stats.mean),
        "min_s": float(stats.min),
        "max_s": float(stats.max),
    }


@pytest.fixture(scope="session")
def report_writer():
    OUT_DIR.mkdir(exist_ok=True)

    def write(
        name: str,
        text: str,
        benchmark=None,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        payload = {
            "name": name,
            "seed": PAPER.seed,
            "timings": _timings(benchmark) if benchmark is not None else None,
            # Peak RSS of the whole process tree at write time: a bench
            # that trades wall-clock for duplicated memory shows up in
            # every companion JSON, not just the runtime bench's.
            "peak_rss_bytes": perf.peak_rss_bytes(),
            "metrics": dict(metrics or {}),
        }
        (OUT_DIR / f"{name}.json").write_text(
            # default=float renders numpy scalars transparently
            json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n"
        )

    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
