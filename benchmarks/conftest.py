"""Benchmark-harness fixtures.

Each ``test_bench_*`` module reproduces one table or figure of the paper on
the calibrated PAPER campus: it runs the experiment through
pytest-benchmark (one timed round — the value is the reproduction, the
timing is a bonus), writes the rendered report to ``benchmarks/out/`` and
asserts the paper's qualitative shape.

The expensive artifacts (campus, collected trace, trained model) are
session-cached by :mod:`repro.experiments.workload`, so the whole harness
pays generation and training once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import PAPER
from repro.experiments.workload import build_workload, trained_model

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def paper_workload():
    return build_workload(PAPER)


@pytest.fixture(scope="session")
def paper_model(paper_workload):
    return trained_model(PAPER)


@pytest.fixture(scope="session")
def report_writer():
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
