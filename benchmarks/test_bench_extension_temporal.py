"""Extension bench: temporal usage profiles (the paper's future work).

Adds *when users are online* (hour-of-day activity vectors) to the typing
features and re-derives the Table-I affinity matrix.  Since co-leaving is
driven by shared schedules, conditioning the type prior on schedule
similarity should sharpen the diagonal-vs-off-diagonal contrast relative
to app-only types — the quantitative version of the paper's conjecture
that richer usage profiles yield "more accurate sociality information".
"""

import numpy as np

from conftest import run_once

from repro.analysis.churn import extract_churn
from repro.core.profiles import build_daily_profiles
from repro.core.temporal import fit_extended_type_model
from repro.experiments.config import PAPER
from repro.experiments.reporting import format_table


def dominance(affinity: np.ndarray) -> float:
    k = affinity.shape[0]
    off = (affinity.sum() - affinity.trace()) / (k * k - k)
    return float(affinity.diagonal().mean() / off) if off > 0 else float("inf")


def test_extension_temporal_profiles(
    benchmark, paper_workload, paper_model, report_writer
):
    def run_extension():
        store = build_daily_profiles(paper_workload.collected.flows)
        churn = extract_churn(paper_workload.collected.sessions)
        extended = fit_extended_type_model(
            store,
            paper_workload.collected.sessions,
            churn,
            k=4,
            temporal_weight=0.5,
            rng=np.random.default_rng(7),
            end_day=PAPER.train_days,
            lookback=PAPER.training.lookback_days,
        )
        return {
            "app-only dominance": dominance(paper_model.types.affinity),
            "app+temporal dominance": dominance(extended.affinity),
            "typed users": float(len(extended.assignments)),
        }

    rows = run_once(benchmark, run_extension)
    report_writer(
        "extension_temporal",
        format_table(
            ["metric", "value"],
            list(rows.items()),
            title="Extension — temporal usage profiles",
        ),
        benchmark=benchmark,
        metrics={name.replace(" ", "_"): value for name, value in rows.items()},
    )

    # Both priors are diagonal-dominant; the schedule-aware one must not
    # be weaker (on the synthetic campus it is typically sharper, since
    # schedules are the actual cause of co-leaving).
    assert rows["app-only dominance"] > 1.3
    assert rows["app+temporal dominance"] > rows["app-only dominance"] - 0.15
    assert rows["typed users"] > 500
