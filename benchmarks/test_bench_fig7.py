"""Fig. 7 reproduction bench: the gap statistic selects k = 4.

Paper shape: Gap(4) >= Gap(5) - s_5 fires first at k = 4, matching the
four planted usage types of the synthetic campus.
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig7_gap
from repro.experiments.config import PAPER


def test_fig7_gap_statistic(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig7_gap.run(PAPER))
    report_writer(
        "fig7_gap_statistic",
        result.render(),
        benchmark=benchmark,
        metrics={
            "selected_k": int(result.selected_k),
            "n_users": int(result.n_users),
        },
    )

    assert result.selected_k == 4
    assert result.n_users > 500
    # The dispersion curve is monotone decreasing in k.
    assert np.all(np.diff(result.gap.log_wk) <= 1e-9)
    # The gap curve climbs sharply up to the true k.
    gaps = result.gap.gaps
    assert gaps[3] > gaps[1]
