"""Benchmark the sharded process engine against the serial reference.

One full PAPER-campus evaluation replay under LLF, serial vs
``engine="process"`` with 4 workers.  Both paths record their wall time
through the ``replay.run.llf`` perf timer (the registered wall-clock
funnel), so the speedup is measured exactly where users feel it.  The
speedup assertion is gated on the host's core count: the parity tests
guarantee the engines agree everywhere, but a single-core CI box cannot
(and should not) demonstrate a parallel speedup.
"""

from __future__ import annotations

import os

from repro import perf
from repro.runtime import plan_replay_shards, replay_process, replay_serial
from repro.wlan.strategies import LeastLoadedFirst

from conftest import run_once

_WORKERS = 4
_TIMER = "replay.run.llf"


def _timed(fn):
    """Run ``fn`` on a clean perf registry; returns (result, wall seconds)."""
    perf.reset()
    result = fn()
    return result, perf.PERF.total(_TIMER)


def test_bench_runtime_process_speedup(benchmark, paper_workload, report_writer):
    layout = paper_workload.world.layout
    demands = paper_workload.test_demands
    config = paper_workload.config.replay
    plan = plan_replay_shards(layout, demands, config)

    serial, serial_s = _timed(
        lambda: replay_serial(layout, LeastLoadedFirst(), demands, config)
    )
    process, process_s = _timed(
        lambda: run_once(
            benchmark,
            lambda: replay_process(
                layout, LeastLoadedFirst(), demands, config, workers=_WORKERS
            ),
        )
    )
    # the merge must stay exact at benchmark scale too
    assert process.sessions == serial.sessions
    assert process.events_processed == serial.events_processed

    cpu_count = os.cpu_count() or 1
    speedup = serial_s / process_s if process_s else 0.0
    report_writer(
        "bench_runtime",
        (
            f"sharded replay (PAPER, LLF, {len(demands)} demands, "
            f"{plan.busy_shards}/{len(plan.shards)} busy shards)\n"
            f"serial : {serial_s:.2f}s\n"
            f"process: {process_s:.2f}s ({_WORKERS} workers, "
            f"{cpu_count} cores)\n"
            f"speedup: {speedup:.2f}x"
        ),
        benchmark=benchmark,
        metrics={
            "serial_s": serial_s,
            "process_s": process_s,
            "speedup": speedup,
            "workers": _WORKERS,
            "cpu_count": cpu_count,
            "shards": len(plan.shards),
            "busy_shards": plan.busy_shards,
            "sessions": len(process.sessions),
            "events": process.events_processed,
        },
    )
    assert speedup > 0.0
    # Parallelism only pays where there are cores to spread over; the
    # ISSUE's 1.5x target applies to a >=4-core host.
    if cpu_count >= 4:
        assert speedup >= 1.5
    elif cpu_count >= 2:
        assert speedup >= 1.1
