"""Benchmark the sharded process engine against the serial reference.

One full PAPER-campus evaluation replay under LLF, serial vs
``engine="process"`` at 1, 2 and 4 workers, through the
``replay.run.llf`` perf timer (the registered wall-clock funnel), so
the speedup is measured exactly where users feel it.

Measurement discipline: after one warm-up round (which pays the
one-time costs — workload caches, the resilience layer's warm pools),
every configuration is timed once per *cycle*, round-robin, for seven
cycles.  Two estimators come out of that:

* ``min/min`` — each configuration's floor across cycles, the familiar
  benchmark headline.  Reported in the artifact.
* ``paired`` — within each cycle, serial and each process
  configuration run back-to-back, so a transient host slowdown (noisy
  neighbours on a shared box) inflates both sides of the ratio; the
  *best cycle's* ratio is the overhead gate.  A pure min/min gate is
  fragile exactly when the host is noisy: serial only needs one clean
  cycle to hit its floor, while a burst landing on every process slot
  fakes a regression.

The 1-worker assertion is *unconditional*: with the zero-copy
shared-memory transport and worker-group scheduling the process engine
must stay within 10% of serial even with no parallelism to exploit —
that overhead budget is the tentpole claim of the transport.  The
scaling assertions are gated on the host's core count: the parity
tests guarantee the engines agree everywhere, but a single-core CI box
cannot (and should not) demonstrate a parallel speedup.  Peak RSS
(parent + reaped workers) is reported alongside, so a transport that
trades wall-clock for duplicated memory shows up in the artifact diff.
"""

from __future__ import annotations

import os

from repro import perf
from repro.runtime import plan_replay_shards, replay_process, replay_serial
from repro.wlan.strategies import LeastLoadedFirst

from conftest import run_once

_WORKER_COUNTS = (1, 2, 4)
_ROUNDS = 7
_TIMER = "replay.run.llf"


def _interleaved_rounds(cases):
    """Warm each case once, then round-robin the measured cycles.

    Returns ``(results, times)``: each case's last result, and its
    per-cycle ``_TIMER`` walls (index ``i`` of every list is the same
    cycle — that alignment is what the paired gate relies on).
    """
    results = {name: fn() for name, fn in cases}  # warm-up round
    times = {name: [] for name, _ in cases}
    for _ in range(_ROUNDS):
        for name, fn in cases:
            perf.reset()
            results[name] = fn()
            times[name].append(perf.PERF.total(_TIMER))
    return results, times


def test_bench_runtime_process_speedup(benchmark, paper_workload, report_writer):
    layout = paper_workload.world.layout
    demands = paper_workload.test_demands
    config = paper_workload.config.replay
    plan = plan_replay_shards(layout, demands, config)

    cases = [
        ("serial", lambda: replay_serial(layout, LeastLoadedFirst(), demands, config))
    ]
    cases += [
        (
            f"process_{workers}",
            lambda workers=workers: replay_process(
                layout, LeastLoadedFirst(), demands, config, workers=workers
            ),
        )
        for workers in _WORKER_COUNTS
    ]
    results, times = _interleaved_rounds(cases)
    serial, serial_s = results["serial"], min(times["serial"])
    process_s = {w: min(times[f"process_{w}"]) for w in _WORKER_COUNTS}
    paired = {
        w: max(
            s / p for s, p in zip(times["serial"], times[f"process_{w}"])
        )
        for w in _WORKER_COUNTS
    }
    for workers in _WORKER_COUNTS:
        # the merge must stay exact at benchmark scale too
        process = results[f"process_{workers}"]
        assert process.sessions == serial.sessions
        assert process.events_processed == serial.events_processed
    # one extra max-worker round under pytest-benchmark, for its stats
    run_once(
        benchmark,
        lambda: replay_process(
            layout, LeastLoadedFirst(), demands, config,
            workers=_WORKER_COUNTS[-1],
        ),
    )

    cpu_count = os.cpu_count() or 1
    speedups = {
        workers: serial_s / seconds if seconds else 0.0
        for workers, seconds in process_s.items()
    }
    peak_rss = perf.peak_rss_bytes()
    lines = [
        (
            f"sharded replay (PAPER, LLF, {len(demands)} demands, "
            f"{plan.busy_shards}/{len(plan.shards)} busy shards, "
            f"{cpu_count} cores, {_ROUNDS} interleaved cycles)"
        ),
        f"serial    : {serial_s:.3f}s",
    ]
    lines += [
        (
            f"process {workers}w: {process_s[workers]:.3f}s "
            f"(speedup {speedups[workers]:.2f}x min/min, "
            f"{paired[workers]:.2f}x best paired cycle)"
        )
        for workers in _WORKER_COUNTS
    ]
    lines.append(f"peak rss  : {peak_rss / 2**20:.0f} MiB")
    report_writer(
        "bench_runtime",
        "\n".join(lines),
        benchmark=benchmark,
        metrics={
            "serial_s": serial_s,
            "process_s": {str(w): s for w, s in process_s.items()},
            "speedup": {str(w): s for w, s in speedups.items()},
            "speedup_paired": {str(w): s for w, s in paired.items()},
            "rounds": _ROUNDS,
            "cpu_count": cpu_count,
            "shards": len(plan.shards),
            "busy_shards": plan.busy_shards,
            "sessions": len(serial.sessions),
            "events": serial.events_processed,
            "peak_rss_bytes": peak_rss,
        },
    )
    # The transport's overhead budget: even with zero parallelism the
    # process engine stays within 10% of serial in at least one
    # back-to-back cycle.  Unconditional.  On a quiet host the best
    # paired cycle converges to the true ratio, so the 0.9 bar is
    # tight there; on a noisy shared box a serial-side burst can
    # inflate a single cycle's ratio, so the min/min floor below
    # backstops against a real regression hiding behind one.
    assert paired[1] >= 0.9
    assert speedups[1] >= 0.75
    # Parallelism only pays where there are cores to spread over.
    if cpu_count >= 2:
        assert paired[2] >= 1.1
    if cpu_count >= 4:
        assert paired[4] >= 1.5
