"""Fig. 4 reproduction bench: user-count balance tracks traffic balance.

Paper shape: over a workday (8:00-24:00) the two per-controller index
series are "very similar in layout" — drops in the user-number index
co-occur with drops in the traffic index.
"""

from conftest import run_once

from repro.experiments import fig4_userload
from repro.experiments.config import PAPER


def test_fig4_user_vs_traffic(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig4_userload.run(PAPER))
    report_writer(
        "fig4_user_vs_traffic",
        result.render(),
        benchmark=benchmark,
        metrics={
            "windows": int(result.times.size),
            "correlation": result.correlation,
        },
    )

    assert result.times.size >= 30  # half-hour windows over 16 hours
    assert result.correlation > 0.5
