"""Fig. 6 reproduction bench: profile NMI rises with history, then plateaus.

Paper shape: mean NMI between the day-x profile and the cumulative history
increases with the look-back depth and stabilizes around 15 days — after
which more history neither helps nor hurts.
"""

from conftest import run_once

from repro.experiments import fig6_nmi
from repro.experiments.config import PAPER


def test_fig6_nmi_history(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig6_nmi.run(PAPER))
    report_writer(
        "fig6_nmi_history",
        result.render(),
        benchmark=benchmark,
        metrics={
            f"day{day}_nmi_{label}": value
            for day, (lookbacks, nmi) in result.curves.items()
            for label, value in (
                ("first", float(nmi[0])),
                ("last", float(nmi[-1])),
            )
        },
    )

    assert len(result.curves) == 2  # the paper's two target days
    for day, (lookbacks, nmi) in result.curves.items():
        assert lookbacks[0] == 1
        # Rises: two weeks of history beats a single day clearly.
        deep = min(14, len(nmi) - 1)
        assert nmi[deep] > nmi[0] * 1.02
        # Plateau: the late change is small next to the initial rise.
        late_change = abs(float(nmi[-1] - nmi[deep]))
        early_rise = float(nmi[deep] - nmi[0])
        assert late_change < max(early_rise, 1e-9)
