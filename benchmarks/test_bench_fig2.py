"""Fig. 2 reproduction bench: balance-index CDF under production LLF.

Paper shape: under LLF a noticeable share of (controller, hour) samples is
badly unbalanced, and peak hours — when arrivals constantly give LLF
chances to rebalance — look *better* than the day-wide average.
"""

from conftest import run_once

from repro.experiments import fig2_balance
from repro.experiments.config import PAPER


def test_fig2_balance_cdf(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig2_balance.run(PAPER))
    report_writer(
        "fig2_balance_cdf",
        result.render(),
        benchmark=benchmark,
        metrics={
            "n_all_hours": int(result.all_hours.size),
            "n_peak_hours": int(result.peak_hours.size),
            "frac_below_half_all": result.frac_below_half_all,
            "frac_below_half_peak": result.frac_below_half_peak,
        },
    )

    assert result.all_hours.size > 500
    assert result.peak_hours.size > 50
    # Unbalance exists under LLF...
    assert result.frac_below_half_all > 0.02
    # ...and peak hours are the better-balanced ones (paper: 20% vs 60%).
    assert result.frac_below_half_peak < result.frac_below_half_all
