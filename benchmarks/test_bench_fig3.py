"""Fig. 3 reproduction bench: fixed users => near-static balance index.

Paper shape: with the user population held fixed inside an hour, the
relative steps of the balance index are overwhelmingly small (>80% of |S|
below 0.02 at ten-minute sub-periods), and shorter sub-periods produce
smaller steps.  Application dynamics are not what unbalances APs.
"""

from conftest import run_once

from repro.experiments import fig3_appdyn
from repro.experiments.config import PAPER
from repro.sim.timeline import MINUTE


def test_fig3_app_dynamics(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig3_appdyn.run(PAPER))
    report_writer(
        "fig3_app_dynamics",
        result.render(),
        benchmark=benchmark,
        metrics={
            "frac_below_0.05_at_10min": result.frac_below(10 * MINUTE, 0.05),
            "frac_below_0.02_at_5min": result.frac_below(5 * MINUTE, 0.02),
            "frac_below_0.02_at_20min": result.frac_below(20 * MINUTE, 0.02),
        },
    )

    for width in (5 * MINUTE, 10 * MINUTE, 20 * MINUTE):
        assert result.variations[width].size > 100
    # Majority of steps are small at the paper's 10-minute sub-period.
    assert result.frac_below(10 * MINUTE, 0.05) > 0.5
    # Shorter sub-periods -> smaller steps (same ordering as the paper's CDFs).
    assert result.frac_below(5 * MINUTE, 0.02) > result.frac_below(20 * MINUTE, 0.02)
