"""Ablation: the two terms of the social relation index.

delta(u, v) = P(L|E) + alpha * T(type_u, type_v) has two ingredients —
the pair's observed conditional co-leaving probability and the type-prior.
This bench retrains S³ with each term knocked out (see
:mod:`repro.experiments.ablations`).

Shape: the full model should not lose to either ablation by more than
noise, and both ablations must still beat the LLF baseline (they carry
some social signal).
"""

from conftest import run_once

from repro.experiments.ablations import run_terms
from repro.experiments.config import PAPER


def test_ablation_social_index_terms(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: run_terms(PAPER))
    rows = {name: values[0] for name, values in result.as_dict().items()}
    report_writer(
        "ablation_alpha",
        result.render(),
        benchmark=benchmark,
        metrics={f"balance_{name}": value for name, value in sorted(rows.items())},
    )
    # Every S3 variant beats the LLF baseline: even partial social signal helps.
    assert rows["full"] > rows["llf-baseline"]
    assert rows["no-type-prior"] > rows["llf-baseline"]
    assert rows["type-prior-only"] > rows["llf-baseline"]
    # The full index is not dominated by either single-term ablation.
    assert rows["full"] >= rows["no-type-prior"] - 0.02
    assert rows["full"] >= rows["type-prior-only"] - 0.02
