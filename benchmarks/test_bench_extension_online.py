"""Extension bench: online-learning S³ (the paper's deployment loop).

Compares three deployments over the evaluation days:

* pretrained S³ (the paper's offline pipeline);
* *cold-start* online S³ — empty pair statistics, uniform type prior,
  learning encounters/co-leavings/demand from the association stream; and
* the LLF production baseline.

Shape: the cold-start deployment must not fall below LLF (day one it *is*
demand-aware load balancing) and must accumulate real social knowledge;
the pretrained model stays the best or ties.
"""

import numpy as np

from conftest import run_once

from repro.core.demand import DemandEstimator
from repro.core.online import OnlineS3Strategy
from repro.core.selection import S3Selector
from repro.core.social import SocialModel
from repro.core.typing import TypeModel
from repro.experiments.config import PAPER
from repro.experiments.evaluation import mean_daytime_balance
from repro.experiments.reporting import format_table
from repro.wlan.strategies import LeastLoadedFirst, S3Strategy


def cold_start_strategy():
    types = TypeModel(
        centroids=np.full((4, 6), 1 / 6),
        assignments={},
        affinity=np.full((4, 4), 0.25),
    )
    selector = S3Selector(SocialModel({}, types), DemandEstimator())
    return OnlineS3Strategy(selector)


def test_extension_online_learning(
    benchmark, paper_workload, paper_model, report_writer
):
    def run_comparison():
        llf = mean_daytime_balance(paper_workload.replay_test(LeastLoadedFirst()))
        pretrained = mean_daytime_balance(
            paper_workload.replay_test(S3Strategy(paper_model.selector()))
        )
        online = cold_start_strategy()
        online_balance = mean_daytime_balance(paper_workload.replay_test(online))
        return {
            "llf": llf,
            "s3-pretrained": pretrained,
            "s3-online-cold-start": online_balance,
            "pairs-learned": float(online.selector.social.known_pairs()),
            "co-leavings-observed": float(online.learner.co_leavings_recorded),
            "encounters-observed": float(online.learner.encounters_recorded),
        }

    rows = run_once(benchmark, run_comparison)
    report_writer(
        "extension_online",
        format_table(
            ["metric", "value"],
            list(rows.items()),
            title="Extension — online-learning S3 (cold start vs pretrained)",
        ),
        benchmark=benchmark,
        metrics=rows,
    )

    # Cold-start never falls below the production baseline.
    assert rows["s3-online-cold-start"] > rows["llf"]
    # The pretrained model is at least as good as the cold start.
    assert rows["s3-pretrained"] >= rows["s3-online-cold-start"] - 0.02
    # Real knowledge accumulated from three evaluation days.
    assert rows["pairs-learned"] > 100
    assert rows["co-leavings-observed"] > 100
    assert rows["encounters-observed"] > 100
