"""Benchmark the fault subsystem: dormant overhead and recovery shape.

Two questions about :mod:`repro.faults` at PAPER scale.  First, what
does carrying a fault plan cost when nothing fires?  A plan whose
events all sit beyond the replay horizon exercises the full plan
compilation and per-flush bookkeeping without ever perturbing the run,
so its wall time against a plan-free replay is pure fault-path
overhead — the ISSUE budget is 15%.  Second, how do LLF and S³ degrade
and re-converge around a targeted worst-case AP outage?  The resilience
experiment derives every number from the journal, and this bench
archives them per commit.
"""

from __future__ import annotations

from repro import perf
from repro.experiments import resilience
from repro.experiments.config import PAPER
from repro.faults import targeted_ap_outage
from repro.runtime import replay_serial
from repro.wlan.replay import window_for
from repro.wlan.strategies import LeastLoadedFirst

from conftest import run_once

_TIMER = "replay.run.llf"
_ROUNDS = 3


def _best_of(fn):
    """Best wall time over ``_ROUNDS`` runs; returns (last result, seconds)."""
    best = float("inf")
    result = None
    for _ in range(_ROUNDS):
        perf.reset()
        result = fn()
        best = min(best, perf.PERF.total(_TIMER))
    return result, best


def test_bench_dormant_fault_plan_overhead(paper_workload, report_writer):
    layout = paper_workload.world.layout
    demands = paper_workload.test_demands
    config = paper_workload.config.replay
    window = window_for(demands, config)
    # A real, non-empty plan — but every event lands past the horizon,
    # so the run is byte-equivalent to the plan-free one.
    dormant = targeted_ap_outage(
        sorted(layout.aps)[0], window.horizon + 3600.0, 60.0
    )

    clean, clean_s = _best_of(
        lambda: replay_serial(layout, LeastLoadedFirst(), demands, config)
    )
    armed, armed_s = _best_of(
        lambda: replay_serial(
            layout, LeastLoadedFirst(), demands, config, fault_plan=dormant
        )
    )
    assert armed.sessions == clean.sessions
    assert armed.events_processed == clean.events_processed

    overhead = armed_s / clean_s - 1.0 if clean_s else 0.0
    report_writer(
        "bench_resilience_overhead",
        (
            f"dormant fault-plan overhead (PAPER, LLF, "
            f"{len(demands)} demands, best of {_ROUNDS})\n"
            f"no plan     : {clean_s:.3f}s\n"
            f"dormant plan: {armed_s:.3f}s\n"
            f"overhead    : {overhead:+.1%} (budget 15%)"
        ),
        metrics={
            "clean_s": clean_s,
            "armed_s": armed_s,
            "overhead": overhead,
            "rounds": _ROUNDS,
            "sessions": len(clean.sessions),
        },
    )
    # 50ms absolute floor keeps sub-second timings from tripping on noise.
    assert armed_s <= clean_s * 1.15 + 0.05


def test_bench_resilience_recovery(benchmark, report_writer):
    result = run_once(benchmark, lambda: resilience.run(PAPER))
    assert sorted(result.by_strategy) == ["llf", "s3"]
    metrics = {
        "target_ap": result.target_ap,
        "fault_start": result.fault_start,
        "fault_duration": result.fault_duration,
    }
    for name, entry in sorted(result.by_strategy.items()):
        assert entry.evicted > 0  # the worst-case target really had users
        assert entry.drop >= 0.0
        metrics[f"{name}_evicted"] = entry.evicted
        metrics[f"{name}_pre_fault_balance"] = entry.pre_fault_balance
        metrics[f"{name}_min_balance_during"] = entry.min_balance_during
        metrics[f"{name}_drop"] = entry.drop
        metrics[f"{name}_recovery_s"] = entry.recovery_time
    report_writer(
        "bench_resilience",
        result.render(),
        benchmark=benchmark,
        metrics=metrics,
    )
