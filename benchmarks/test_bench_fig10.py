"""Fig. 10 reproduction bench: the co-leaving extraction window sweep.

Paper shape: an interior optimum — "as the length of the extraction time
interval increases, the normalized balancing index first increases,
reaches a maximum at ... five minutes, and then drops", because short
windows find too few co-leavings and long windows manufacture fake
relationships.

On the synthetic campus the *balance* surface is flat within noise:
Algorithm 1's top-30%+balance re-rank makes S³ fail-safe against a
degraded social model (documented in EXPERIMENTS.md).  The trade-off the
paper describes is asserted on the learned social graph itself, where it
is unambiguous: precision falls with the window, recall rises, and their
F1 peaks at the paper's intermediate window.
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig10_window
from repro.experiments.config import PAPER


def test_fig10_window_sweep(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig10_window.run(PAPER))
    report_writer(
        "fig10_window_sweep",
        result.render(),
        benchmark=benchmark,
        metrics={
            "best_f1_window_min": result.best_f1_window(),
            "balance_min": float(result.balance.min()),
            "balance_max": float(result.balance.max()),
            "f1_curve": [q["f1"] for q in result.graph_quality],
        },
    )

    assert result.balance.shape == (5, 3)
    # Balance stays in the S3 operating band for every setting (fail-safe).
    assert result.balance.min() > 0.7
    assert result.balance.max() - result.balance.min() < 0.05

    precision = [q["precision"] for q in result.graph_quality]
    recall = [q["recall"] for q in result.graph_quality]
    f1 = [q["f1"] for q in result.graph_quality]
    # Fake relationships grow with the window: precision strictly falls
    # from the 1-minute to the 20-minute extraction window.
    assert precision[0] > precision[-1]
    # Real relationships saturate: recall rises from 1 to 5 minutes.
    assert recall[1] > recall[0]
    # The paper's interior optimum: F1 peaks at the 5-minute window.
    assert result.best_f1_window() == 5.0
    assert f1[1] > f1[0] and f1[1] > f1[-1]
