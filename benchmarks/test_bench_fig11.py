"""Fig. 11 reproduction bench: the training-history sweep.

Paper shape: more history helps until about 15 days, after which the
balance index stabilizes — old data neither helps nor hurts.

On the synthetic campus the balance surface is flat within noise for the
same fail-safe reason as Fig. 10; the history effect is asserted on the
learned social graph: relations accumulate with history (recall grows)
with diminishing returns, while precision stays high — extra history does
not poison the model.
"""

import numpy as np

from conftest import run_once

from repro.experiments import fig11_history
from repro.experiments.config import PAPER


def test_fig11_history_sweep(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: fig11_history.run(PAPER))
    recall_curve = result.recall_curve()
    report_writer(
        "fig11_history_sweep",
        result.render(),
        benchmark=benchmark,
        metrics={
            "history_days": list(result.history_days),
            "recall_curve": [float(r) for r in recall_curve],
            "balance_best": float(result.balance.max()),
        },
    )

    assert result.balance.shape[0] == len(result.history_days)
    # Deep history never hurts the balance (the paper's "does not hurt
    # either"): the 15-day configuration is within noise of the best.
    best = float(result.balance.max())
    idx15 = result.history_days.index(15)
    assert result.balance[idx15].max() >= best - 0.02

    recall = result.recall_curve()
    precision = np.asarray([q["precision"] for q in result.graph_quality])
    # Relations accumulate with history...
    assert np.all(np.diff(recall) >= -1e-9)
    assert recall[-1] > recall[0]
    # ...with diminishing relative returns past two weeks...
    idx10 = result.history_days.index(10)
    early_growth = recall[idx10] - recall[0]
    late_growth = recall[-1] - recall[idx15]
    assert late_growth < early_growth
    # ...and without poisoning the graph: precision stays high throughout
    # the depths that produce any edges at all.
    with_edges = precision[np.asarray([q["edges"] for q in result.graph_quality]) > 0]
    assert np.all(with_edges > 0.8)
