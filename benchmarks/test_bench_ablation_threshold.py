"""Ablation: the 0.3 social-graph edge threshold.

Section IV.A draws an edge between waiting users when delta > 0.3.  This
bench sweeps the threshold (logic in :mod:`repro.experiments.ablations`):
too low floods the graph with weak edges, too high dissolves real groups.
The paper's 0.3 should sit in the good basin.
"""

from conftest import run_once

from repro.experiments.ablations import run_threshold
from repro.experiments.config import PAPER


def test_ablation_edge_threshold(benchmark, paper_workload, report_writer):
    result = run_once(benchmark, lambda: run_threshold(PAPER))
    rows = {threshold: values[0] for threshold, values in result.as_dict().items()}
    report_writer(
        "ablation_threshold",
        result.render(),
        benchmark=benchmark,
        metrics={
            f"balance_at_{threshold}": value
            for threshold, value in sorted(rows.items())
        },
    )
    # All variants produce valid balance levels.
    assert all(0.0 <= v <= 1.0 for v in rows.values())
    # The paper's 0.3 operating point is within noise of the sweep's best —
    # the basin around it is flat, not knife-edged.
    best = max(rows.values())
    assert rows[0.3] >= best - 0.03
