"""Benchmark the controller service's association decision path.

An open-loop synthetic client: the full event stream is pre-generated
(the client never waits on the service), then pushed through
:class:`~repro.service.loop.ControllerService` with observability off —
the configuration a production fast path would run.  Two phases:

* **throughput** — one timed pass over the stream; the gate is the
  tentpole number of the PR 9 service: at least ``10_000`` committed
  association decisions per second, on one core, with the online
  learner folding every departure back into the social model as it
  runs.
* **latency** — a second pass with ``track_latency`` on; the p99 of
  wall seconds from join enqueue to committed decision must stay under
  5 ms (measured ~120 us on the reference box; micro-batching delay is
  sim-clock driven and excluded by construction from the wall path).

The companion JSON (``out/bench_service.json``) carries both numbers
for CI archiving, and its pytest-benchmark timing is gated against
``baselines/bench_service.json`` by ``scripts/bench_check.py``.
"""

from __future__ import annotations

from typing import List

from repro import perf
from repro.service import AdmissionConfig, WorkloadSpec
from repro.service.events import ServiceEvent, StationJoin
from repro.service.loop import ControllerService
from repro.service.workload import make_service, synthetic_events

from conftest import run_once

_SPEC = WorkloadSpec(users=256, aps=16, events=30000, seed=17)
_MIN_DECISIONS_PER_SEC = 10_000.0
_MAX_P99_SECONDS = 0.005


def _drive(service: ControllerService, events: List[ServiceEvent]) -> float:
    """Push the whole stream; returns the wall seconds it took."""
    start = perf.wall_seconds()
    for event in events:
        service.submit(event)
    service.drain()
    return perf.wall_seconds() - start


def test_bench_service(benchmark, report_writer) -> None:
    events = synthetic_events(_SPEC)
    joins = sum(1 for e in events if isinstance(e, StationJoin))

    # Throughput phase: observability off, one timed pass.
    throughput_service = make_service(_SPEC, monitor=False)
    elapsed = run_once(benchmark, lambda: _drive(throughput_service, events))
    queue = throughput_service.admission
    assert queue.decisions == joins
    decisions_per_sec = queue.decisions / elapsed
    events_per_sec = len(events) / elapsed

    # Latency phase: a fresh service collecting per-decision walls.
    latency_service = make_service(
        _SPEC, AdmissionConfig(track_latency=True), monitor=False
    )
    _drive(latency_service, events)
    latencies = sorted(latency_service.admission.latencies)
    assert len(latencies) == joins
    p50 = latencies[int(0.50 * (len(latencies) - 1))]
    p99 = latencies[int(0.99 * (len(latencies) - 1))]

    learner = throughput_service.learner
    assert learner is not None
    text = "\n".join(
        [
            "--- bench: service decision path (open-loop client) ---",
            f"events               {len(events)}",
            f"decisions            {queue.decisions}",
            f"batches              {queue.batches}",
            f"sheds                {queue.sheds}",
            f"elapsed_s            {elapsed:.3f}",
            f"decisions_per_sec    {decisions_per_sec:,.0f}",
            f"events_per_sec       {events_per_sec:,.0f}",
            f"latency_p50_us       {p50 * 1e6:.1f}",
            f"latency_p99_us       {p99 * 1e6:.1f}",
            f"learned_pairs        {learner.social.known_pairs()}",
        ]
    )
    report_writer(
        "bench_service",
        text,
        benchmark=benchmark,
        metrics={
            "events": len(events),
            "decisions": queue.decisions,
            "batches": queue.batches,
            "sheds": queue.sheds,
            "decisions_per_sec": decisions_per_sec,
            "events_per_sec": events_per_sec,
            "latency_p50_s": p50,
            "latency_p99_s": p99,
            "learned_pairs": learner.social.known_pairs(),
        },
    )

    assert decisions_per_sec >= _MIN_DECISIONS_PER_SEC, (
        f"service decision path too slow: {decisions_per_sec:,.0f}/s "
        f"< {_MIN_DECISIONS_PER_SEC:,.0f}/s"
    )
    assert p99 <= _MAX_P99_SECONDS, (
        f"p99 decision latency {p99 * 1e3:.2f} ms exceeds "
        f"{_MAX_P99_SECONDS * 1e3:.1f} ms"
    )
