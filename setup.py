"""Setuptools shim.

The full package metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools/pip lack wheel
support for PEP-660 editable installs (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
