"""Seeded, named random-number streams.

Every stochastic component of the reproduction (schedule jitter, traffic
volumes, user-type assignment, k-means reference distributions, ...) draws
from its own named child stream of a single root seed.  This gives two
properties a single shared generator cannot:

* **Reproducibility** — the same root seed always produces the same trace.
* **Insensitivity to composition** — adding a new consumer (a new figure's
  experiment, an extra sampler) does not shift the draws seen by existing
  consumers, because each name deterministically derives an independent
  stream via ``numpy``'s SeedSequence spawning.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

#: Optional introspection hook: called with ``(kind, name)`` on every
#: first materialization of a stream (``"get"``) and every sub-factory
#: derivation (``"child"``).  Used by the devtools to cross-check the
#: static stream registry against the names a run actually derives;
#: ``None`` (the default) costs one ``is None`` test per derivation.
_OBSERVER: Optional[Callable[[str, str], None]] = None


@contextmanager
def observe_streams(callback: Callable[[str, str], None]) -> Iterator[None]:
    """Report every stream derivation to ``callback`` while active.

    ``callback(kind, name)`` fires on first ``get(name)`` per factory and
    on every ``child(name)``.  Observation is process-global and not
    reentrant — it is a devtools/testing hook, not a runtime feature.
    """
    global _OBSERVER
    previous = _OBSERVER
    _OBSERVER = callback
    try:
        yield
    finally:
        _OBSERVER = previous


class RandomStreams:
    """A factory of named, independent ``numpy`` generators.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("traffic")
    >>> b = streams.get("schedule")
    >>> a is streams.get("traffic")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed of this factory."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived from ``(root seed, crc32(name))`` so the
        mapping from name to stream is stable across processes and Python
        versions (unlike ``hash``, which is salted).
        """
        if name not in self._streams:
            if _OBSERVER is not None:
                _OBSERVER("get", name)
            tag = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=(tag,))
            self._streams[name] = np.random.Generator(np.random.PCG64(sequence))
        return self._streams[name]

    def stream_names(self) -> List[str]:
        """The names materialized so far on this factory, sorted."""
        return sorted(self._streams)

    def child(self, name: str) -> "RandomStreams":
        """Derive a whole sub-factory, e.g. one per simulated building.

        The derivation is pure integer arithmetic on ``(root seed,
        crc32(name))`` — no process state — so a child factory built
        inside a :mod:`repro.runtime` worker process yields bit-identical
        streams to one built in the parent.  This cross-process stability
        is the invariant the parallel execution engine rests on: a shard
        is handed only its ``child(shard_stream_name(...))`` factory,
        never the root factory itself (enforced by the ``fork-safe-rng``
        lint rule).
        """
        if _OBSERVER is not None:
            _OBSERVER("child", name)
        tag = zlib.crc32(name.encode("utf-8"))
        return RandomStreams(seed=(self._seed * 1_000_003 + tag) % (2**63))

    def reset(self) -> None:
        """Forget all materialized streams; next ``get`` re-derives them."""
        self._streams.clear()
