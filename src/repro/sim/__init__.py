"""Deterministic discrete-event simulation kernel.

This package is the lowest substrate of the reproduction: everything that
"happens over time" (the synthetic campus trace generator, the enterprise
WLAN simulator, and the message-level prototype) is driven by the
:class:`~repro.sim.kernel.Simulator` event loop defined here.

The kernel is intentionally small and fully deterministic:

* events fire in ``(time, priority, sequence)`` order, so two runs with the
  same seed produce byte-identical traces;
* randomness is never drawn from global state — components receive
  :class:`~repro.sim.rng.RandomStreams` children so that adding a new
  consumer does not perturb existing streams.
"""

from repro.sim.kernel import Event, EventQueue, Simulator, SimulationError
from repro.sim.rng import RandomStreams
from repro.sim.timeline import (
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    Timeline,
    day_index,
    format_clock,
    hour_of_day,
    minute_of_day,
    seconds_of_day,
    weekday,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "RandomStreams",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "Timeline",
    "day_index",
    "format_clock",
    "hour_of_day",
    "minute_of_day",
    "seconds_of_day",
    "weekday",
]
