"""Discrete-event simulation kernel.

The kernel implements the classic event-list algorithm: a priority queue of
timestamped events, a clock that only moves forward when an event is popped,
and a run loop that dispatches callbacks.  The design goals, in order:

1. **Determinism.**  Events scheduled for the same instant fire in a stable,
   reproducible order (``priority`` first, then insertion sequence).  This is
   what makes the trace generator and the WLAN simulator replayable.
2. **Simplicity.**  No coroutine magic; an event is a plain callback.  The
   higher layers (association manager, schedule engine) build their own
   abstractions on top.
3. **Safety.**  Scheduling into the past, running a stopped simulator, or
   re-cancelling an event raise :class:`SimulationError` instead of silently
   corrupting the timeline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.tracer import get_tracer


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, seq)``.  ``priority`` lets a
    caller force ordering between events at the same instant (lower fires
    first); ``seq`` is a monotonically increasing insertion counter that
    guarantees a stable order among equal-priority simultaneous events.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the run loop skips it.

        Cancellation is lazy: the event stays in the heap but its action is
        never invoked.  Cancelling twice raises, because double-cancel is
        almost always a bookkeeping bug in the caller.
        """
        if self.cancelled:
            raise SimulationError(f"event {self.name or self.seq} already cancelled")
        self.cancelled = True


class EventQueue:
    """A stable min-heap of :class:`Event` objects.

    Entries are stored as ``(time, priority, seq, event)`` tuples so every
    heap comparison is a C-level tuple comparison — ``seq`` is unique, so
    the ordering never falls through to the event itself.  At replay scale
    the Python-level ``Event.__lt__`` calls this avoids are a measurable
    slice of the whole run.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Insert an event and return the handle (usable for cancellation)."""
        seq = next(self._counter)
        # Replay-scale hot path (one push per arrival, departure, flush
        # and periodic tick): build the event without the generated
        # dataclass ``__init__`` — six ``__setattr__`` calls — by filling
        # the instance dict directly.
        event = Event.__new__(Event)
        event.__dict__.update(
            time=time,
            priority=priority,
            seq=seq,
            action=action,
            name=name,
            cancelled=False,
        )
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if not event.cancelled:
                return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None`` if empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()

    def __iter__(self) -> Iterator[Event]:
        """Iterate over live events in heap (not chronological) order."""
        return (entry[3] for entry in self._heap if not entry[3].cancelled)


class Simulator:
    """The discrete-event run loop.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("fires at t=10"))
        sim.every(60.0, sample_load, start=0.0)   # periodic sampler
        sim.run(until=3600.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.3f}, clock already at t={self._now:.3f}"
            )
        return self._queue.push(time, action, priority=priority, name=name)

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, action, priority=priority, name=name)

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        start: Optional[float] = None,
        priority: int = 0,
        name: str = "",
    ) -> Callable[[], None]:
        """Schedule ``action`` periodically; returns a stopper callable.

        The first firing happens at ``start`` (defaulting to ``now +
        interval``); subsequent firings every ``interval`` seconds until the
        returned stopper is invoked or the run horizon is reached.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        state = {"event": None, "stopped": False}
        push = self._queue.push

        def fire() -> None:
            if state["stopped"]:
                return
            action()
            # Reschedule straight onto the queue: ``interval`` is
            # validated positive above, so ``schedule_after``'s delay
            # check is redundant on this per-tick path.
            state["event"] = push(
                self._now + interval, fire, priority=priority, name=name
            )

        first = self._now + interval if start is None else start
        state["event"] = self.schedule(first, fire, priority=priority, name=name)

        def stop() -> None:
            """Cancel the periodic firing."""
            state["stopped"] = True
            event = state["event"]
            if event is not None and not event.cancelled:
                event.cancel()

        return stop

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given the clock is advanced exactly to ``until``
        even if the last event fires earlier, so periodic samplers and load
        series have a well-defined horizon.  Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        first_event = self.events_processed
        # Explicit-clock span: the kernel hands the tracer its own sim
        # clock, keeping this module free of any wall-time dependency.
        with get_tracer().span(
            "sim.run", sim_time=self._now, clock=lambda: self._now
        ) as span:
            try:
                # The dispatch loop touches the queue's heap directly:
                # at replay scale the ``peek_time()``/``pop()`` method
                # pair costs a measurable slice of every run, and the
                # sharded engine pays it once per shard for the same
                # periodic grid.  Semantics are identical — drop
                # cancelled heads lazily, stop at the horizon, pop and
                # dispatch.
                heap = self._queue._heap
                heappop = heapq.heappop
                # Metrics are host-scoped here (worker shards replay the
                # same periodic grid, so counts depend on engine shape).
                # The series and the window boundary are bound before
                # the loop: the disabled path pays one local bool test
                # per event, nothing more.
                registry = obs_metrics.REGISTRY
                metrics_on = registry.enabled
                if metrics_on:
                    window = registry.window_seconds
                    events_series = registry.counter("sim.events")
                    depth_series = registry.gauge("sim.queue_depth")
                    next_boundary = (self._now // window + 1.0) * window
                while not self._stopped:
                    while heap and heap[0][3].cancelled:
                        heappop(heap)
                    if not heap:
                        break
                    entry = heap[0]
                    if until is not None and entry[0] > until:
                        break
                    heappop(heap)
                    self._now = entry[0]
                    self.events_processed += 1
                    if metrics_on:
                        events_series.inc(1.0, entry[0])
                        if entry[0] >= next_boundary:
                            depth_series.set(float(len(heap)), entry[0])
                            next_boundary = (
                                entry[0] // window + 1.0
                            ) * window
                    entry[3].action()
                if until is not None and until > self._now and not self._stopped:
                    self._now = until
            finally:
                self._running = False
                span.set(events=self.events_processed - first_event)
        return self._now

    def run_until_empty(self) -> float:
        """Drain every scheduled event; returns the final clock value."""
        return self.run(until=None)
