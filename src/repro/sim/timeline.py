"""Calendar arithmetic for simulated campus time.

The synthetic trace, like the paper's real one, spans weeks of campus life.
All timestamps in the reproduction are plain floats: **seconds since the
start of the trace**, where second 0 is 00:00 on day 0 and day 0 is a
Monday.  This module centralizes the conversions (day index, hour of day,
weekday, clock formatting) and the :class:`Timeline` helper that iterates
analysis windows, so that every figure slices time identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

#: Peak hours used throughout the paper's Section III (Fig. 2): the network
#: throughput peaks at 10:00-11:00 and 15:00-16:00.
PEAK_HOURS: Tuple[int, ...] = (10, 15)

#: Departure-peak windows from Section V.C (Fig. 12 discussion): 12:00-13:00,
#: 16:00-17:50 and 21:00-22:00 are when users leave the network in bulk.
DEPARTURE_PEAKS: Tuple[Tuple[float, float], ...] = (
    (12 * HOUR, 13 * HOUR),
    (16 * HOUR, 17 * HOUR + 50 * MINUTE),
    (21 * HOUR, 22 * HOUR),
)


def day_index(t: float) -> int:
    """Zero-based day number of timestamp ``t``."""
    return int(t // DAY)


def seconds_of_day(t: float) -> float:
    """Seconds elapsed since midnight of ``t``'s day."""
    return t % DAY


def hour_of_day(t: float) -> int:
    """Hour-of-day (0-23) of timestamp ``t``."""
    return int(seconds_of_day(t) // HOUR)


def minute_of_day(t: float) -> int:
    """Minute-of-day (0-1439) of timestamp ``t``."""
    return int(seconds_of_day(t) // MINUTE)


def weekday(t: float) -> int:
    """Day-of-week of ``t``: 0 = Monday ... 6 = Sunday (day 0 is a Monday)."""
    return day_index(t) % 7


def is_workday(t: float) -> bool:
    """True when ``t`` falls on Monday through Friday."""
    return weekday(t) < 5


def is_peak_hour(t: float) -> bool:
    """True when ``t`` falls inside one of the paper's throughput peaks."""
    return hour_of_day(t) in PEAK_HOURS


def in_departure_peak(t: float) -> bool:
    """True when ``t`` falls inside one of the paper's departure peaks."""
    s = seconds_of_day(t)
    return any(lo <= s < hi for lo, hi in DEPARTURE_PEAKS)


def format_clock(t: float) -> str:
    """Human-readable ``dayN HH:MM:SS`` rendering of a timestamp."""
    day = day_index(t)
    s = seconds_of_day(t)
    hours = int(s // HOUR)
    minutes = int((s % HOUR) // MINUTE)
    seconds = int(s % MINUTE)
    return f"day{day} {hours:02d}:{minutes:02d}:{seconds:02d}"


@dataclass(frozen=True)
class Timeline:
    """A half-open span of simulated time ``[start, end)`` with slicers.

    Experiments use one :class:`Timeline` per analysis scope (a training
    stage, an evaluation day, a peak hour) so window boundaries are computed
    in one place.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty timeline: [{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        """Length of the span in seconds."""
        return self.end - self.start

    def windows(self, width: float) -> Iterator[Tuple[float, float]]:
        """Yield consecutive ``[lo, hi)`` windows of ``width`` seconds.

        The final window is truncated at ``end`` so the union of the windows
        is exactly the timeline.
        """
        if width <= 0:
            raise ValueError(f"non-positive window width {width!r}")
        lo = self.start
        while lo < self.end:
            hi = min(lo + width, self.end)
            yield (lo, hi)
            lo = hi

    def subdivide(self, parts: int) -> List["Timeline"]:
        """Split the timeline into ``parts`` equal sub-timelines."""
        if parts <= 0:
            raise ValueError(f"non-positive part count {parts!r}")
        width = self.duration / parts
        return [
            Timeline(self.start + i * width, self.start + (i + 1) * width)
            for i in range(parts)
        ]

    def days(self) -> Iterator["Timeline"]:
        """Yield one Timeline per calendar day overlapped by this span."""
        first = day_index(self.start)
        last = day_index(self.end - 1e-9)
        for day in range(first, last + 1):
            lo = max(self.start, day * DAY)
            hi = min(self.end, (day + 1) * DAY)
            if hi > lo:
                yield Timeline(lo, hi)

    def hours(self) -> Iterator["Timeline"]:
        """Yield one Timeline per clock hour overlapped by this span."""
        first = int(self.start // HOUR)
        last = int((self.end - 1e-9) // HOUR)
        for hour in range(first, last + 1):
            lo = max(self.start, hour * HOUR)
            hi = min(self.end, (hour + 1) * HOUR)
            if hi > lo:
                yield Timeline(lo, hi)

    def contains(self, t: float) -> bool:
        """True when t lies inside the half-open span."""
        return self.start <= t < self.end

    def clamp(self, t: float) -> float:
        """Clamp ``t`` into the timeline (useful for session overlaps)."""
        return min(max(t, self.start), self.end)

    def overlap(self, lo: float, hi: float) -> float:
        """Length of the intersection between ``[lo, hi)`` and the span."""
        return max(0.0, min(hi, self.end) - max(lo, self.start))

    @staticmethod
    def for_day(day: int) -> "Timeline":
        """The full calendar day ``day``."""
        return Timeline(day * DAY, (day + 1) * DAY)

    @staticmethod
    def for_days(first_day: int, count: int) -> "Timeline":
        """``count`` consecutive days starting at ``first_day``."""
        if count <= 0:
            raise ValueError(f"non-positive day count {count!r}")
        return Timeline(first_day * DAY, (first_day + count) * DAY)


def workday_timelines(span: Timeline) -> List[Timeline]:
    """The Monday-Friday days inside ``span`` (the paper analyses workdays)."""
    return [day for day in span.days() if is_workday(day.start)]
