"""AP-selection strategies: the baselines and the S³ adapter.

A strategy answers one question: *given an arriving user, the candidate
APs of the controller domain and the station's RSSI readings, which AP
serves the user?*  Four implementations:

* :class:`StrongestSignal` — the 802.11 default the paper's Section I
  describes: pick the AP with the best RSSI, ignoring load entirely;
* :class:`LeastLoadedFirst` — the state of the art in enterprise WLANs
  (the paper's LLF baseline, ref [9]): least traffic load, or least user
  count in the ``"users"`` variant;
* :class:`RandomSelection` — the sanity-floor baseline;
* :class:`S3Strategy` — the paper's contribution, delegating to a trained
  :class:`~repro.core.selection.S3Selector`; the only strategy that
  implements true batch assignment (Algorithm 1's clique distribution).

Strategies are stateless with respect to the network: all network state
arrives as immutable :class:`~repro.core.selection.APState` snapshots.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.selection import APState, S3Selector, least_loaded
from repro.wlan.radio import strongest_ap


class SelectionStrategy(abc.ABC):
    """The strategy interface the replay engine and prototype drive."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "strategy"

    #: Whether per-controller sharding preserves this strategy's
    #: behaviour.  True for strategies whose decisions depend only on the
    #: arriving batch and the owning controller's state (LLF, RSSI, the
    #: trained S3 selector).  False for strategies carrying *mutable*
    #: cross-controller state — a shared RNG consumed in global arrival
    #: order, or an online learner updated by observe hooks — where
    #: splitting the demand stream changes the call order and therefore
    #: the decisions.  ``repro.runtime`` refuses ``engine="process"`` for
    #: these and ``engine="auto"`` falls back to serial.
    shard_safe: bool = True

    #: Why ``shard_safe`` is ``False`` — one sentence naming the mutable
    #: cross-controller state.  The **shard-safe-note** lint rule
    #: requires a non-empty value on every class that flips the flag
    #: off, so the constraint stays greppable instead of living only in
    #: a comment.  Empty for strategies keeping the default contract.
    shard_safe_reason: str = ""

    #: Declared graceful-degradation order, most- to least-preferred
    #: strategy name.  Empty for strategies with no fallback logic.
    fallback_chain: Tuple[str, ...] = ()

    def consume_degradation(self) -> Optional[str]:
        """The degradation note of the most recent ``select`` /
        ``assign_batch`` call, cleared on read.

        The replay engine calls this after every strategy decision and
        journals a non-``None`` note on the
        :class:`~repro.obs.DecisionRecord` (``"fallback:<strategy>:
        <reason>"``), so every silent fallback leaves provenance.  The
        default strategy never degrades.
        """
        return None

    @abc.abstractmethod
    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Choose the AP id for one arriving user."""

    def assign_batch(
        self,
        user_ids: Sequence[str],
        aps: Sequence[APState],
        rssi_by_user: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> Optional[Dict[str, str]]:
        """Batch assignment hook.

        Returns ``None`` when the strategy has no batch logic — the engine
        then falls back to sequential ``select`` calls with live state
        updates between them (which is what an arrival-based controller
        actually does).
        """
        return None

    def score_candidates(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """Per-candidate preference scores for decision provenance.

        Lower means preferred; APs the strategy has no opinion on may be
        omitted (they journal with a null score).  This powers
        :class:`repro.obs.DecisionRecord` audit trails and is only called
        when the tracer is enabled, so it may recompute what ``select``
        computes.  The default exposes no scores.
        """
        return {}

    def observe_arrival(self, user_id: str, ap_id: str, time: float) -> None:
        """Called by the engine after a user associates.  Default: no-op.

        Online-learning strategies (see :mod:`repro.core.online`) use
        these observation hooks to keep their social model current from
        the association stream the controller sees anyway.
        """

    def observe_departure(
        self, user_id: str, ap_id: str, time: float, mean_rate: float = 0.0
    ) -> None:
        """Called by the engine after a user disassociates.  Default: no-op."""


class StrongestSignal(SelectionStrategy):
    """The RSSI default: strongest signal wins, load is ignored."""

    name = "rssi"

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Pick the AP per this strategy's policy."""
        if not aps:
            raise ValueError("no candidate APs")
        if not rssi:
            # No radio information: deterministic fallback to the first AP
            # by id, the closest analogue of an arbitrary beacon pick.
            return min(ap.ap_id for ap in aps)
        candidates = {ap.ap_id for ap in aps}
        visible = {ap_id: v for ap_id, v in rssi.items() if ap_id in candidates}
        if not visible:
            return min(candidates)
        return strongest_ap(visible)

    def score_candidates(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """Negated RSSI (strongest signal scores lowest); unseen APs omitted."""
        if not rssi:
            return {}
        candidates = {ap.ap_id for ap in aps}
        return {
            ap_id: -value for ap_id, value in rssi.items() if ap_id in candidates
        }


class LeastLoadedFirst(SelectionStrategy):
    """LLF: the AP with the least workload gets the new user.

    ``metric="load"`` ranks by current traffic load (the paper's main
    reading of LLF); ``metric="users"`` ranks by association count (the
    parenthetical variant "or with the least number of users").
    """

    def __init__(self, metric: str = "load") -> None:
        if metric not in ("load", "users"):
            raise ValueError(f"unknown LLF metric {metric!r}")
        self.metric = metric
        self.name = "llf" if metric == "load" else "llf-users"

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Pick the AP per this strategy's policy."""
        if not aps:
            raise ValueError("no candidate APs")
        if self.metric == "load":
            return least_loaded(aps).ap_id
        return min(aps, key=lambda ap: (ap.user_count, ap.load, ap.ap_id)).ap_id

    def score_candidates(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """The ranked quantity itself: measured load or association count."""
        if self.metric == "load":
            return {ap.ap_id: ap.load for ap in aps}
        return {ap.ap_id: float(ap.user_count) for ap in aps}


class RandomSelection(SelectionStrategy):
    """Uniform random choice — the floor any useful strategy must beat."""

    name = "random"
    # One generator consumed in global arrival order: sharding reorders
    # the draws, so the serial and process engines would diverge.
    shard_safe = False
    shard_safe_reason = "shared RNG consumed in global arrival order"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Pick the AP per this strategy's policy."""
        if not aps:
            raise ValueError("no candidate APs")
        ordered = sorted(ap.ap_id for ap in aps)
        return ordered[int(self.rng.integers(len(ordered)))]


class S3Strategy(SelectionStrategy):
    """The paper's scheme, wrapping a trained selector.

    Degradation chain (``fallback_chain``): the wrapped selector first;
    plain LLF when the social model is stale (older than
    ``model_max_age`` relative to the newest observed event) or the
    selector raises; per-station strongest signal when there is no
    candidate state at all.  Every fallback decision carries a
    ``"fallback:..."`` note via :meth:`consume_degradation`, and the
    degraded sequential path reproduces :class:`LeastLoadedFirst`
    decision-for-decision (``assign_batch`` declines, so the engine's
    live-snapshot sequential path runs).

    Staleness is judged against a clock advanced by the observe hooks —
    the association stream the controller sees anyway — so it needs no
    wall time and stays deterministic.
    """

    name = "s3"
    fallback_chain = ("s3", "llf", "rssi")
    # Only applies when ``model_max_age`` arms the staleness clock; the
    # ageless configuration stays shard-safe (see ``__init__``).
    shard_safe_reason = (
        "staleness clock advanced by observe hooks is mutable "
        "cross-controller state"
    )

    def __init__(
        self,
        selector: S3Selector,
        model_max_age: Optional[float] = None,
        model_trained_at: float = 0.0,
    ) -> None:
        self.selector = selector
        self.model_max_age = model_max_age
        self.model_trained_at = model_trained_at
        self._clock = model_trained_at
        self._llf = LeastLoadedFirst()
        self._note: Optional[str] = None
        if model_max_age is not None:
            if model_max_age <= 0:
                raise ValueError(
                    f"model_max_age must be positive, got {model_max_age!r}"
                )
            # The staleness clock is mutable cross-controller state:
            # sharding the demand stream changes what each decision has
            # observed, so the engines could diverge mid-run.
            self.shard_safe = False

    def _model_stale(self) -> bool:
        if self.model_max_age is None:
            return False
        return (self._clock - self.model_trained_at) > self.model_max_age

    def consume_degradation(self) -> Optional[str]:
        """Pop the note set by the most recent decision call."""
        note, self._note = self._note, None
        return note

    def observe_arrival(self, user_id: str, ap_id: str, time: float) -> None:
        """Advance the staleness clock."""
        if time > self._clock:
            self._clock = time

    def observe_departure(
        self, user_id: str, ap_id: str, time: float, mean_rate: float = 0.0
    ) -> None:
        """Advance the staleness clock."""
        if time > self._clock:
            self._clock = time

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Pick the AP per this strategy's policy (or its fallback)."""
        self._note = None
        if not aps:
            if rssi:
                self._note = "fallback:rssi:no-candidates"
                return strongest_ap(rssi)
            raise ValueError("no candidate APs")
        if self._model_stale():
            self._note = "fallback:llf:model-stale"
            return self._llf.select(user_id, aps, rssi=rssi)
        try:
            return self.selector.select(user_id, aps)
        except Exception:
            self._note = "fallback:llf:selector-error"
            return self._llf.select(user_id, aps, rssi=rssi)

    def assign_batch(
        self,
        user_ids: Sequence[str],
        aps: Sequence[APState],
        rssi_by_user: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> Optional[Dict[str, str]]:
        """Algorithm 1 batch distribution via the wrapped selector.

        Declines (returns ``None``) when degraded: the engine's
        sequential path then takes over, and each per-user ``select``
        call records its own fallback note.
        """
        self._note = None
        if not aps or self._model_stale():
            return None
        try:
            return self.selector.assign_batch(user_ids, aps)
        except Exception:
            return None

    def score_candidates(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """Algorithm 1's primary objective: the added social cost C(AP).

        Under degradation the scores come from the active fallback
        (LLF's load ranking), matching what ``select`` actually ranked.
        Never touches the pending degradation note.
        """
        if self._model_stale():
            return self._llf.score_candidates(user_id, aps, rssi=rssi)
        try:
            return {
                ap.ap_id: self.selector.added_social_cost(user_id, ap)
                for ap in aps
            }
        except Exception:
            return self._llf.score_candidates(user_id, aps, rssi=rssi)
