"""Runtime state of the simulated WLAN: APs, controllers, the campus.

These are the *mutable* counterparts of the static
:class:`~repro.trace.social.CampusLayout` description: an
:class:`APRuntime` tracks who is associated at what rate right now, a
:class:`ControllerRuntime` groups the APs of one controller domain, and
:class:`CampusRuntime` wires the whole campus.  Selection strategies never
touch these objects — they receive immutable
:class:`~repro.core.selection.APState` snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.selection import APState
from repro.trace.social import AccessPointInfo, CampusLayout


class APRuntime:
    """One AP's live association table."""

    def __init__(self, info: AccessPointInfo) -> None:
        self.info = info
        self._sessions: Dict[str, float] = {}  # user id -> rate (bytes/s)
        #: Load as last *measured* by the controller.  Real controllers poll
        #: AP traffic counters on an interval; between polls the view is
        #: stale.  Strategies see this value, never the instantaneous truth.
        self.measured_load: float = 0.0

    @property
    def ap_id(self) -> str:
        """This AP's identifier."""
        return self.info.ap_id

    @property
    def load(self) -> float:
        """Aggregate offered load (bytes/second) of associated users."""
        return sum(self._sessions.values())

    @property
    def user_count(self) -> int:
        """Number of associated users."""
        return len(self._sessions)

    @property
    def users(self) -> Tuple[str, ...]:
        """Associated user ids, sorted."""
        return tuple(sorted(self._sessions))

    def is_associated(self, user_id: str) -> bool:
        """True when the user currently holds a link here."""
        return user_id in self._sessions

    def associate(self, user_id: str, rate: float) -> None:
        """Attach a user.  Double association is a simulator bug: a station
        holds one link at a time (the paper explicitly rules out multi-link
        hardware)."""
        if rate < 0:
            raise ValueError(f"negative rate {rate!r}")
        if user_id in self._sessions:
            raise ValueError(f"user {user_id} already associated to {self.ap_id}")
        self._sessions[user_id] = rate

    def disassociate(self, user_id: str) -> float:
        """Detach a user; returns the rate it was carrying."""
        if user_id not in self._sessions:
            raise KeyError(f"user {user_id} not associated to {self.ap_id}")
        return self._sessions.pop(user_id)

    def refresh_measurement(self) -> None:
        """One controller poll: the measured load catches up to the truth."""
        self.measured_load = self.load

    def snapshot(self, measured: bool = True) -> APState:
        """Immutable view for the selection algorithms.

        ``measured=True`` (the default) exposes the controller's last
        *polled* load — what a real WLAN controller acts on.  The
        association table (``users``) is always fresh: the controller
        manages associations itself.  Pass ``measured=False`` only for
        oracle experiments.
        """
        return APState(
            ap_id=self.ap_id,
            bandwidth=self.info.bandwidth,
            load=self.measured_load if measured else self.load,
            users=self.users,
        )

    def __repr__(self) -> str:
        return f"APRuntime({self.ap_id}, users={self.user_count}, load={self.load:.0f})"


class ControllerRuntime:
    """The APs of one controller domain."""

    def __init__(self, controller_id: str, aps: List[APRuntime]) -> None:
        if not aps:
            raise ValueError(f"controller {controller_id} has no APs")
        self.controller_id = controller_id
        self.aps: Dict[str, APRuntime] = {ap.ap_id: ap for ap in aps}

    @property
    def ap_ids(self) -> List[str]:
        """The domain's AP ids, sorted."""
        return sorted(self.aps)

    def snapshots(self, measured: bool = True) -> List[APState]:
        """Immutable APState views of every AP, sorted by id."""
        return [self.aps[ap_id].snapshot(measured=measured) for ap_id in self.ap_ids]

    def refresh_measurements(self) -> None:
        """Poll every AP: measured loads catch up to the truth."""
        for ap in self.aps.values():
            ap.refresh_measurement()

    def loads(self) -> List[float]:
        """Current true loads, ordered by ap_ids."""
        return [self.aps[ap_id].load for ap_id in self.ap_ids]

    def user_counts(self) -> List[int]:
        """Current association counts, ordered by ap_ids."""
        return [self.aps[ap_id].user_count for ap_id in self.ap_ids]

    def find_user(self, user_id: str) -> Optional[str]:
        """AP id currently serving ``user_id`` in this domain, if any."""
        for ap_id in self.ap_ids:
            if self.aps[ap_id].is_associated(user_id):
                return ap_id
        return None


class CampusRuntime:
    """The whole campus: every controller, built from a static layout."""

    def __init__(self, layout: CampusLayout) -> None:
        self.layout = layout
        self.controllers: Dict[str, ControllerRuntime] = {}
        by_controller: Dict[str, List[APRuntime]] = {}
        for ap_info in layout.aps.values():
            by_controller.setdefault(ap_info.controller_id, []).append(
                APRuntime(ap_info)
            )
        for controller_id, aps in by_controller.items():
            aps.sort(key=lambda ap: ap.ap_id)
            self.controllers[controller_id] = ControllerRuntime(controller_id, aps)

    def controller_for_building(self, building_id: str) -> ControllerRuntime:
        """The controller runtime serving a building."""
        building = self.layout.buildings.get(building_id)
        if building is None:
            raise KeyError(f"unknown building {building_id!r}")
        return self.controllers[building.controller_id]

    def ap(self, ap_id: str) -> APRuntime:
        """Look up one AP runtime by id."""
        controller_id = self.layout.controller_of_ap(ap_id)
        return self.controllers[controller_id].aps[ap_id]

    def total_users(self) -> int:
        """Campus-wide association count."""
        return sum(
            ap.user_count
            for controller in self.controllers.values()
            for ap in controller.aps.values()
        )

    def total_load(self) -> float:
        """Campus-wide offered load (bytes/second)."""
        return sum(
            ap.load
            for controller in self.controllers.values()
            for ap in controller.aps.values()
        )
