"""A log-distance path-loss RSSI model.

The default enterprise-WLAN strategy the paper criticizes associates each
station with the strongest-RSSI AP.  To implement that baseline the
simulator needs a radio model; the standard indoor log-distance form is
used::

    RSSI(d) = P_tx - PL_0 - 10 * n * log10(max(d, d_0) / d_0) + shadowing

with transmit power ``P_tx`` = 20 dBm, reference loss ``PL_0`` = 40 dB at
``d_0`` = 1 m, and path-loss exponent ``n`` = 3 (indoor with obstacles).
Optional log-normal shadowing models fading; the replay engine keeps it
deterministic per (user, session) via named RNG streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.trace.social import AccessPointInfo, BuildingInfo

TX_POWER_DBM = 20.0
REFERENCE_LOSS_DB = 40.0
REFERENCE_DISTANCE_M = 1.0
PATH_LOSS_EXPONENT = 3.0

#: Stations cannot decode below this; APs weaker than the floor are not
#: candidates for association.
SENSITIVITY_FLOOR_DBM = -90.0


def path_loss_rssi(
    distance: float,
    tx_power: float = TX_POWER_DBM,
    exponent: float = PATH_LOSS_EXPONENT,
    shadowing_db: float = 0.0,
) -> float:
    """Received signal strength (dBm) at ``distance`` meters."""
    if distance < 0:
        raise ValueError(f"negative distance {distance!r}")
    d = max(distance, REFERENCE_DISTANCE_M)
    loss = REFERENCE_LOSS_DB + 10.0 * exponent * np.log10(d / REFERENCE_DISTANCE_M)
    return float(tx_power - loss + shadowing_db)


def rssi_map(
    position: Tuple[float, float],
    aps: Iterable[AccessPointInfo],
    rng: Optional[np.random.Generator] = None,
    shadowing_sigma_db: float = 0.0,
) -> Dict[str, float]:
    """RSSI from ``position`` to each AP, above the sensitivity floor.

    With ``rng`` and a positive ``shadowing_sigma_db``, i.i.d. log-normal
    shadowing is applied per AP.  APs below the floor are omitted; callers
    should treat an empty map as "no coverage here".
    """
    x, y = position
    out: Dict[str, float] = {}
    for ap in aps:
        dx = x - ap.position[0]
        dy = y - ap.position[1]
        distance = float(np.hypot(dx, dy))
        shadow = 0.0
        if rng is not None and shadowing_sigma_db > 0:
            shadow = float(rng.normal(0.0, shadowing_sigma_db))
        rssi = path_loss_rssi(distance, shadowing_db=shadow)
        if rssi >= SENSITIVITY_FLOOR_DBM:
            out[ap.ap_id] = rssi
    return out


def sample_position(
    building: BuildingInfo,
    rng: np.random.Generator,
    radius: float = 45.0,
) -> Tuple[float, float]:
    """A uniform random position inside the building's coverage disc."""
    if radius <= 0:
        raise ValueError(f"non-positive radius {radius!r}")
    angle = rng.random() * 2 * np.pi
    # sqrt for area-uniform sampling within the disc.
    r = radius * np.sqrt(rng.random())
    return (
        building.position[0] + float(r * np.cos(angle)),
        building.position[1] + float(r * np.sin(angle)),
    )


def strongest_ap(rssi: Dict[str, float]) -> str:
    """The AP id with the strongest signal (id as deterministic tie-break)."""
    if not rssi:
        raise ValueError("empty RSSI map — no coverage")
    return max(rssi.items(), key=lambda item: (item[1], item[0]))[0]
