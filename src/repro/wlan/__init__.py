"""Enterprise WLAN simulator with pluggable AP-selection strategies.

The runtime model mirrors Fig. 1 of the paper: light-weight APs grouped
under WLAN controllers; a controller assigns each arriving user to one of
its APs.  The simulator is *trace-driven* (Section V.A): it replays
:class:`~repro.trace.records.DemandSession` streams — arrivals, departures
and per-session traffic are fixed by the trace; only the AP choice varies
with the strategy under test.

``entities``    runtime AP / controller / campus state
``radio``       log-distance path-loss RSSI model and position sampling
``strategies``  StrongestSignal, LeastLoadedFirst, Random, and the S³
                adapter over :mod:`repro.core`
``replay``      the event-driven replay engine (arrival batching, metrics)
``metrics``     per-controller load/user time series and balance series
"""

from repro.wlan.entities import APRuntime, CampusRuntime, ControllerRuntime
from repro.wlan.radio import path_loss_rssi, rssi_map, sample_position
from repro.wlan.strategies import (
    LeastLoadedFirst,
    RandomSelection,
    S3Strategy,
    SelectionStrategy,
    StrongestSignal,
)
from repro.wlan.replay import ReplayConfig, ReplayEngine, ReplayResult, collect_trace
from repro.wlan.metrics import ControllerSeries, MetricsCollector

__all__ = [
    "APRuntime",
    "CampusRuntime",
    "ControllerRuntime",
    "path_loss_rssi",
    "rssi_map",
    "sample_position",
    "LeastLoadedFirst",
    "RandomSelection",
    "S3Strategy",
    "SelectionStrategy",
    "StrongestSignal",
    "ReplayConfig",
    "ReplayEngine",
    "ReplayResult",
    "collect_trace",
    "ControllerSeries",
    "MetricsCollector",
]
