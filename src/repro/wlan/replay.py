"""Trace-driven replay: demands in, session log + metrics out.

This is the paper's evaluation vehicle (Section V.A): the *demand* side of
the trace — who arrives where, when they leave, how much traffic they
carry — is fixed; the strategy under test only decides which AP serves
each arrival.  Users are never migrated once associated (the paper's
user-friendliness requirement), so a strategy's entire influence is the
association decision.

Mechanics (driven by the :mod:`repro.sim` kernel):

* **arrivals** are buffered per controller for ``batch_window`` seconds,
  then flushed as one batch — simultaneous (co-)arrivals reach the
  strategy together, which is what Algorithm 1's "users to be distributed"
  graph operates on.  Strategies without batch logic are fed the batch
  sequentially with live state updates in between, which is exactly the
  behaviour of an arrival-based controller;
* **departures** are exact events at the demanded departure time;
* a **sampler** snapshots every controller's per-AP load and user counts
  on a fixed interval for the metrics series.

Event ordering at equal timestamps: fault events (priority -1) before
departures (priority 0) before arrivals (priority 1) before batch flushes
(priority 2) before samples (priority 3), so a flush sees every departure
up to its instant and a fault takes effect before anything else at its
instant.

Fault injection (``fault_plan=``): ``ApDown`` evicts the AP's active
users — each gets a truncated session record and its demand remainder is
re-buffered, producing one forced co-leaving/re-association batch — and
hides the AP from candidate sets until the matching ``ApUp``.
``ControllerOutage`` degrades steering to per-station strongest-signal
while it lasts; ``StaleLoadReport`` skips the controller's next load
poll.  All fault handling is keyed off the plan alone, so same-seed
chaos replays stay byte-identical under both engines (see
``docs/robustness.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import perf
from repro.analysis.balance import normalized_balance_index
from repro.core.selection import APState
from repro.faults.model import (
    REPLAY_KINDS,
    ApDown,
    ApUp,
    ControllerOutage,
    FaultEvent,
    FaultPlan,
    StaleLoadReport,
)
from repro.obs import metrics as obs_metrics
from repro.obs.records import (
    DecisionRecord,
    FaultRecord,
    SampleRecord,
    candidates_from_states,
)
from repro.obs.tracer import NULL_SPAN, AnySpan, get_tracer
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.timeline import MINUTE
from repro.trace.columnar import DemandArrays
from repro.trace.records import DemandSession, SessionRecord, TraceBundle
from repro.trace.social import CampusLayout
from repro.wlan.entities import CampusRuntime, ControllerRuntime
from repro.wlan.metrics import ControllerSeries, MetricsCollector
from repro.wlan.radio import rssi_map, sample_position
from repro.wlan.strategies import SelectionStrategy, StrongestSignal

_PRIORITY_FAULT = -1
_PRIORITY_DEPARTURE = 0
_PRIORITY_ARRIVAL = 1
_PRIORITY_FLUSH = 2
_PRIORITY_SAMPLE = 3


def shard_stream_name(controller_id: str) -> str:
    """The :meth:`~repro.sim.rng.RandomStreams.child` name of one shard.

    Both the serial engine and a :mod:`repro.runtime` worker derive the
    radio streams of controller ``c`` from the *same* child factory,
    ``RandomStreams(seed).child(shard_stream_name(c))`` — which is what
    makes per-shard draws identical across engines by construction.
    """
    return f"shard:{controller_id}"


@dataclass(frozen=True)
class ReplayWindow:
    """The global event grid of one replay run.

    A sharded run must sample and poll on the *whole* run's grid — first
    arrival to horizon — not on each shard's local extent, or the merged
    series would disagree with a single-process run.  The window pins
    that grid: ``start`` anchors the simulator clock and both periodic
    schedules, ``horizon`` is the run-until instant.
    """

    start: float
    horizon: float

    def __post_init__(self) -> None:
        if self.horizon < self.start:
            raise ValueError(
                f"window horizon {self.horizon} precedes start {self.start}"
            )


def window_for(
    demands: Sequence[DemandSession], config: ReplayConfig
) -> ReplayWindow:
    """The window a serial run of ``demands`` would use."""
    if not demands:
        raise ValueError("cannot derive a window from zero demands")
    return ReplayWindow(
        start=min(d.arrival for d in demands),
        horizon=max(d.departure for d in demands) + config.batch_window,
    )


@dataclass
class ShardRun:
    """One engine pass plus the bookkeeping a deterministic merge needs.

    ``sampler_ticks``/``poller_ticks`` count the periodic events the pass
    processed; every shard of one window processes the same number, and
    the merge subtracts the duplicates so the summed event count equals
    the serial engine's.
    """

    result: ReplayResult
    final_now: float
    sampler_ticks: int
    poller_ticks: int


@dataclass(frozen=True)
class ReplayConfig:
    """Replay engine knobs."""

    #: Arrival batching window per controller (seconds).  Zero still groups
    #: arrivals with identical timestamps into one batch.
    batch_window: float = 60.0
    #: Metrics sampling interval (seconds).
    sample_interval: float = 5 * MINUTE
    #: Controller load-polling interval (seconds).  Strategies only see AP
    #: loads as of the last poll — real controllers read AP traffic
    #: counters periodically, and the staleness between polls is precisely
    #: what makes arrival-based least-loaded selection herd co-arriving
    #: users onto the momentarily-emptiest AP.  Association *counts* are
    #: always fresh (the controller owns the association table).
    load_measurement_interval: float = 5 * MINUTE
    #: Log-normal shadowing sigma for the radio model (dB); zero disables.
    shadowing_sigma_db: float = 4.0
    #: Seed for station-position / shadowing draws.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.load_measurement_interval <= 0:
            raise ValueError("load_measurement_interval must be positive")


@dataclass
class ReplayResult:
    """Everything a replay run produces."""

    strategy_name: str
    sessions: List[SessionRecord]
    series: Dict[str, ControllerSeries]
    events_processed: int

    def to_bundle(
        self, source: Optional[TraceBundle] = None
    ) -> TraceBundle:
        """A trace bundle of the replayed sessions.

        With ``source`` given, its flows and demands are carried over —
        this is how the *collected* training trace (sessions under LLF +
        router flows) is assembled.
        """
        return TraceBundle(
            sessions=self.sessions,
            flows=source.flows if source is not None else [],
            demands=source.demands if source is not None else [],
        )

    def mean_balance(self) -> float:
        """Mean normalized balance index over controllers' active samples."""
        values: List[float] = []
        for series in self.series.values():
            mask = series.active_mask()
            if mask.any():
                values.extend(series.balance_series()[mask])
        return float(np.mean(values)) if values else 1.0


class ReplayEngine:
    """Replays a demand stream under one strategy."""

    def __init__(
        self,
        layout: CampusLayout,
        strategy: SelectionStrategy,
        config: Optional[ReplayConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.layout = layout
        self.strategy = strategy
        self.config = config if config is not None else ReplayConfig()
        self.fault_plan = fault_plan
        # Engine-held strongest-signal selector: the declared last resort
        # when a controller is unreachable (ControllerOutage).  Stateless,
        # so sharing one instance across batches is safe.
        self._rssi_fallback = StrongestSignal()
        self._streams = RandomStreams(self.config.seed)
        # Per-controller child stream factories (see shard_stream_name):
        # every radio draw is rooted in its controller's child factory, so
        # a worker replaying only that controller derives the exact same
        # streams as the serial engine replaying the whole campus.
        self._radio: Dict[str, RandomStreams] = {}

    # ------------------------------------------------------------- running

    def run(self, demands: Sequence[DemandSession]) -> ReplayResult:
        """Replay all demands; returns sessions and sampled metrics."""
        with perf.timer(f"replay.run.{self.strategy.name}"):
            with get_tracer().span(
                "replay.run",
                strategy=self.strategy.name,
                demands=len(demands),
            ) as span:
                result = self._run(demands, span).result
                span.set(
                    sessions=len(result.sessions),
                    events=result.events_processed,
                )
        perf.count("replay.events", result.events_processed)
        perf.count("replay.sessions", len(result.sessions))
        return result

    def run_window(
        self,
        demands: "Sequence[DemandSession] | DemandArrays",
        window: ReplayWindow,
        controllers: Optional[Sequence[str]] = None,
    ) -> ShardRun:
        """Replay one shard of a larger run on an externally fixed grid.

        This is the :mod:`repro.runtime` worker entry point: ``window``
        pins the simulator start and horizon to the *whole* run's extent
        (so sampler and poller ticks land on the global grid), and
        ``controllers`` restricts sampling, polling and tracer samples to
        the shard's controller domain(s).  Unlike :meth:`run`, no outer
        span or perf wrapper is opened — the parent process owns those —
        and the raw :class:`ShardRun` bookkeeping is returned for the
        deterministic merge.  ``demands`` may arrive in columnar form
        (the shared-memory transport hands workers
        :class:`~repro.trace.columnar.DemandArrays`); the engine
        materializes the records itself.
        """
        return self._run(demands, window=window, controllers=controllers)

    def _run(
        self,
        demands: "Sequence[DemandSession] | DemandArrays",
        span: Optional[AnySpan] = None,
        window: Optional[ReplayWindow] = None,
        controllers: Optional[Sequence[str]] = None,
    ) -> ShardRun:
        if isinstance(demands, DemandArrays):
            demands = demands.to_demands()
        demands = sorted(demands, key=lambda d: (d.arrival, d.user_id))
        if not demands and window is None:
            return ShardRun(
                ReplayResult(self.strategy.name, [], {}, 0), 0.0, 0, 0
            )
        if window is None:
            window = window_for(demands, self.config)
        if demands and demands[0].arrival < window.start:
            raise ValueError(
                f"demand arrives at {demands[0].arrival} before the "
                f"window start {window.start}"
            )

        campus = CampusRuntime(self.layout)
        sampled = (
            sorted(campus.controllers)
            if controllers is None
            else sorted(controllers)
        )
        for controller_id in sampled:
            if controller_id not in campus.controllers:
                raise KeyError(f"unknown controller {controller_id!r}")
        collector = MetricsCollector()
        sim = Simulator(start_time=window.start)
        tracer = get_tracer()
        if span is not None:
            span.sim_start = window.start
        # Periodic ticks processed; every shard of one window sees the
        # same counts, which the merge layer relies on (see ShardRun).
        ticks = {"sample": 0, "poll": 0}
        # Per-controller flush sequence numbers for decision provenance.
        batch_seq: Dict[str, int] = {}
        sessions: List[SessionRecord] = []
        # Per-controller arrival buffers and their pending flush flags.
        buffers: Dict[str, List[DemandSession]] = {}
        flush_scheduled: Dict[str, bool] = {}
        # user -> (ap_id, controller_id, owning demand) while associated.
        active: Dict[str, Tuple[str, str, DemandSession]] = {}

        # ---- fault state (all empty when no plan is injected) ----------
        # APs currently down (hidden from candidate sets).
        down: Set[str] = set()
        # controller -> sim time its outage ends (strongest-signal
        # fallback until then).
        outage_until: Dict[str, float] = {}
        # Controllers whose next load poll must be skipped (stale report).
        stale_pending: Set[str] = set()
        # controller -> sorted ApUp times, for deferring a flush whose
        # controller has every AP down.
        up_times: Dict[str, List[float]] = {}
        fault_events = self._plan_events(window, sampled, up_times)

        def handle_departure(demand: DemandSession) -> None:
            entry = active.get(demand.user_id)
            if entry is None or entry[2] is not demand:
                # This demand's arrival was skipped (user already online
                # under another demand); nothing to tear down.
                return
            del active[demand.user_id]
            ap_id, controller_id, _ = entry
            campus.controllers[controller_id].aps[ap_id].disassociate(demand.user_id)
            sessions.append(
                SessionRecord(
                    user_id=demand.user_id,
                    ap_id=ap_id,
                    controller_id=controller_id,
                    connect=demand.arrival,
                    disconnect=demand.departure,
                    bytes_total=demand.bytes_total,
                )
            )
            self.strategy.observe_departure(
                demand.user_id, ap_id, demand.departure, mean_rate=demand.mean_rate
            )

        # user -> demands currently waiting in some controller's buffer.
        buffered: Dict[str, List[DemandSession]] = {}

        def place(demand: DemandSession, ap_id: str, controller_id: str) -> None:
            """Commit one placement decision.

            A demand whose departure already passed (it lived and died
            within the batching latency) is recorded directly — its load
            never materializes, but the session existed and the log must
            say so.  Everything else associates normally.
            """
            controller = campus.controllers[controller_id]
            if ap_id not in controller.aps:
                raise RuntimeError(
                    f"strategy {self.strategy.name} returned invalid AP "
                    f"{ap_id!r} for user {demand.user_id}"
                )
            self.strategy.observe_arrival(demand.user_id, ap_id, sim.now)
            if demand.departure <= sim.now:
                sessions.append(
                    SessionRecord(
                        user_id=demand.user_id,
                        ap_id=ap_id,
                        controller_id=controller_id,
                        connect=demand.arrival,
                        disconnect=demand.departure,
                        bytes_total=demand.bytes_total,
                    )
                )
                self.strategy.observe_departure(
                    demand.user_id, ap_id, demand.departure,
                    mean_rate=demand.mean_rate,
                )
                return
            controller.aps[ap_id].associate(demand.user_id, demand.mean_rate)
            active[demand.user_id] = (ap_id, controller_id, demand)

        def flush(controller_id: str) -> None:
            batch = buffers.get(controller_id, [])
            if batch and down:
                controller = campus.controllers[controller_id]
                if all(ap_id in down for ap_id in controller.ap_ids):
                    # Nothing can serve this batch: defer the flush to the
                    # controller's next ApUp instant.  The up event runs at
                    # priority -1, so the AP is back before the re-flush.
                    next_up = next(
                        (
                            t
                            for t in up_times.get(controller_id, [])
                            if t > sim.now
                        ),
                        None,
                    )
                    if next_up is None:
                        raise RuntimeError(
                            f"controller {controller_id}: every AP is down "
                            f"at t={sim.now} and the fault plan schedules "
                            "no ApUp — the batch can never be served"
                        )
                    perf.count("faults.deferred_flushes")
                    sim.schedule(
                        next_up,
                        lambda cid=controller_id: flush(cid),
                        priority=_PRIORITY_FLUSH,
                        name=f"flush-{controller_id}",
                    )
                    return
            flush_scheduled[controller_id] = False
            if not batch:
                return
            buffers[controller_id] = []
            for demand in batch:
                waiting = buffered.get(demand.user_id, [])
                if demand in waiting:
                    waiting.remove(demand)
                if not waiting:
                    buffered.pop(demand.user_id, None)
            seq = batch_seq.get(controller_id, 0)
            batch_seq[controller_id] = seq + 1
            self._assign_batch(
                campus, controller_id, batch, place, sim,
                batch_id=f"{controller_id}#{seq}",
                down=down,
                outage_until=outage_until,
            )

        def handle_arrival(demand: DemandSession) -> None:
            # One radio per station: a demand that temporally overlaps the
            # user's active or already-buffered demand cannot hold a second
            # link and is dropped.  Non-overlapping demands that merely
            # *look* concurrent because of batching latency proceed.
            entry = active.get(demand.user_id)
            if entry is not None and entry[2].departure > demand.arrival:
                return
            for waiting in buffered.get(demand.user_id, ()):
                if waiting.departure > demand.arrival:
                    return
            controller = campus.controller_for_building(demand.building_id)
            buffers.setdefault(controller.controller_id, []).append(demand)
            buffered.setdefault(demand.user_id, []).append(demand)
            if not flush_scheduled.get(controller.controller_id, False):
                flush_scheduled[controller.controller_id] = True
                sim.schedule(
                    sim.now + self.config.batch_window,
                    lambda cid=controller.controller_id: flush(cid),
                    priority=_PRIORITY_FLUSH,
                    name=f"flush-{controller.controller_id}",
                )

        for demand in demands:
            sim.schedule(
                demand.arrival,
                lambda d=demand: handle_arrival(d),
                priority=_PRIORITY_ARRIVAL,
                name="arrival",
            )
            # A session shorter than the batch window departs only after its
            # arrival batch has been flushed; the epsilon puts the departure
            # strictly after the flush event at the window boundary.
            departure_time = demand.departure
            flush_time = demand.arrival + self.config.batch_window
            if departure_time <= flush_time:
                departure_time = flush_time + 1e-6
            sim.schedule(
                departure_time,
                lambda d=demand: handle_departure(d),
                priority=_PRIORITY_DEPARTURE,
                name="departure",
            )

        def fault_ap_down(event: ApDown) -> None:
            controller_id = self.layout.controller_of_ap(event.ap_id)
            controller = campus.controllers[controller_id]
            ap = controller.aps[event.ap_id]
            down.add(event.ap_id)
            evicted = list(ap.users)
            if tracer.enabled:
                tracer.fault(
                    FaultRecord(
                        sim_time=sim.now,
                        kind=event.kind,
                        target=event.ap_id,
                        controller_id=controller_id,
                        detail={"evicted": len(evicted)},
                    )
                )
            perf.count("faults.evicted_users", len(evicted))
            for user_id in evicted:
                ap_id, _, demand = active.pop(user_id)
                ap.disassociate(user_id)
                # Truncated first leg: bytes prorated to the served
                # fraction of the demanded dwell.
                duration = demand.departure - demand.arrival
                served = (sim.now - demand.arrival) / duration
                sessions.append(
                    SessionRecord(
                        user_id=user_id,
                        ap_id=ap_id,
                        controller_id=controller_id,
                        connect=demand.arrival,
                        disconnect=sim.now,
                        bytes_total=demand.bytes_total * served,
                    )
                )
                self.strategy.observe_departure(
                    user_id, ap_id, sim.now, mean_rate=demand.mean_rate
                )
                if demand.departure <= sim.now:
                    continue
                # The remainder re-arrives *now* — the forced co-leaving
                # burst: every evicted user hits the same flush batch.
                remaining = 1.0 - served
                remainder = dc_replace(
                    demand,
                    arrival=sim.now,
                    realm_bytes=tuple(
                        b * remaining for b in demand.realm_bytes
                    ),
                )
                handle_arrival(remainder)
                departure_time = remainder.departure
                flush_time = sim.now + self.config.batch_window
                if departure_time <= flush_time:
                    departure_time = flush_time + 1e-6
                sim.schedule(
                    departure_time,
                    lambda d=remainder: handle_departure(d),
                    priority=_PRIORITY_DEPARTURE,
                    name="departure",
                )

        def fault_ap_up(event: ApUp) -> None:
            down.discard(event.ap_id)
            if tracer.enabled:
                tracer.fault(
                    FaultRecord(
                        sim_time=sim.now,
                        kind=event.kind,
                        target=event.ap_id,
                        controller_id=self.layout.controller_of_ap(
                            event.ap_id
                        ),
                        detail={},
                    )
                )

        def fault_outage(event: ControllerOutage) -> None:
            current = outage_until.get(event.controller_id, window.start)
            outage_until[event.controller_id] = max(
                current, sim.now + event.duration
            )
            if tracer.enabled:
                tracer.fault(
                    FaultRecord(
                        sim_time=sim.now,
                        kind=event.kind,
                        target=event.controller_id,
                        controller_id=event.controller_id,
                        detail={"duration": event.duration},
                    )
                )

        def fault_stale(event: StaleLoadReport) -> None:
            stale_pending.add(event.controller_id)
            if tracer.enabled:
                tracer.fault(
                    FaultRecord(
                        sim_time=sim.now,
                        kind=event.kind,
                        target=event.controller_id,
                        controller_id=event.controller_id,
                        detail={},
                    )
                )

        def fire_fault(event: FaultEvent) -> None:
            perf.count(f"faults.{event.kind}")
            # Run-scoped: _plan_events filtered the plan to this pass's
            # controllers, so sharded counts merge to the serial totals.
            obs_metrics.inc("faults.injected", 1.0, sim.now)
            if isinstance(event, ApDown):
                fault_ap_down(event)
            elif isinstance(event, ApUp):
                fault_ap_up(event)
            elif isinstance(event, ControllerOutage):
                fault_outage(event)
            elif isinstance(event, StaleLoadReport):
                fault_stale(event)
            else:  # pragma: no cover - _plan_events filters to REPLAY_KINDS
                raise TypeError(f"unexpected fault event {event!r}")

        # Plan order is sorted (time, kind, target); scheduling in plan
        # order makes same-instant faults fire identically everywhere
        # (the merge layer keys fragments the same way).
        for event in fault_events:
            sim.schedule(
                event.time,
                lambda e=event: fire_fault(e),
                priority=_PRIORITY_FAULT,
                name=f"fault-{event.kind}",
            )

        def take_sample() -> None:
            ticks["sample"] += 1
            collector.sample(sim.now, campus, controller_ids=sampled)
            metrics_on = obs_metrics.REGISTRY.enabled
            if tracer.enabled or metrics_on:
                for controller_id in sampled:
                    controller = campus.controllers[controller_id]
                    loads = controller.loads()
                    total_load = float(sum(loads))
                    if metrics_on:
                        obs_metrics.set_gauge(
                            "replay.controller_load",
                            total_load,
                            sim.now,
                            (("controller", controller_id),),
                        )
                    if tracer.enabled:
                        tracer.sample(
                            SampleRecord(
                                sim_time=sim.now,
                                controller_id=controller_id,
                                balance=normalized_balance_index(loads),
                                total_load=total_load,
                                users=int(sum(controller.user_counts())),
                            )
                        )

        stop_sampler = sim.every(
            self.config.sample_interval,
            take_sample,
            start=window.start,
            priority=_PRIORITY_SAMPLE,
            name="sample",
        )

        def poll_loads() -> None:
            ticks["poll"] += 1
            for controller_id in sampled:
                if controller_id in stale_pending:
                    # StaleLoadReport: this poll is lost; strategies keep
                    # steering on the previous measurement for one more
                    # interval.
                    stale_pending.discard(controller_id)
                    perf.count("faults.stale_polls")
                    continue
                campus.controllers[controller_id].refresh_measurements()

        stop_poller = sim.every(
            self.config.load_measurement_interval,
            poll_loads,
            start=window.start,
            priority=_PRIORITY_DEPARTURE,  # polls see departures of the instant
            name="load-poll",
        )
        sim.run(until=window.horizon)
        stop_sampler()
        stop_poller()
        if span is not None:
            span.sim_end = sim.now

        result = ReplayResult(
            strategy_name=self.strategy.name,
            sessions=sorted(sessions, key=lambda s: (s.connect, s.user_id)),
            series=collector.series(),
            events_processed=sim.events_processed,
        )
        return ShardRun(
            result=result,
            final_now=sim.now,
            sampler_ticks=ticks["sample"],
            poller_ticks=ticks["poll"],
        )

    # ----------------------------------------------------------- internals

    def _plan_events(
        self,
        window: ReplayWindow,
        sampled: Sequence[str],
        up_times: Dict[str, List[float]],
    ) -> List[FaultEvent]:
        """Validate and filter the fault plan for one engine pass.

        Returns the replay-relevant events whose controller is in the
        pass's ``sampled`` domain — which is what keeps a sharded run's
        fault handling identical to the serial engine's: each worker
        fires exactly the events the serial run fires on its controllers.
        Events before the window start are an error; events past the
        horizon never fire and are dropped silently (a plan may outlive a
        short replay).  ``up_times`` is filled with each controller's
        sorted ApUp instants (for flush deferral).
        """
        if self.fault_plan is None:
            return []
        events: List[FaultEvent] = []
        sampled_set = set(sampled)
        for event in self.fault_plan.of_kinds(REPLAY_KINDS):
            if isinstance(event, (ApDown, ApUp)):
                if event.ap_id not in self.layout.aps:
                    raise KeyError(
                        f"fault plan names unknown AP {event.ap_id!r}"
                    )
                controller_id = self.layout.controller_of_ap(event.ap_id)
            else:
                controller_id = event.controller_id
                if controller_id not in self.layout.controller_ids:
                    raise KeyError(
                        f"fault plan names unknown controller "
                        f"{controller_id!r}"
                    )
            if event.time < window.start:
                raise ValueError(
                    f"fault event {event.kind!r} at t={event.time} "
                    f"precedes the window start {window.start}"
                )
            if controller_id not in sampled_set:
                continue
            if event.time > window.horizon:
                continue
            events.append(event)
            if isinstance(event, ApUp):
                up_times.setdefault(controller_id, []).append(event.time)
        for times in up_times.values():
            times.sort()
        return events

    def _candidate_states(
        self, controller: ControllerRuntime, down: Optional[Set[str]]
    ) -> List[APState]:
        """The controller's snapshots minus APs currently down."""
        snapshots = controller.snapshots()
        if down:
            snapshots = [s for s in snapshots if s.ap_id not in down]
        return snapshots

    def _assign_batch(
        self,
        campus: CampusRuntime,
        controller_id: str,
        batch: List[DemandSession],
        place: Callable[[DemandSession, str, str], None],
        sim: Simulator,
        batch_id: str = "",
        down: Optional[Set[str]] = None,
        outage_until: Optional[Dict[str, float]] = None,
    ) -> None:
        controller = campus.controllers[controller_id]
        tracer = get_tracer()
        rssi_by_user = {
            d.user_id: self._station_rssi(d, controller_id) for d in batch
        }
        user_ids = [d.user_id for d in batch]
        snapshots = self._candidate_states(controller, down)
        perf.count("replay.batches")
        obs_metrics.inc("replay.batches", 1.0, sim.now)
        # Build the span args only when tracing: this runs once per flush,
        # and the disabled path must stay near-free.
        span = (
            tracer.span(
                "replay.flush",
                sim_time=sim.now,
                clock=lambda: sim.now,
                controller=controller_id,
                users=len(batch),
            )
            if tracer.enabled
            else NULL_SPAN
        )
        with span:
            outage_end = (
                None if outage_until is None
                else outage_until.get(controller_id)
            )
            if outage_end is not None and sim.now < outage_end:
                # Controller unreachable: the engine steers each station
                # to its strongest signal, the declared last resort of
                # every fallback chain.
                perf.count("faults.outage_fallback", len(batch))
                for demand in batch:
                    states = self._candidate_states(controller, down)
                    choice = self._rssi_fallback.select(
                        demand.user_id,
                        states,
                        rssi=rssi_by_user[demand.user_id],
                    )
                    self._observe_decision(
                        sim.now, len(states),
                        "fallback:rssi:controller-outage",
                    )
                    if tracer.enabled:
                        scores = self._rssi_fallback.score_candidates(
                            demand.user_id,
                            states,
                            rssi=rssi_by_user[demand.user_id],
                        )
                        tracer.decision(
                            DecisionRecord(
                                user_id=demand.user_id,
                                strategy=self._rssi_fallback.name,
                                controller_id=controller_id,
                                batch_id=batch_id,
                                sim_time=sim.now,
                                chosen=choice,
                                candidates=candidates_from_states(
                                    states, scores
                                ),
                                mode="single",
                                note="fallback:rssi:controller-outage",
                            )
                        )
                    place(demand, choice, controller_id)
                return
            with perf.timer("replay.assign_batch"):
                placement = self.strategy.assign_batch(
                    user_ids, snapshots, rssi_by_user=rssi_by_user
                )
            if placement is None:
                # Sequential fallback: live snapshots between picks, which
                # is what an arrival-at-a-time controller does.
                for demand in batch:
                    states = self._candidate_states(controller, down)
                    choice = self.strategy.select(
                        demand.user_id,
                        states,
                        rssi=rssi_by_user[demand.user_id],
                    )
                    note = self.strategy.consume_degradation()
                    self._observe_decision(sim.now, len(states), note)
                    if tracer.enabled:
                        tracer.decision(
                            self._decision(
                                demand, states, choice, controller_id,
                                batch_id, sim.now, mode="single",
                                rssi=rssi_by_user[demand.user_id],
                                note=note,
                            )
                        )
                    place(demand, choice, controller_id)
                return

            note = self.strategy.consume_degradation()
            for demand in batch:
                ap_id = placement.get(demand.user_id)
                if ap_id is None:
                    raise RuntimeError(
                        f"strategy {self.strategy.name} returned no AP "
                        f"for user {demand.user_id}"
                    )
                self._observe_decision(sim.now, len(snapshots), note)
                if tracer.enabled:
                    # Candidates are the pre-batch snapshots: the state the
                    # batch strategy actually scored against.
                    tracer.decision(
                        self._decision(
                            demand, snapshots, ap_id, controller_id,
                            batch_id, sim.now, mode="batch",
                            rssi=rssi_by_user[demand.user_id],
                            note=note,
                        )
                    )
                place(demand, ap_id, controller_id)

    def _observe_decision(
        self, sim_time: float, candidates: int, note: Optional[str]
    ) -> None:
        """Record one decision's run-scoped metrics (no-op when disabled).

        ``fallback_depth`` is the position in the strategy's declared
        ``fallback_chain`` that produced the decision: 0 for the primary
        path (``note`` absent), the chain index of the noted fallback
        strategy, or one past the chain for last resorts the chain does
        not name.
        """
        registry = obs_metrics.REGISTRY
        if not registry.enabled:
            return
        registry.counter("replay.decisions").inc(1.0, sim_time)
        registry.histogram("replay.candidate_set_size").observe(
            float(candidates), sim_time
        )
        chain: Tuple[str, ...] = getattr(self.strategy, "fallback_chain", ())
        if note is None:
            depth = 0.0
        else:
            parts = note.split(":")
            name = parts[1] if len(parts) > 1 else ""
            depth = (
                float(chain.index(name))
                if name in chain
                else float(len(chain) or 1)
            )
        registry.histogram("replay.fallback_depth").observe(depth, sim_time)

    def _decision(
        self,
        demand: DemandSession,
        states: Sequence[APState],
        chosen: str,
        controller_id: str,
        batch_id: str,
        sim_time: float,
        mode: str,
        rssi: Optional[Dict[str, float]] = None,
        note: Optional[str] = None,
    ) -> DecisionRecord:
        """Provenance for one placement (only built when tracing is on)."""
        scores = self.strategy.score_candidates(
            demand.user_id, states, rssi=rssi
        )
        return DecisionRecord(
            user_id=demand.user_id,
            strategy=self.strategy.name,
            controller_id=controller_id,
            batch_id=batch_id,
            sim_time=sim_time,
            chosen=chosen,
            candidates=candidates_from_states(states, scores),
            mode=mode,
            note=note,
        )

    def _radio_streams(self, controller_id: str) -> RandomStreams:
        """The shard-scoped child factory for one controller's radios.

        Derived via ``child(shard_stream_name(controller_id))`` so the
        serial engine and a per-controller :mod:`repro.runtime` worker
        draw from identical streams regardless of which other controllers
        (if any) they simulate.
        """
        streams = self._radio.get(controller_id)
        if streams is None:
            streams = self._streams.child(shard_stream_name(controller_id))
            self._radio[controller_id] = streams
        return streams

    def _station_rssi(
        self, demand: DemandSession, controller_id: str
    ) -> Dict[str, float]:
        """Deterministic per-session RSSI map for the arriving station."""
        rng = self._radio_streams(controller_id).get(
            f"radio-{demand.user_id}-{demand.arrival:.3f}"
        )
        building = self.layout.buildings[demand.building_id]
        position = sample_position(building, rng)
        return rssi_map(
            position,
            self.layout.aps_of_building(demand.building_id),
            rng=rng,
            shadowing_sigma_db=self.config.shadowing_sigma_db,
        )


def collect_trace(
    layout: CampusLayout,
    source: TraceBundle,
    strategy: SelectionStrategy,
    config: Optional[ReplayConfig] = None,
) -> TraceBundle:
    """Replay ``source.demands`` under ``strategy`` and return the collected
    trace (replayed sessions + the source's flows and demands).

    With the LLF strategy this reconstructs the paper's production trace:
    the session log an enterprise WLAN running least-loaded-first would
    have recorded for this demand."""
    engine = ReplayEngine(layout, strategy, config=config)
    result = engine.run(source.demands)
    return result.to_bundle(source)
