"""Per-controller load/user time series sampled during replay.

The collector periodically snapshots every controller's per-AP offered
load and association counts; the resulting :class:`ControllerSeries`
exposes the normalized balance-index series directly (the quantity every
figure in the paper's evaluation is built from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.balance import normalized_balance_index
from repro.wlan.entities import CampusRuntime


@dataclass
class ControllerSeries:
    """Sampled time series of one controller domain."""

    controller_id: str
    ap_ids: List[str]
    times: np.ndarray  # (T,)
    loads: np.ndarray  # (T, n_aps) bytes/s
    user_counts: np.ndarray  # (T, n_aps)

    def balance_series(self) -> np.ndarray:
        """Normalized traffic-balance index at every sample."""
        return np.array([normalized_balance_index(row) for row in self.loads])

    def user_balance_series(self) -> np.ndarray:
        """Normalized user-count-balance index at every sample."""
        return np.array([normalized_balance_index(row) for row in self.user_counts])

    def mean_balance(self) -> float:
        """Mean normalized balance over every sample (idle samples are 1.0)."""
        series = self.balance_series()
        return float(series.mean()) if series.size else 1.0

    def active_mask(self) -> np.ndarray:
        """Samples where the domain actually carries traffic.

        Idle samples score a trivial 1.0 balance; evaluation statistics
        that average over a whole day should usually restrict to active
        samples so night hours do not wash out the differences.
        """
        return self.loads.sum(axis=1) > 0

    def restrict(self, lo: float, hi: float) -> "ControllerSeries":
        """The sub-series with ``lo <= t < hi``."""
        mask = (self.times >= lo) & (self.times < hi)
        return ControllerSeries(
            controller_id=self.controller_id,
            ap_ids=self.ap_ids,
            times=self.times[mask],
            loads=self.loads[mask],
            user_counts=self.user_counts[mask],
        )


class MetricsCollector:
    """Accumulates samples during a replay run."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._loads: Dict[str, List[List[float]]] = {}
        self._counts: Dict[str, List[List[int]]] = {}
        self._ap_ids: Dict[str, List[str]] = {}

    def sample(
        self,
        now: float,
        campus: CampusRuntime,
        controller_ids: Optional[Sequence[str]] = None,
    ) -> None:
        """Record one snapshot of every controller (or a fixed subset).

        ``controller_ids`` restricts the snapshot to a shard's domain(s);
        it must be sorted and stable across calls, which is how a sharded
        run's per-controller series line up sample-for-sample with a
        whole-campus serial run.
        """
        self._times.append(now)
        ids = (
            sorted(campus.controllers)
            if controller_ids is None
            else controller_ids
        )
        for controller_id in ids:
            controller = campus.controllers[controller_id]
            if controller_id not in self._ap_ids:
                self._ap_ids[controller_id] = controller.ap_ids
                self._loads[controller_id] = []
                self._counts[controller_id] = []
            self._loads[controller_id].append(controller.loads())
            self._counts[controller_id].append(controller.user_counts())

    @property
    def n_samples(self) -> int:
        """Number of snapshots collected."""
        return len(self._times)

    def series(self) -> Dict[str, ControllerSeries]:
        """Freeze the collected samples into per-controller series."""
        times = np.asarray(self._times)
        out: Dict[str, ControllerSeries] = {}
        for controller_id, ap_ids in self._ap_ids.items():
            out[controller_id] = ControllerSeries(
                controller_id=controller_id,
                ap_ids=list(ap_ids),
                times=times.copy(),
                loads=np.asarray(self._loads[controller_id], dtype=float),
                user_counts=np.asarray(self._counts[controller_id], dtype=float),
            )
        return out
