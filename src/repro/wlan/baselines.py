"""Additional baselines from the paper's related work (Section II).

* :class:`CellBreathing` — Bejerano & Han's cell-breathing technique
  (paper refs [16], [20]): APs shrink or grow their effective coverage
  according to load, transparently steering *new* arrivals away from
  busy APs.  Modeled as a per-AP attractiveness bias added to the
  station's RSSI: an AP's bias falls as its measured load rises above the
  domain mean, so overloaded cells "shrink".  Users are never migrated —
  like every scheme in this reproduction, the effect is arrival-only.

* :class:`BestHeadroom` — the client-side probing approach of Nicholson
  et al. (Virgil, paper ref [14]): the station evaluates each candidate
  AP's attainable quality and picks the best.  Modeled as the expected
  per-user share of the AP's remaining capacity,
  ``headroom / (user_count + 1)``.

Both consume only information their real counterparts would have
(measured loads / association counts / RSSI), so they slot into the same
replay engine and prototype as every other strategy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.selection import APState
from repro.wlan.strategies import SelectionStrategy


class CellBreathing(SelectionStrategy):
    """Load-proportional cell-size adaptation (arrival-steering model).

    The bias for AP ``i`` is ``-gain * (load_i - mean_load) / mean_load``
    dB, clamped to ``max_bias``: an AP at twice the mean load looks
    ``gain`` dB weaker to arriving stations, one at zero load ``gain`` dB
    stronger.  With ``gain = 0`` the strategy degenerates to plain
    strongest-signal.
    """

    name = "cell-breathing"

    def __init__(self, gain_db: float = 12.0, max_bias_db: float = 20.0) -> None:
        if gain_db < 0 or max_bias_db < 0:
            raise ValueError("gains must be non-negative")
        self.gain_db = gain_db
        self.max_bias_db = max_bias_db

    def _bias(self, ap: APState, mean_load: float) -> float:
        if mean_load <= 0:
            return 0.0
        raw = -self.gain_db * (ap.load - mean_load) / mean_load
        return float(np.clip(raw, -self.max_bias_db, self.max_bias_db))

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Pick the AP per this baseline's policy."""
        if not aps:
            raise ValueError("no candidate APs")
        mean_load = sum(ap.load for ap in aps) / len(aps)
        best_ap = None
        best_score = -np.inf
        for ap in sorted(aps, key=lambda a: a.ap_id):
            signal = rssi.get(ap.ap_id, -75.0) if rssi else -75.0
            score = signal + self._bias(ap, mean_load)
            if score > best_score:
                best_score = score
                best_ap = ap
        assert best_ap is not None
        return best_ap.ap_id


class BestHeadroom(SelectionStrategy):
    """Virgil-style attainable-quality probing.

    Rank APs by the bandwidth share a new user could expect:
    ``(bandwidth - load) / (user_count + 1)``; RSSI only breaks ties.
    """

    name = "best-headroom"

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Pick the AP per this baseline's policy."""
        if not aps:
            raise ValueError("no candidate APs")

        def score(ap: APState) -> tuple:
            share = max(0.0, ap.headroom()) / (ap.user_count + 1)
            signal = rssi.get(ap.ap_id, -75.0) if rssi else -75.0
            return (share, signal, ap.ap_id)

        return max(aps, key=score).ap_id
