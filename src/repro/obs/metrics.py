"""Deterministic windowed metrics: counters, gauges, histograms.

The third leg of :mod:`repro.obs` (spans answer *where time went*,
decisions answer *why*, metrics answer *how much, when*): a
process-global :class:`MetricsRegistry` — disabled by default, mirroring
the :class:`~repro.obs.tracer.Tracer` lifecycle — that samples every
instrument into **sim-time windows** of the kernel clock.  Nothing here
reads wall time; a series is keyed by ``(name, labels)`` and each record
lands in window ``floor(sim_time / window_seconds)``, so two same-seed
runs produce byte-identical series.

Determinism scope is declared per metric in
:mod:`repro.obs.metric_registry`:

* ``run``-scoped series (replay decisions, candidate sets, fault
  injections, per-controller load) are part of the journal's
  ``strip_wall`` byte contract — a sharded run's worker snapshots merge
  (:meth:`MetricsRegistry.merge`) into exactly the series the serial
  engine records;
* ``host``-scoped series (kernel event throughput, worker task
  latencies, RSS) are serialized under the journal's strippable
  ``"wall"`` key, because they depend on the engine shape or the host.

The disabled fast path allocates nothing: module-level
:func:`inc` / :func:`set_gauge` / :func:`observe` take positional
arguments only (no ``**labels`` dict is ever built) and return after one
attribute check, so instrumentation can stay in the hot loops.

A :class:`MemoryProbe` piggybacks on window boundaries: the first record
that crosses into a new window samples every registered memory source
(peak RSS by default; :mod:`repro.runtime.shm` registers live segment
bytes) into host-scoped gauges.

``python -m repro.obs.metrics run.jsonl --format prometheus`` exports a
journal's metric records as Prometheus text or CSV.
"""

from __future__ import annotations

import sys
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import perf as perf_module
from repro.obs.metric_registry import MetricSpec, spec_for
from repro.obs.records import MetricRecord, MetricsRollupRecord

#: Sorted ``(key, value)`` label pairs — the series key next to the name.
Labels = Tuple[Tuple[str, str], ...]

#: One sim-hour: the default aggregation window (seconds of sim time).
DEFAULT_WINDOW_SECONDS = 3600.0


def series_key(name: str, labels: Labels = ()) -> str:
    """The canonical display key: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


def _check_labels(name: str, labels: Labels) -> None:
    if list(labels) != sorted(labels):
        raise ValueError(
            f"metric {name!r}: labels must be sorted (key, value) pairs, "
            f"got {labels!r}"
        )


# --------------------------------------------------------------- series


class CounterSeries:
    """A monotonically accumulating count, summed per window."""

    kind = "counter"
    __slots__ = ("spec", "labels", "windows", "total", "_registry")

    def __init__(
        self, spec: MetricSpec, labels: Labels, registry: "MetricsRegistry"
    ) -> None:
        self.spec = spec
        self.labels = labels
        #: window index -> accumulated amount.
        self.windows: Dict[int, float] = {}
        self.total = 0.0
        self._registry = registry

    def inc(self, amount: float, sim_time: float) -> None:
        """Add ``amount`` into the window containing ``sim_time``."""
        registry = self._registry
        idx = int(sim_time // registry.window_seconds)
        windows = self.windows
        windows[idx] = windows.get(idx, 0.0) + amount
        self.total += amount
        registry._touch(idx, sim_time)


class GaugeSeries:
    """A point-in-time value; each window keeps its last-written point."""

    kind = "gauge"
    __slots__ = ("spec", "labels", "windows", "last", "_registry")

    def __init__(
        self, spec: MetricSpec, labels: Labels, registry: "MetricsRegistry"
    ) -> None:
        self.spec = spec
        self.labels = labels
        #: window index -> (sim_time, value) of the last set in it.
        self.windows: Dict[int, Tuple[float, float]] = {}
        self.last: Optional[Tuple[float, float]] = None
        self._registry = registry

    def set(self, value: float, sim_time: float) -> None:
        """Record ``value`` at ``sim_time`` (last write per window wins)."""
        registry = self._registry
        idx = int(sim_time // registry.window_seconds)
        current = self.windows.get(idx)
        if current is None or sim_time >= current[0]:
            self.windows[idx] = (sim_time, value)
        if self.last is None or sim_time >= self.last[0]:
            self.last = (sim_time, value)
        registry._touch(idx, sim_time)


@dataclass
class HistogramWindow:
    """One window's bucket counts (+Inf bucket last), sum and count."""

    counts: List[int]
    total: float = 0.0
    count: int = 0

    def combine(self, other: "HistogramWindow") -> None:
        """Fold another window (same bucket layout) into this one."""
        for i, value in enumerate(other.counts):
            self.counts[i] += value
        self.total += other.total
        self.count += other.count

    def clone(self) -> "HistogramWindow":
        return HistogramWindow(
            counts=list(self.counts), total=self.total, count=self.count
        )


class HistogramSeries:
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    A value lands in the first bucket whose upper bound is ``>=`` the
    value (boundary values inclusive); anything above the last bound
    lands in the implicit +Inf bucket, ``counts[-1]``.
    """

    kind = "histogram"
    __slots__ = ("spec", "labels", "buckets", "windows", "_registry")

    def __init__(
        self, spec: MetricSpec, labels: Labels, registry: "MetricsRegistry"
    ) -> None:
        self.spec = spec
        self.labels = labels
        self.buckets: Tuple[float, ...] = spec.effective_buckets
        self.windows: Dict[int, HistogramWindow] = {}
        self._registry = registry

    def observe(self, value: float, sim_time: float) -> None:
        """Record one observation into the window containing ``sim_time``."""
        registry = self._registry
        idx = int(sim_time // registry.window_seconds)
        window = self.windows.get(idx)
        if window is None:
            window = self.windows[idx] = HistogramWindow(
                counts=[0] * (len(self.buckets) + 1)
            )
        window.counts[bisect_left(self.buckets, value)] += 1
        window.total += value
        window.count += 1
        registry._touch(idx, sim_time)


AnySeries = Union[CounterSeries, GaugeSeries, HistogramSeries]


# --------------------------------------------------------- memory probe

#: Named zero-arg callables sampled at window boundaries (host gauges).
#: Other layers add theirs via :func:`register_memory_source`.
_MEMORY_SOURCES: Dict[str, Callable[[], float]] = {}


def register_memory_source(name: str, source: Callable[[], float]) -> None:
    """Register a memory quantity for :class:`MemoryProbe` sampling.

    ``name`` must be a registered **host-scoped gauge** in
    :mod:`repro.obs.metric_registry`; ``source`` is polled (zero-arg) at
    every window boundary of every enabled registry.
    """
    spec = spec_for(name)
    if spec.kind != "gauge" or spec.scope != "host":
        raise ValueError(
            f"memory source {name!r} must be registered as a host-scoped "
            f"gauge, not {spec.scope} {spec.kind}"
        )
    _MEMORY_SOURCES[name] = source


class MemoryProbe:
    """Samples memory sources into host gauges at window boundaries.

    The probe fires from :meth:`MetricsRegistry._touch` the first time a
    record crosses into a new window — i.e. on the sim-time grid, not a
    wall-time one — so the resulting series line up with every other
    metric's windows.  Values (RSS, shm bytes) are host facts and land
    under the journal's strippable ``"wall"`` key.
    """

    def __init__(
        self, sources: Optional[Dict[str, Callable[[], float]]] = None
    ) -> None:
        self._extra = dict(sources) if sources is not None else None

    def sources(self) -> Dict[str, Callable[[], float]]:
        """The effective source map (module defaults plus overrides)."""
        merged = dict(_MEMORY_SOURCES)
        if self._extra is not None:
            merged.update(self._extra)
        return merged

    def sample(
        self, registry: "MetricsRegistry", window: int, sim_time: float
    ) -> None:
        """Set every source's gauge at ``sim_time`` (sorted name order)."""
        sources = self.sources()
        for name in sorted(sources):
            registry.gauge(name).set(float(sources[name]()), sim_time)


# ------------------------------------------------------------ snapshots


@dataclass
class SeriesSnapshot:
    """One series' picklable state (exactly one windows dict populated)."""

    name: str
    kind: str
    scope: str
    labels: Labels = ()
    buckets: Tuple[float, ...] = ()
    counter_windows: Dict[int, float] = field(default_factory=dict)
    gauge_windows: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    hist_windows: Dict[int, HistogramWindow] = field(default_factory=dict)


@dataclass
class MetricsSnapshot:
    """A registry's picklable state — the cross-process hand-off format.

    Like :class:`repro.perf.PerfSnapshot`: a worker resets its registry,
    runs, and ships a snapshot home; the parent folds every snapshot in
    with :meth:`MetricsRegistry.merge`.  Series are sorted by
    ``(name, labels)`` so the snapshot itself is deterministic.
    """

    window_seconds: float = DEFAULT_WINDOW_SECONDS
    series: List[SeriesSnapshot] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.series)


@dataclass
class RegistryState:
    """A registry's full checkpointable state (series plus lifecycle).

    Where :class:`MetricsSnapshot` is the cross-process *merge* format,
    this wraps it with the enabled flag, window size and frontier so a
    supervised service restore puts the process-global registry back
    exactly where a crash left the checkpointed one.
    """

    enabled: bool = False
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    frontier: Optional[int] = None
    snapshot: MetricsSnapshot = field(default_factory=MetricsSnapshot)


# ------------------------------------------------------------- registry


class MetricsRegistry:
    """Process-wide collector of windowed metric series."""

    def __init__(
        self,
        enabled: bool = False,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        probe: Optional[MemoryProbe] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"non-positive window {window_seconds!r}")
        self.enabled = enabled
        self.window_seconds = float(window_seconds)
        self.probe = probe if probe is not None else MemoryProbe()
        self._series: Dict[Tuple[str, Labels], AnySeries] = {}
        self._frontier: Optional[int] = None
        self._probing = False

    # ----------------------------------------------------------- series

    def _make_series(self, name: str, labels: Labels, kind: str) -> AnySeries:
        spec = spec_for(name)
        if spec.kind != kind:
            raise TypeError(
                f"metric {name!r} is registered as a {spec.kind}, "
                f"not a {kind}"
            )
        _check_labels(name, labels)
        series: AnySeries
        if kind == "counter":
            series = CounterSeries(spec, labels, self)
        elif kind == "gauge":
            series = GaugeSeries(spec, labels, self)
        else:
            series = HistogramSeries(spec, labels, self)
        self._series[(name, labels)] = series
        return series

    def counter(self, name: str, labels: Labels = ()) -> CounterSeries:
        """The counter series for ``(name, labels)`` (created on demand)."""
        series = self._series.get((name, labels))
        if series is None:
            series = self._make_series(name, labels, "counter")
        if not isinstance(series, CounterSeries):
            raise TypeError(f"metric {name!r} already exists as {series.kind}")
        return series

    def gauge(self, name: str, labels: Labels = ()) -> GaugeSeries:
        """The gauge series for ``(name, labels)`` (created on demand)."""
        series = self._series.get((name, labels))
        if series is None:
            series = self._make_series(name, labels, "gauge")
        if not isinstance(series, GaugeSeries):
            raise TypeError(f"metric {name!r} already exists as {series.kind}")
        return series

    def histogram(self, name: str, labels: Labels = ()) -> HistogramSeries:
        """The histogram series for ``(name, labels)`` (created on demand)."""
        series = self._series.get((name, labels))
        if series is None:
            series = self._make_series(name, labels, "histogram")
        if not isinstance(series, HistogramSeries):
            raise TypeError(f"metric {name!r} already exists as {series.kind}")
        return series

    # -------------------------------------------------------- recording

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        sim_time: float = 0.0,
        labels: Labels = (),
    ) -> None:
        """Add to a counter (no-op when disabled)."""
        if self.enabled:
            self.counter(name, labels).inc(amount, sim_time)

    def set_gauge(
        self,
        name: str,
        value: float,
        sim_time: float = 0.0,
        labels: Labels = (),
    ) -> None:
        """Set a gauge (no-op when disabled)."""
        if self.enabled:
            self.gauge(name, labels).set(value, sim_time)

    def observe(
        self,
        name: str,
        value: float,
        sim_time: float = 0.0,
        labels: Labels = (),
    ) -> None:
        """Record a histogram observation (no-op when disabled)."""
        if self.enabled:
            self.histogram(name, labels).observe(value, sim_time)

    def _touch(self, idx: int, sim_time: float) -> None:
        """Advance the window frontier; probe memory on a crossing."""
        frontier = self._frontier
        if frontier is not None and idx <= frontier:
            return
        self._frontier = idx
        if not self._probing:
            self._probing = True
            try:
                self.probe.sample(self, idx, sim_time)
            finally:
                self._probing = False

    # -------------------------------------------------------- querying

    def series(self) -> List[AnySeries]:
        """Every live series, sorted by ``(name, labels)``."""
        return [self._series[key] for key in sorted(self._series)]

    def __bool__(self) -> bool:
        return bool(self._series)

    # ----------------------------------------------- snapshot and merge

    def snapshot(self) -> MetricsSnapshot:
        """A deep, picklable copy of every series."""
        out: List[SeriesSnapshot] = []
        for series in self.series():
            snap = SeriesSnapshot(
                name=series.spec.name,
                kind=series.kind,
                scope=series.spec.scope,
                labels=series.labels,
            )
            if isinstance(series, CounterSeries):
                snap.counter_windows = dict(series.windows)
            elif isinstance(series, GaugeSeries):
                snap.gauge_windows = dict(series.windows)
            else:
                snap.buckets = series.buckets
                snap.hist_windows = {
                    idx: window.clone()
                    for idx, window in series.windows.items()
                }
            out.append(snap)
        return MetricsSnapshot(window_seconds=self.window_seconds, series=out)

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's snapshot into this registry, deterministically.

        Counters add per window; gauges keep the lexicographically
        largest ``(sim_time, value)`` point per window (shard series are
        label-disjoint, so this only breaks genuine cross-process ties);
        histograms add bucket counts.  The result is independent of the
        order snapshots arrive in, which is what lets a sharded run
        reproduce the serial engine's series byte for byte.
        """
        if snapshot.window_seconds != self.window_seconds:
            raise ValueError(
                f"cannot merge window {snapshot.window_seconds}s into "
                f"window {self.window_seconds}s"
            )
        for snap in snapshot.series:
            if snap.kind == "counter":
                counter = self.counter(snap.name, snap.labels)
                for idx in sorted(snap.counter_windows):
                    amount = snap.counter_windows[idx]
                    counter.windows[idx] = (
                        counter.windows.get(idx, 0.0) + amount
                    )
                    counter.total += amount
            elif snap.kind == "gauge":
                gauge = self.gauge(snap.name, snap.labels)
                for idx in sorted(snap.gauge_windows):
                    point = snap.gauge_windows[idx]
                    current = gauge.windows.get(idx)
                    if current is None or point >= current:
                        gauge.windows[idx] = point
                    if gauge.last is None or point >= gauge.last:
                        gauge.last = point
            else:
                histogram = self.histogram(snap.name, snap.labels)
                if snap.buckets != histogram.buckets:
                    raise ValueError(
                        f"histogram {snap.name!r}: bucket layout "
                        f"{snap.buckets} != {histogram.buckets}"
                    )
                for idx in sorted(snap.hist_windows):
                    window = histogram.windows.get(idx)
                    if window is None:
                        histogram.windows[idx] = snap.hist_windows[idx].clone()
                    else:
                        window.combine(snap.hist_windows[idx])

    # -------------------------------------------------------- lifecycle

    def reset(self) -> None:
        """Drop every series and the window frontier."""
        self._series.clear()
        self._frontier = None

    def export_state(self) -> RegistryState:
        """A checkpointable copy of the whole registry (see
        :class:`RegistryState`)."""
        return RegistryState(
            enabled=self.enabled,
            window_seconds=self.window_seconds,
            frontier=self._frontier,
            snapshot=self.snapshot(),
        )

    def restore_state(self, state: RegistryState) -> None:
        """Reset this registry to a previously exported state."""
        self.reset()
        self.window_seconds = state.window_seconds
        if state.snapshot:
            self.merge(state.snapshot)
        self._frontier = state.frontier
        self.enabled = state.enabled


#: The process-global registry every instrumented layer records into.
REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return REGISTRY


def enable(
    reset: bool = True, window_seconds: Optional[float] = None
) -> MetricsRegistry:
    """Turn the global registry on (fresh by default); returns it."""
    if reset:
        REGISTRY.reset()
    if window_seconds is not None:
        if window_seconds <= 0:
            raise ValueError(f"non-positive window {window_seconds!r}")
        if REGISTRY and window_seconds != REGISTRY.window_seconds:
            raise ValueError(
                "cannot change the window of a registry holding series; "
                "pass reset=True"
            )
        REGISTRY.window_seconds = float(window_seconds)
    REGISTRY.enabled = True
    return REGISTRY


def disable() -> MetricsRegistry:
    """Turn the global registry off (series are kept); returns it."""
    REGISTRY.enabled = False
    return REGISTRY


def inc(
    name: str,
    amount: float = 1.0,
    sim_time: float = 0.0,
    labels: Labels = (),
) -> None:
    """Add to a counter on the global registry (allocation-free no-op
    when disabled — positional arguments only, nothing is built before
    the enabled check)."""
    registry = REGISTRY
    if not registry.enabled:
        return
    registry.counter(name, labels).inc(amount, sim_time)


def set_gauge(
    name: str,
    value: float,
    sim_time: float = 0.0,
    labels: Labels = (),
) -> None:
    """Set a gauge on the global registry (no-op when disabled)."""
    registry = REGISTRY
    if not registry.enabled:
        return
    registry.gauge(name, labels).set(value, sim_time)


def observe(
    name: str,
    value: float,
    sim_time: float = 0.0,
    labels: Labels = (),
) -> None:
    """Record a histogram observation on the global registry."""
    registry = REGISTRY
    if not registry.enabled:
        return
    registry.histogram(name, labels).observe(value, sim_time)


# ------------------------------------------------------ journal records


def metric_records(
    registry: Optional[MetricsRegistry] = None,
) -> List[MetricRecord]:
    """One :class:`MetricRecord` per (series, window), canonically sorted.

    Sorted by ``(name, labels, window)`` — the journal's metric block is
    therefore independent of recording and merge order, which is what
    extends the ``strip_wall`` byte contract to metrics.
    """
    registry = registry if registry is not None else REGISTRY
    window_seconds = registry.window_seconds
    records: List[MetricRecord] = []
    for series in registry.series():
        spec = series.spec
        if isinstance(series, CounterSeries):
            for idx in sorted(series.windows):
                records.append(
                    MetricRecord(
                        name=spec.name,
                        kind="counter",
                        scope=spec.scope,
                        window=idx,
                        window_start=idx * window_seconds,
                        labels=series.labels,
                        value=series.windows[idx],
                    )
                )
        elif isinstance(series, GaugeSeries):
            for idx in sorted(series.windows):
                at, value = series.windows[idx]
                records.append(
                    MetricRecord(
                        name=spec.name,
                        kind="gauge",
                        scope=spec.scope,
                        window=idx,
                        window_start=idx * window_seconds,
                        labels=series.labels,
                        value=value,
                        at=at,
                    )
                )
        else:
            for idx in sorted(series.windows):
                window = series.windows[idx]
                records.append(
                    MetricRecord(
                        name=spec.name,
                        kind="histogram",
                        scope=spec.scope,
                        window=idx,
                        window_start=idx * window_seconds,
                        labels=series.labels,
                        buckets=series.buckets,
                        counts=tuple(window.counts),
                        total=window.total,
                        count=window.count,
                    )
                )
    return records


def metrics_rollup(
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRollupRecord:
    """The journal footer rollup: whole-run totals per series."""
    registry = registry if registry is not None else REGISTRY
    run_series: Dict[str, Dict[str, float]] = {}
    host_series: Dict[str, Dict[str, float]] = {}
    for series in registry.series():
        key = series_key(series.spec.name, series.labels)
        bucket = run_series if series.spec.scope == "run" else host_series
        if isinstance(series, CounterSeries):
            bucket[key] = {"total": series.total}
        elif isinstance(series, GaugeSeries):
            if series.last is not None:
                bucket[key] = {"last": series.last[1], "at": series.last[0]}
        else:
            total = 0.0
            count = 0
            for window in series.windows.values():
                total += window.total
                count += window.count
            bucket[key] = {"count": float(count), "sum": total}
    return MetricsRollupRecord(
        window_seconds=registry.window_seconds,
        run_series=run_series,
        host_series=host_series,
    )


# -------------------------------------------------------- export (CLI)


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Labels, extra: Labels = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{key}="{value}"' for key, value in pairs)
    return f"{{{rendered}}}"


def render_prometheus(
    records: Sequence[MetricRecord], per_window: bool = False
) -> str:
    """Prometheus text exposition for a journal's metric records.

    Whole-run aggregates by default; ``per_window`` emits one sample per
    window with a ``window`` label instead.
    """
    lines: List[str] = []
    by_name: Dict[str, List[MetricRecord]] = {}
    for record in records:
        by_name.setdefault(record.name, []).append(record)
    for name in sorted(by_name):
        group = by_name[name]
        kind = group[0].kind
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} {kind}")
        by_labels: Dict[Labels, List[MetricRecord]] = {}
        for record in group:
            by_labels.setdefault(record.labels, []).append(record)
        for labels in sorted(by_labels):
            windows = sorted(by_labels[labels], key=lambda r: r.window)
            if per_window:
                for record in windows:
                    extra: Labels = (("window", str(record.window)),)
                    lines.extend(_prom_window(prom, record, labels, extra))
            else:
                lines.extend(_prom_total(prom, kind, windows, labels))
    return "\n".join(lines) + "\n" if lines else ""


def _prom_window(
    prom: str, record: MetricRecord, labels: Labels, extra: Labels
) -> List[str]:
    if record.kind == "histogram":
        return _prom_histogram(
            prom, labels, extra, record.buckets, record.counts,
            record.total or 0.0, record.count or 0,
        )
    suffix = "_total" if record.kind == "counter" else ""
    return [f"{prom}{suffix}{_prom_labels(labels, extra)} {record.value}"]


def _prom_total(
    prom: str, kind: str, windows: List[MetricRecord], labels: Labels
) -> List[str]:
    if kind == "counter":
        total = sum(record.value or 0.0 for record in windows)
        return [f"{prom}_total{_prom_labels(labels)} {total}"]
    if kind == "gauge":
        last = windows[-1]
        return [f"{prom}{_prom_labels(labels)} {last.value}"]
    buckets = windows[0].buckets
    counts = [0] * (len(buckets) + 1)
    total = 0.0
    count = 0
    for record in windows:
        for i, value in enumerate(record.counts):
            counts[i] += value
        total += record.total or 0.0
        count += record.count or 0
    return _prom_histogram(prom, labels, (), buckets, tuple(counts), total, count)


def _prom_histogram(
    prom: str,
    labels: Labels,
    extra: Labels,
    buckets: Tuple[float, ...],
    counts: Tuple[int, ...],
    total: float,
    count: int,
) -> List[str]:
    lines: List[str] = []
    cumulative = 0
    for bound, bucket_count in zip(buckets, counts):
        cumulative += bucket_count
        le: Labels = (("le", repr(float(bound))),)
        lines.append(
            f"{prom}_bucket{_prom_labels(labels, extra + le)} {cumulative}"
        )
    inf: Labels = (("le", "+Inf"),)
    lines.append(f"{prom}_bucket{_prom_labels(labels, extra + inf)} {count}")
    lines.append(f"{prom}_sum{_prom_labels(labels, extra)} {total}")
    lines.append(f"{prom}_count{_prom_labels(labels, extra)} {count}")
    return lines


def render_csv(records: Sequence[MetricRecord]) -> str:
    """Flat CSV: one row per (series, window, field)."""
    lines = ["name,kind,scope,labels,window,start,field,value"]
    for record in records:
        labels = ";".join(f"{key}={value}" for key, value in record.labels)
        prefix = (
            f"{record.name},{record.kind},{record.scope},{labels},"
            f"{record.window},{record.window_start}"
        )
        if record.kind == "histogram":
            lines.append(f"{prefix},sum,{record.total}")
            lines.append(f"{prefix},count,{record.count}")
            for bound, bucket_count in zip(record.buckets, record.counts):
                lines.append(f"{prefix},le={bound},{bucket_count}")
            lines.append(f"{prefix},le=+Inf,{record.counts[-1]}")
        elif record.kind == "gauge":
            lines.append(f"{prefix},value,{record.value}")
            lines.append(f"{prefix},at,{record.at}")
        else:
            lines.append(f"{prefix},value,{record.value}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.obs.metrics journal.jsonl [--format ...]``."""
    import argparse

    # Imported here: journal imports this module for record emission.
    from repro.obs.journal import read_journal

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.metrics",
        description="export a run journal's metric records",
    )
    parser.add_argument("journal", help="path to a run journal (JSONL)")
    parser.add_argument(
        "--format",
        choices=("prometheus", "csv"),
        default="prometheus",
        help="output format (default: prometheus text exposition)",
    )
    parser.add_argument(
        "--out", default=None, help="write here instead of stdout"
    )
    parser.add_argument(
        "--windows",
        action="store_true",
        help="prometheus: one sample per window (adds a window label)",
    )
    parser.add_argument(
        "--run-only",
        action="store_true",
        help="drop host-scoped (wall) series from the export",
    )
    args = parser.parse_args(argv)
    try:
        journal = read_journal(args.journal)
    except FileNotFoundError:
        print(f"no journal at {args.journal}", file=sys.stderr)
        return 2
    records = journal.metrics
    if args.run_only:
        records = [record for record in records if record.scope == "run"]
    if not records:
        print(
            "journal holds no metric records (was the run started with "
            "metrics enabled?)",
            file=sys.stderr,
        )
        return 1
    if args.format == "csv":
        text = render_csv(records)
    else:
        text = render_prometheus(records, per_window=args.windows)
    if args.out is None:
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(records)} metric records to {args.out}",
            file=sys.stderr,
        )
    return 0


# The default probe source: the perf helper covering the whole process
# tree (registered here so the registry and the lint table agree).
register_memory_source("mem.peak_rss_bytes", perf_module.peak_rss_bytes)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(main())
