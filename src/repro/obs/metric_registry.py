"""The central table of every metric name the codebase may emit.

Metric names are a namespace shared by every instrumented layer and by
every journal consumer: a typo'd name silently forks a series, and a
renamed metric silently breaks dashboards and the exporter.  This table
is the single source of truth — :mod:`repro.obs.metrics` refuses to
record under an unregistered name at runtime, and the
``metric-name-registry`` lint rule checks every instrumentation site
against it in **both** directions (an unregistered call-site name fails
lint; a registered name with no surviving call site fails lint), the
same contract :mod:`repro.devtools.stream_registry` enforces for RNG
stream names.

Scope is part of the declaration:

``run``
    Deterministic for a seed — byte-identical between the serial and
    process engines after the runtime merge.  Serialized under a journal
    line's ``data`` key, so it participates in ``strip_wall`` diffs.
``host``
    A property of the host or the engine shape (wall durations, RSS,
    queue depths, per-worker duplicated periodic grids).  Serialized
    under the ``"wall"`` key only, so ``strip_wall`` drops it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Histogram bucket bounds used when a spec declares none.
DEFAULT_BUCKETS: Tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)


@dataclass(frozen=True)
class MetricSpec:
    """One registered metric: name, kind, determinism scope, owner."""

    name: str
    #: ``"counter"``, ``"gauge"`` or ``"histogram"``.
    kind: str
    #: ``"run"`` (deterministic, diffable) or ``"host"`` (wall-only).
    scope: str
    #: The module allowed to instrument this name (lint-enforced).
    owner: str
    description: str = ""
    unit: str = ""
    #: Histogram bucket upper bounds (``le`` semantics, +Inf implicit).
    buckets: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"metric {self.name!r}: bad kind {self.kind!r}")
        if self.scope not in ("run", "host"):
            raise ValueError(f"metric {self.name!r}: bad scope {self.scope!r}")
        if self.buckets and self.kind != "histogram":
            raise ValueError(f"metric {self.name!r}: buckets on a {self.kind}")
        if self.buckets and list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(
                f"metric {self.name!r}: buckets must be strictly increasing"
            )

    @property
    def effective_buckets(self) -> Tuple[float, ...]:
        """The bucket bounds a histogram series of this spec uses."""
        return self.buckets if self.buckets else DEFAULT_BUCKETS


METRIC_REGISTRY: Tuple[MetricSpec, ...] = (
    # ------------------------------------------------ replay (run-scoped)
    MetricSpec(
        name="replay.decisions",
        kind="counter",
        scope="run",
        owner="repro.wlan.replay",
        description="association decisions committed",
        unit="decisions",
    ),
    MetricSpec(
        name="replay.candidate_set_size",
        kind="histogram",
        scope="run",
        owner="repro.wlan.replay",
        description="candidate APs visible to each decision",
        unit="aps",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    ),
    MetricSpec(
        name="replay.fallback_depth",
        kind="histogram",
        scope="run",
        owner="repro.wlan.replay",
        description=(
            "position in the strategy's fallback chain that produced "
            "each decision (0 = primary strategy)"
        ),
        unit="links",
        buckets=(0.0, 1.0, 2.0, 4.0),
    ),
    MetricSpec(
        name="replay.batches",
        kind="counter",
        scope="run",
        owner="repro.wlan.replay",
        description="arrival batches flushed",
        unit="batches",
    ),
    MetricSpec(
        name="replay.controller_load",
        kind="gauge",
        scope="run",
        owner="repro.wlan.replay",
        description="total offered load per controller at sampler ticks",
        unit="Mbps",
    ),
    # ------------------------------------------------ faults (run-scoped)
    MetricSpec(
        name="faults.injected",
        kind="counter",
        scope="run",
        owner="repro.wlan.replay",
        description="fault-plan events fired by the replay engine",
        unit="faults",
    ),
    MetricSpec(
        name="faults.planned_events",
        kind="counter",
        scope="run",
        owner="repro.faults.schedule",
        description="fault events emitted by chaos-plan generation",
        unit="faults",
    ),
    # ------------------------------------- service (run-scoped backpressure)
    # The admission queue is driven by the sim clock and the event
    # sequence alone, so its depth/batch/shed series are pure functions
    # of the event stream — deterministic, diffable, run-scoped.
    MetricSpec(
        name="service.events",
        kind="counter",
        scope="run",
        owner="repro.service.loop",
        description="events dispatched by the controller service",
        unit="events",
    ),
    MetricSpec(
        name="service.decisions",
        kind="counter",
        scope="run",
        owner="repro.service.admission",
        description="association decisions committed by the service",
        unit="decisions",
    ),
    MetricSpec(
        name="service.queue_depth",
        kind="gauge",
        scope="run",
        owner="repro.service.admission",
        description="pending join queries after each enqueue",
        unit="queries",
    ),
    MetricSpec(
        name="service.batch_size",
        kind="histogram",
        scope="run",
        owner="repro.service.admission",
        description="join queries per admission flush",
        unit="queries",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    ),
    MetricSpec(
        name="service.shed",
        kind="counter",
        scope="run",
        owner="repro.service.admission",
        description=(
            "join queries shed to the fallback chain by a saturated "
            "admission queue"
        ),
        unit="queries",
    ),
    # ------------------------------------- service (run-scoped recovery)
    # Recovery bookkeeping is deterministic for a given seeded fault
    # plan: the same crashes/losses replay the same way every run, and
    # the counters merge order-independently.  (Byte-diffs of a crashed
    # run against an *uninterrupted* one are made with metrics off — a
    # run that recovered necessarily counted its recoveries.)
    MetricSpec(
        name="service.gap_skips",
        kind="counter",
        scope="run",
        owner="repro.service.loop",
        description=(
            "permanently missing event seqs the reorder buffer skipped "
            "at the gap horizon"
        ),
        unit="events",
    ),
    MetricSpec(
        name="service.recoveries",
        kind="counter",
        scope="run",
        owner="repro.service.supervisor",
        description="supervised controller crash/restore cycles completed",
        unit="recoveries",
    ),
    MetricSpec(
        name="service.replayed_events",
        kind="counter",
        scope="run",
        owner="repro.service.supervisor",
        description=(
            "write-ahead-log events resubmitted past a restored snapshot"
        ),
        unit="events",
    ),
    # ---------------------------------------------- service (host-scoped)
    MetricSpec(
        name="service.decision_latency",
        kind="histogram",
        scope="host",
        owner="repro.service.admission",
        description=(
            "wall seconds from join enqueue to committed decision "
            "(micro-batching delay included)"
        ),
        unit="s",
        buckets=(0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0),
    ),
    # ----------------------------------------------- kernel (host-scoped)
    # Engine-shape dependent: every worker of a sharded run replays the
    # full periodic grid, so summed event counts exceed the serial run's.
    MetricSpec(
        name="sim.events",
        kind="counter",
        scope="host",
        owner="repro.sim.kernel",
        description="kernel events dispatched per sim-time window",
        unit="events",
    ),
    MetricSpec(
        name="sim.queue_depth",
        kind="gauge",
        scope="host",
        owner="repro.sim.kernel",
        description="event-heap depth sampled at window boundaries",
        unit="events",
    ),
    # ---------------------------------------------- runtime (host-scoped)
    MetricSpec(
        name="runtime.task_seconds",
        kind="histogram",
        scope="host",
        owner="repro.runtime.workers",
        description="wall seconds per shard task, measured in the worker",
        unit="s",
        buckets=(0.1, 0.5, 1.0, 5.0, 30.0, 120.0),
    ),
    MetricSpec(
        name="runtime.task_retries",
        kind="counter",
        scope="host",
        owner="repro.runtime.resilience",
        description="pool task attempts that failed and were retried",
        unit="retries",
    ),
    MetricSpec(
        name="runtime.pool_pending",
        kind="gauge",
        scope="host",
        owner="repro.runtime.resilience",
        description="tasks queued at the start of each pool round",
        unit="tasks",
    ),
    # ----------------------------------------------- memory (host-scoped)
    MetricSpec(
        name="mem.peak_rss_bytes",
        kind="gauge",
        scope="host",
        owner="repro.obs.metrics",
        description="peak RSS of the process tree at window boundaries",
        unit="bytes",
    ),
    MetricSpec(
        name="mem.shm_bytes",
        kind="gauge",
        scope="host",
        owner="repro.runtime.shm",
        description="live published shared-memory segment bytes",
        unit="bytes",
    ),
)

#: The registry indexed by metric name.
SPECS_BY_NAME: Dict[str, MetricSpec] = {
    spec.name: spec for spec in METRIC_REGISTRY
}

if len(SPECS_BY_NAME) != len(METRIC_REGISTRY):  # pragma: no cover - table bug
    raise RuntimeError("duplicate metric name in METRIC_REGISTRY")


def spec_for(name: str) -> MetricSpec:
    """The registered spec for ``name``; raises with a pointer if absent."""
    spec = SPECS_BY_NAME.get(name)
    if spec is None:
        raise ValueError(
            f"metric name {name!r} is not registered; add a MetricSpec to "
            "repro/obs/metric_registry.py"
        )
    return spec
