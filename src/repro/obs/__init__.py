"""``repro.obs`` — structured run journal, span tracing and decision
provenance.

The observability layer over :mod:`repro.perf`: where perf answers "where
did the time go", obs answers "what happened, and why".  Three pieces:

* **span tracing** (:mod:`repro.obs.tracer`) — nestable spans carrying
  both sim-time and wall-time through an explicit-clock API, collected by
  a process-global :class:`Tracer` that is a no-op until enabled;
* **decision provenance** (:mod:`repro.obs.records`) — every association
  decision of the replay engine and the prototype controller emits a
  :class:`DecisionRecord` naming the user, the batch, every candidate AP
  with its load and per-strategy score, and the chosen AP;
* **windowed metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms aggregated into sim-time windows by a
  process-global :class:`MetricsRegistry` (also a no-op until enabled),
  with per-scope determinism declared in
  :mod:`repro.obs.metric_registry` and a Prometheus/CSV exporter under
  ``python -m repro.obs.metrics``;
* **JSONL journal** (:mod:`repro.obs.journal`) — deterministic
  serialization of the whole run (wall-clock values isolated under a
  strippable ``"wall"`` key) plus a reader and the
  ``python -m repro.obs.report`` renderer (:mod:`repro.obs.report`).

Typical use::

    from repro import obs

    obs.enable()
    ...                 # any instrumented pipeline: replay, experiments
    obs.journal.write_journal("run.jsonl", meta={"preset": "tiny"})

or, end to end, ``python -m repro.experiments tiny fig2 --journal
run.jsonl`` followed by ``python -m repro.obs.report run.jsonl``.
"""

from typing import TYPE_CHECKING, Any

from repro.obs import journal
from repro.obs.journal import (
    Journal,
    parse_journal,
    perf_snapshot,
    read_journal,
    render_journal,
    strip_wall,
    write_journal,
)
from repro.obs.metric_registry import METRIC_REGISTRY, MetricSpec, spec_for
from repro.obs.records import (
    Candidate,
    DecisionRecord,
    FaultRecord,
    MetaRecord,
    MetricRecord,
    MetricsRollupRecord,
    PerfRecord,
    RecoveryRecord,
    SampleRecord,
    SpanRecord,
    candidates_from_states,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    TracerState,
    decision,
    disable,
    enable,
    fault,
    get_tracer,
    recovery,
    sample,
    span,
)

if TYPE_CHECKING:
    from repro.obs import metrics
    from repro.obs.metrics import MemoryProbe, MetricsRegistry, MetricsSnapshot

#: Names served lazily by :func:`__getattr__` from :mod:`repro.obs.metrics`.
_METRICS_ATTRS = frozenset(
    {"metrics", "MemoryProbe", "MetricsRegistry", "MetricsSnapshot"}
)


def __getattr__(name: str) -> Any:
    """Resolve metrics names lazily.

    ``repro.obs.metrics`` doubles as the exporter CLI (``python -m
    repro.obs.metrics``); an eager import here would load it into
    ``sys.modules`` before :mod:`runpy` executes it as ``__main__``,
    tripping the double-execution ``RuntimeWarning``.  Importing it on
    first attribute access keeps the CLI invocation clean while
    ``obs.metrics`` / ``obs.MetricsRegistry`` still work everywhere else.
    """
    if name in _METRICS_ATTRS:
        # import_module, not ``from repro.obs import metrics``: the
        # fromlist form re-enters this __getattr__ and recurses.
        import importlib

        _metrics = importlib.import_module("repro.obs.metrics")
        if name == "metrics":
            return _metrics
        return getattr(_metrics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Candidate",
    "DecisionRecord",
    "FaultRecord",
    "Journal",
    "METRIC_REGISTRY",
    "MemoryProbe",
    "MetaRecord",
    "MetricRecord",
    "MetricSpec",
    "MetricsRegistry",
    "MetricsRollupRecord",
    "MetricsSnapshot",
    "NULL_SPAN",
    "PerfRecord",
    "RecoveryRecord",
    "SampleRecord",
    "Span",
    "SpanRecord",
    "Tracer",
    "TracerState",
    "candidates_from_states",
    "decision",
    "disable",
    "enable",
    "fault",
    "get_tracer",
    "journal",
    "metrics",
    "parse_journal",
    "perf_snapshot",
    "read_journal",
    "recovery",
    "render_journal",
    "sample",
    "span",
    "spec_for",
    "strip_wall",
    "write_journal",
]
