"""``repro.obs`` — structured run journal, span tracing and decision
provenance.

The observability layer over :mod:`repro.perf`: where perf answers "where
did the time go", obs answers "what happened, and why".  Three pieces:

* **span tracing** (:mod:`repro.obs.tracer`) — nestable spans carrying
  both sim-time and wall-time through an explicit-clock API, collected by
  a process-global :class:`Tracer` that is a no-op until enabled;
* **decision provenance** (:mod:`repro.obs.records`) — every association
  decision of the replay engine and the prototype controller emits a
  :class:`DecisionRecord` naming the user, the batch, every candidate AP
  with its load and per-strategy score, and the chosen AP;
* **JSONL journal** (:mod:`repro.obs.journal`) — deterministic
  serialization of the whole run (wall-clock values isolated under a
  strippable ``"wall"`` key) plus a reader and the
  ``python -m repro.obs.report`` renderer (:mod:`repro.obs.report`).

Typical use::

    from repro import obs

    obs.enable()
    ...                 # any instrumented pipeline: replay, experiments
    obs.journal.write_journal("run.jsonl", meta={"preset": "tiny"})

or, end to end, ``python -m repro.experiments tiny fig2 --journal
run.jsonl`` followed by ``python -m repro.obs.report run.jsonl``.
"""

from repro.obs import journal
from repro.obs.journal import (
    Journal,
    parse_journal,
    perf_snapshot,
    read_journal,
    render_journal,
    strip_wall,
    write_journal,
)
from repro.obs.records import (
    Candidate,
    DecisionRecord,
    FaultRecord,
    MetaRecord,
    PerfRecord,
    SampleRecord,
    SpanRecord,
    candidates_from_states,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    decision,
    disable,
    enable,
    fault,
    get_tracer,
    sample,
    span,
)

__all__ = [
    "Candidate",
    "DecisionRecord",
    "FaultRecord",
    "Journal",
    "MetaRecord",
    "NULL_SPAN",
    "PerfRecord",
    "SampleRecord",
    "Span",
    "SpanRecord",
    "Tracer",
    "candidates_from_states",
    "decision",
    "disable",
    "enable",
    "fault",
    "get_tracer",
    "journal",
    "parse_journal",
    "perf_snapshot",
    "read_journal",
    "render_journal",
    "sample",
    "span",
    "strip_wall",
    "write_journal",
]
