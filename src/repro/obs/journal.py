"""JSONL run-journal writer, reader and wall-time stripper.

A journal is one JSON object per line, in this order: a ``meta`` header,
the tracer's records (spans, decisions, samples) in completion order,
and a ``perf`` footer.  Serialization is deterministic — fixed key order,
compact separators — so two same-seed runs produce byte-identical
journals once :func:`strip_wall` has removed the ``"wall"`` key (the only
place wall-clock values are allowed to appear).

The byte contract extends across process boundaries: a sharded replay
(:mod:`repro.runtime`) collects each worker's record fragment and
reassembles them (:mod:`repro.runtime.merge`) into the exact stream the
serial engine would have traced, so journals stay ``strip_wall``-byte-
identical whichever engine produced them.

    from repro import obs, perf
    from repro.obs.journal import write_journal, read_journal

    obs.enable()
    ...                                  # instrumented run
    write_journal("run.jsonl", meta={"preset": "tiny"})
    journal = read_journal("run.jsonl")
    print(len(journal.spans), len(journal.decisions))
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.obs import metrics as metrics_module

from repro import perf as perf_module
from repro.obs.records import (
    DecisionRecord,
    FaultRecord,
    JournalRecord,
    MetaRecord,
    MetricRecord,
    MetricsRollupRecord,
    PerfRecord,
    RecoveryRecord,
    SampleRecord,
    SpanRecord,
    record_from_payload,
)
from repro.obs.tracer import TRACER, Tracer

#: Compact, stable separators — part of the byte-format contract.
_SEPARATORS = (",", ":")


def dumps_record(record: JournalRecord) -> str:
    """One journal line (no newline) for ``record``."""
    kind, data, wall = record.payload()
    obj: Dict[str, Any] = {"type": kind, "data": data}
    if wall:
        obj["wall"] = wall
    return json.dumps(obj, separators=_SEPARATORS)


def perf_snapshot(registry: Optional[perf_module.PerfRegistry] = None) -> PerfRecord:
    """A :class:`PerfRecord` footer from ``registry`` (global by default)."""
    registry = registry if registry is not None else perf_module.PERF
    timers: Dict[str, Dict[str, float]] = {}
    for name, stat in registry.timers().items():
        timers[name] = {
            "calls": float(stat.calls),
            "total": stat.total,
            "mean": stat.mean,
            "min": stat.minimum if stat.calls else 0.0,
            "max": stat.maximum,
        }
    return PerfRecord(counters=registry.counters(), timers=timers)


def render_journal(records: List[JournalRecord]) -> str:
    """The full journal text (trailing newline included) for ``records``."""
    return "".join(dumps_record(record) + "\n" for record in records)


def write_journal(
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
    perf_registry: Optional[perf_module.PerfRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    metrics_registry: Optional["metrics_module.MetricsRegistry"] = None,
) -> Path:
    """Write header + tracer records + metric windows + footers to ``path``.

    Defaults to the global tracer, metrics registry and perf registry;
    returns the path written.  The metric block (per-window records
    sorted by name/labels/window, then the ``metrics`` rollup) only
    appears when the registry holds series, so metrics-off journals keep
    their existing byte layout.
    """
    from repro.obs import metrics as metrics_module

    tracer = tracer if tracer is not None else TRACER
    registry = (
        metrics_registry
        if metrics_registry is not None
        else metrics_module.REGISTRY
    )
    records: List[JournalRecord] = [MetaRecord(fields=dict(meta or {}))]
    records.extend(tracer.records)
    if registry:
        records.extend(metrics_module.metric_records(registry))
        records.append(metrics_module.metrics_rollup(registry))
    records.append(perf_snapshot(perf_registry))
    path = Path(path)
    path.write_text(render_journal(records), encoding="utf-8")
    return path


@dataclass
class Journal:
    """A parsed journal, with records split by kind."""

    meta: Dict[str, Any] = field(default_factory=dict)
    records: List[JournalRecord] = field(default_factory=list)
    spans: List[SpanRecord] = field(default_factory=list)
    decisions: List[DecisionRecord] = field(default_factory=list)
    samples: List[SampleRecord] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    metrics: List[MetricRecord] = field(default_factory=list)
    metrics_rollup: Optional[MetricsRollupRecord] = None
    perf: Optional[PerfRecord] = None


def parse_journal(text: str) -> Journal:
    """Parse journal text into typed records."""
    journal = Journal()
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        record = record_from_payload(
            obj["type"], obj.get("data", {}), obj.get("wall", {})
        )
        journal.records.append(record)
        if isinstance(record, MetaRecord):
            journal.meta.update(record.fields)
        elif isinstance(record, SpanRecord):
            journal.spans.append(record)
        elif isinstance(record, DecisionRecord):
            journal.decisions.append(record)
        elif isinstance(record, SampleRecord):
            journal.samples.append(record)
        elif isinstance(record, FaultRecord):
            journal.faults.append(record)
        elif isinstance(record, RecoveryRecord):
            journal.recoveries.append(record)
        elif isinstance(record, MetricRecord):
            journal.metrics.append(record)
        elif isinstance(record, MetricsRollupRecord):
            journal.metrics_rollup = record
        elif isinstance(record, PerfRecord):
            journal.perf = record
    return journal


def read_journal(path: Union[str, Path]) -> Journal:
    """Load and parse the journal at ``path``."""
    return parse_journal(Path(path).read_text(encoding="utf-8"))


def strip_wall(text: str) -> str:
    """Journal text with every record's ``"wall"`` key removed.

    The result of two same-seed runs is byte-identical; diff these, not
    the raw files.
    """
    lines: List[str] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        obj.pop("wall", None)
        if obj.get("type") in ("metric", "recovery") and not obj.get("data"):
            # Host-scoped metric windows and recovery records live
            # entirely under "wall"; nothing deterministic remains, so
            # the line itself goes.
            continue
        lines.append(json.dumps(obj, separators=_SEPARATORS))
    return "".join(line + "\n" for line in lines)
