"""Journal record types and their deterministic JSON shapes.

Every record renders to one JSONL object of the form::

    {"type": "<kind>", "data": {...}, "wall": {...}}

with a fixed, hand-ordered key layout inside ``data`` so that two seeded
runs produce byte-identical lines.  Everything derived from wall time —
and *only* that — lives under the top-level ``"wall"`` key, which
:func:`repro.obs.journal.strip_wall` removes before diffing.  The record
kinds:

``meta``
    One header line per journal: schema version plus free-form run
    metadata (preset, experiment names, seed).
``span``
    One closed :class:`~repro.obs.tracer.Span`: name, nesting, explicit
    sim-clock bounds, attributes; wall start/elapsed under ``"wall"``.
``decision``
    One association decision with full provenance: the user, the batch it
    arrived in, every candidate AP with its load/user-count and the
    strategy's own score, and the chosen AP.
``sample``
    One balance-index observation of a controller domain at a sampler
    tick.
``fault``
    One injected fault firing (or a runtime worker failure): the event
    kind, its target, and a small deterministic detail map.  Replay
    faults carry their sim time; worker failures have ``sim_time: null``.
``perf``
    The journal footer: :mod:`repro.perf` counters (deterministic, under
    ``data``) and timers (wall durations, under ``"wall"``).
``metric``
    One :mod:`repro.obs.metrics` series window.  Run-scoped series
    serialize under ``data`` (part of the ``strip_wall`` byte contract);
    host-scoped series serialize under ``"wall"`` only, leaving ``data``
    empty — :func:`repro.obs.journal.strip_wall` drops such lines
    entirely.
``metrics``
    The whole-run metrics rollup footer: per-series totals split by
    determinism scope the same way.
``recovery``
    One supervised crash/restore cycle of the controller service.  A
    recovered run must stay byte-identical to an uninterrupted one, so
    the whole payload lives under ``"wall"`` with an empty ``data`` and
    :func:`repro.obs.journal.strip_wall` drops the line entirely — the
    record documents *how* the run survived, never *what* it computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol, Sequence, Tuple, Union

#: Journal schema version, bumped on any breaking layout change.
#: v2: ``fault`` records and the optional ``note`` key on decisions.
#: v3: ``metric`` window records and the ``metrics`` rollup footer.
#: v4: ``recovery`` records for supervised service crash/restore cycles.
SCHEMA_VERSION = 4

Payload = Tuple[str, Dict[str, Any], Dict[str, Any]]


class APStateLike(Protocol):
    """The slice of an AP snapshot that decision provenance records."""

    @property
    def ap_id(self) -> str: ...

    @property
    def load(self) -> float: ...

    @property
    def users(self) -> Tuple[str, ...]: ...


@dataclass(frozen=True)
class Candidate:
    """One candidate AP as the deciding strategy saw it."""

    ap_id: str
    load: float
    users: int
    #: The strategy's own preference score (lower preferred); ``None``
    #: when the strategy exposes no score for this AP.
    score: Optional[float] = None


def candidates_from_states(
    aps: Sequence[APStateLike], scores: Dict[str, float]
) -> Tuple[Candidate, ...]:
    """Build the candidate tuple for a decision, ordered by AP id.

    Scores are coerced to ``float`` so journal lines round-trip exactly
    (``0`` and ``0.0`` serialize differently).
    """
    return tuple(
        Candidate(
            ap_id=ap.ap_id,
            load=float(ap.load),
            users=len(ap.users),
            score=None if ap.ap_id not in scores else float(scores[ap.ap_id]),
        )
        for ap in sorted(aps, key=lambda ap: ap.ap_id)
    )


@dataclass
class MetaRecord:
    """The journal header: schema version plus run metadata."""

    fields: Dict[str, Any] = field(default_factory=dict)

    def payload(self) -> Payload:
        data: Dict[str, Any] = {"format": SCHEMA_VERSION}
        for key in sorted(self.fields):
            data[key] = self.fields[key]
        return "meta", data, {}


@dataclass
class SpanRecord:
    """One closed span (see :class:`repro.obs.tracer.Span`)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    wall_start: float = 0.0
    wall_elapsed: float = 0.0

    @property
    def sim_elapsed(self) -> Optional[float]:
        """Sim-time duration, when both bounds were recorded."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def payload(self) -> Payload:
        data: Dict[str, Any] = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
        }
        wall = {"start": self.wall_start, "elapsed": self.wall_elapsed}
        return "span", data, wall


@dataclass
class DecisionRecord:
    """Full provenance of one association decision."""

    user_id: str
    strategy: str
    controller_id: str
    #: Which flush produced this decision (``"<controller>#<n>"`` in the
    #: replay engine, ``"query#<n>"`` in the prototype controller).
    batch_id: str
    #: Simulation time of the decision; ``None`` in the wall-time-driven
    #: prototype daemons.
    sim_time: Optional[float]
    chosen: str
    candidates: Tuple[Candidate, ...] = ()
    #: ``"batch"`` (Algorithm 1 flush), ``"single"`` (sequential arrival
    #: fallback) or ``"query"`` (prototype steering query).
    mode: str = "single"
    #: Degradation provenance (e.g. ``"fallback:llf:stale-model"``) when
    #: the decision came from a fallback path; omitted from the payload
    #: when ``None`` so clean runs keep their byte layout.
    note: Optional[str] = None

    def payload(self) -> Payload:
        data: Dict[str, Any] = {
            "user": self.user_id,
            "strategy": self.strategy,
            "controller": self.controller_id,
            "batch": self.batch_id,
            "sim_time": self.sim_time,
            "chosen": self.chosen,
            "mode": self.mode,
        }
        if self.note is not None:
            data["note"] = self.note
        data["candidates"] = [
            {
                "ap": c.ap_id,
                "load": c.load,
                "users": c.users,
                "score": c.score,
            }
            for c in self.candidates
        ]
        return "decision", data, {}


@dataclass
class SampleRecord:
    """One balance-index observation of a controller domain."""

    sim_time: float
    controller_id: str
    balance: float
    total_load: float
    users: int

    def payload(self) -> Payload:
        data: Dict[str, Any] = {
            "sim_time": self.sim_time,
            "controller": self.controller_id,
            "balance": self.balance,
            "total_load": self.total_load,
            "users": self.users,
        }
        return "sample", data, {}


@dataclass
class FaultRecord:
    """One injected fault firing, or a quarantined runtime worker failure.

    Replay-engine faults carry the sim time they fired at; runtime
    worker failures (kind ``"worker-failure"``) happen in wall time and
    carry ``sim_time=None``.  ``detail`` holds a small deterministic map
    (e.g. ``{"evicted": 4}`` for an AP outage, attempt counts for a
    worker failure) serialized with sorted keys.
    """

    sim_time: Optional[float]
    #: The fault-event kind tag (``repro.faults`` kinds or ``"worker-failure"``).
    kind: str
    #: What the fault acted on: an AP id, controller id, shard/task id.
    target: str
    #: The controller domain affected, when one applies.
    controller_id: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def payload(self) -> Payload:
        data: Dict[str, Any] = {
            "sim_time": self.sim_time,
            "kind": self.kind,
            "target": self.target,
            "controller": self.controller_id,
            "detail": {key: self.detail[key] for key in sorted(self.detail)},
        }
        return "fault", data, {}


@dataclass
class RecoveryRecord:
    """One supervised crash/restore cycle of the controller service.

    Everything here is a property of *this particular* supervised run —
    where the crash fell relative to the last snapshot, how much of the
    write-ahead log had to be replayed — not of the event stream, so the
    entire payload serializes under ``"wall"`` and
    :func:`repro.obs.journal.strip_wall` drops the line: a crashed-and-
    recovered journal stays byte-identical to the uninterrupted one.
    """

    #: Sim time of the crash the supervisor recovered from.
    sim_time: float
    controller_id: str
    #: Sim-time lag of the restored snapshot behind the crash point.
    downtime: float
    #: Sequence number the restored snapshot had committed up to.
    snapshot_seq: int
    #: Write-ahead-log events resubmitted past the snapshot.
    replayed_events: int
    #: Association decisions re-derived during the replay.
    rederived_decisions: int

    def payload(self) -> Payload:
        wall: Dict[str, Any] = {
            "sim_time": self.sim_time,
            "controller": self.controller_id,
            "downtime": self.downtime,
            "snapshot_seq": self.snapshot_seq,
            "replayed_events": self.replayed_events,
            "rederived_decisions": self.rederived_decisions,
        }
        return "recovery", {}, wall


@dataclass
class PerfRecord:
    """The journal footer: a :mod:`repro.perf` registry snapshot.

    Counters are event counts and therefore deterministic for seeded
    runs; timer statistics are wall durations and live under ``"wall"``.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def payload(self) -> Payload:
        data: Dict[str, Any] = {
            "counters": {key: self.counters[key] for key in sorted(self.counters)}
        }
        wall: Dict[str, Any] = {
            "timers": {
                name: {
                    key: self.timers[name][key]
                    for key in ("calls", "total", "mean", "min", "max")
                    if key in self.timers[name]
                }
                for name in sorted(self.timers)
            }
        }
        return "perf", data, wall


@dataclass
class MetricRecord:
    """One metric series window (see :mod:`repro.obs.metrics`).

    ``scope`` picks the serialization side: ``"run"`` windows are
    deterministic and live under ``data``; ``"host"`` windows (wall
    durations, RSS, engine-shape-dependent counts) live under ``"wall"``
    with an empty ``data``, so :func:`repro.obs.journal.strip_wall`
    removes them without disturbing the run-scoped stream.
    """

    name: str
    #: ``"counter"``, ``"gauge"`` or ``"histogram"``.
    kind: str
    #: ``"run"`` (under ``data``) or ``"host"`` (under ``"wall"``).
    scope: str
    #: Window index: ``floor(sim_time / window_seconds)``.
    window: int
    #: Sim time at which the window opens.
    window_start: float
    labels: Tuple[Tuple[str, str], ...] = ()
    #: Counter: amount accumulated in the window.  Gauge: last value.
    value: Optional[float] = None
    #: Gauge only: sim time of the last set in the window.
    at: Optional[float] = None
    #: Histogram only: bucket upper bounds (``le``), +Inf implicit.
    buckets: Tuple[float, ...] = ()
    #: Histogram only: per-bucket counts, the +Inf bucket last.
    counts: Tuple[int, ...] = ()
    #: Histogram only: sum of observed values in the window.
    total: Optional[float] = None
    #: Histogram only: number of observations in the window.
    count: Optional[int] = None

    def payload(self) -> Payload:
        body: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "labels": {key: value for key, value in self.labels},
            "window": self.window,
            "start": self.window_start,
        }
        if self.kind == "counter":
            body["value"] = self.value
        elif self.kind == "gauge":
            body["value"] = self.value
            body["at"] = self.at
        else:
            body["buckets"] = list(self.buckets)
            body["counts"] = list(self.counts)
            body["sum"] = self.total
            body["count"] = self.count
        if self.scope == "run":
            return "metric", body, {}
        return "metric", {}, body


@dataclass
class MetricsRollupRecord:
    """The metrics footer: whole-run per-series totals.

    Series keys are rendered ``name`` or ``name{k=v,...}``; run-scoped
    totals live under ``data`` and host-scoped ones under ``"wall"``.
    """

    window_seconds: float = 0.0
    run_series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    host_series: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def payload(self) -> Payload:
        data: Dict[str, Any] = {
            "window_seconds": self.window_seconds,
            "series": {
                key: {
                    name: self.run_series[key][name]
                    for name in sorted(self.run_series[key])
                }
                for key in sorted(self.run_series)
            },
        }
        wall: Dict[str, Any] = {}
        if self.host_series:
            wall["series"] = {
                key: {
                    name: self.host_series[key][name]
                    for name in sorted(self.host_series[key])
                }
                for key in sorted(self.host_series)
            }
        return "metrics", data, wall


JournalRecord = Union[
    MetaRecord,
    SpanRecord,
    DecisionRecord,
    SampleRecord,
    FaultRecord,
    RecoveryRecord,
    PerfRecord,
    MetricRecord,
    MetricsRollupRecord,
]


def record_from_payload(
    kind: str, data: Dict[str, Any], wall: Dict[str, Any]
) -> JournalRecord:
    """Reconstruct the typed record for one parsed journal line."""
    if kind == "meta":
        fields = {key: value for key, value in data.items() if key != "format"}
        return MetaRecord(fields=fields)
    if kind == "span":
        return SpanRecord(
            span_id=int(data["id"]),
            parent_id=None if data["parent"] is None else int(data["parent"]),
            name=str(data["name"]),
            depth=int(data["depth"]),
            sim_start=data["sim_start"],
            sim_end=data["sim_end"],
            attrs=dict(data["attrs"]),
            wall_start=float(wall.get("start", 0.0)),
            wall_elapsed=float(wall.get("elapsed", 0.0)),
        )
    if kind == "decision":
        candidates = tuple(
            Candidate(
                ap_id=str(c["ap"]),
                load=float(c["load"]),
                users=int(c["users"]),
                score=None if c["score"] is None else float(c["score"]),
            )
            for c in data["candidates"]
        )
        return DecisionRecord(
            user_id=str(data["user"]),
            strategy=str(data["strategy"]),
            controller_id=str(data["controller"]),
            batch_id=str(data["batch"]),
            sim_time=data["sim_time"],
            chosen=str(data["chosen"]),
            candidates=candidates,
            mode=str(data["mode"]),
            note=None if data.get("note") is None else str(data["note"]),
        )
    if kind == "fault":
        return FaultRecord(
            sim_time=data["sim_time"],
            kind=str(data["kind"]),
            target=str(data["target"]),
            controller_id=(
                None if data["controller"] is None else str(data["controller"])
            ),
            detail=dict(data["detail"]),
        )
    if kind == "sample":
        return SampleRecord(
            sim_time=float(data["sim_time"]),
            controller_id=str(data["controller"]),
            balance=float(data["balance"]),
            total_load=float(data["total_load"]),
            users=int(data["users"]),
        )
    if kind == "recovery":
        return RecoveryRecord(
            sim_time=float(wall["sim_time"]),
            controller_id=str(wall["controller"]),
            downtime=float(wall["downtime"]),
            snapshot_seq=int(wall["snapshot_seq"]),
            replayed_events=int(wall["replayed_events"]),
            rederived_decisions=int(wall["rederived_decisions"]),
        )
    if kind == "perf":
        return PerfRecord(
            counters=dict(data.get("counters", {})),
            timers={
                name: dict(stats)
                for name, stats in wall.get("timers", {}).items()
            },
        )
    if kind == "metric":
        scope = "run" if data else "host"
        body = data if data else wall
        record = MetricRecord(
            name=str(body["name"]),
            kind=str(body["kind"]),
            scope=scope,
            window=int(body["window"]),
            window_start=float(body["start"]),
            labels=tuple(sorted(
                (str(key), str(value))
                for key, value in body.get("labels", {}).items()
            )),
        )
        if record.kind == "histogram":
            record.buckets = tuple(float(b) for b in body["buckets"])
            record.counts = tuple(int(c) for c in body["counts"])
            record.total = float(body["sum"])
            record.count = int(body["count"])
        else:
            record.value = float(body["value"])
            if record.kind == "gauge":
                record.at = float(body["at"])
        return record
    if kind == "metrics":
        return MetricsRollupRecord(
            window_seconds=float(data.get("window_seconds", 0.0)),
            run_series={
                key: dict(fields)
                for key, fields in data.get("series", {}).items()
            },
            host_series={
                key: dict(fields)
                for key, fields in wall.get("series", {}).items()
            },
        )
    raise ValueError(f"unknown journal record type {kind!r}")
