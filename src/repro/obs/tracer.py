"""Span tracing with an explicit simulation clock.

The tracer is the collection point of :mod:`repro.obs`: spans, decision
records and balance samples are appended to one process-global
:class:`Tracer` in completion order, and the journal writer serializes
that list verbatim — which is what makes seeded runs byte-reproducible.

Two clocks, two rules:

* **sim time** is always *explicit*.  A span never reads a clock of its
  own; the caller either passes ``sim_time=`` (the start instant) and/or
  ``clock=`` (a zero-arg callable, typically ``lambda: sim.now``, polled
  once more when the span closes), or assigns ``span.sim_start`` /
  ``span.sim_end`` directly.  This keeps the kernel, the replay engine
  and the trace generator free of any wall-clock dependency.
* **wall time** is read exclusively through :mod:`repro.obs._clock`, the
  one module the ``no-wallclock`` lint rule allowlists, and is stored
  separately so journals can be diffed without it.

The tracer is *disabled* by default: ``span()`` then returns a shared
no-op span and ``decision()``/``sample()`` return immediately, so the
instrumentation in the hot paths costs one attribute check per call
site.  Enable it (``obs.enable()``) before a run you want journaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Type, Union

from repro.obs._clock import wall_time
from repro.obs.records import (
    DecisionRecord,
    FaultRecord,
    PerfRecord,
    RecoveryRecord,
    SampleRecord,
    SpanRecord,
)

TracedRecord = Union[
    SpanRecord,
    DecisionRecord,
    SampleRecord,
    FaultRecord,
    RecoveryRecord,
    PerfRecord,
]


class Span:
    """One live span; close it by leaving its ``with`` block.

    ``sim_start`` / ``sim_end`` may be assigned at any point before the
    span closes; ``set()`` attaches attributes.  The span records itself
    with its tracer when it closes.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "sim_start",
        "sim_end",
        "attrs",
        "_tracer",
        "_clock",
        "_wall_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        sim_time: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.sim_start: Optional[float] = sim_time
        self.sim_end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self._tracer = tracer
        self._clock = clock
        self._wall_start = 0.0
        if clock is not None and self.sim_start is None:
            self.sim_start = clock()

    def set(self, **attrs: Any) -> "Span":
        """Attach journal attributes to this span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._wall_start = wall_time()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self.sim_end is None and self._clock is not None:
            self.sim_end = self._clock()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self, wall_time() - self._wall_start)


class _NullSpan:
    """The shared no-op span handed out by a disabled tracer."""

    __slots__ = ("sim_start", "sim_end")

    def __init__(self) -> None:
        self.sim_start: Optional[float] = None
        self.sim_end: Optional[float] = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


#: The singleton returned by every ``span()`` call on a disabled tracer.
NULL_SPAN = _NullSpan()

AnySpan = Union[Span, _NullSpan]


@dataclass
class TracerState:
    """A point-in-time copy of a tracer's record state (checkpointable)."""

    enabled: bool = False
    records: List["TracedRecord"] = field(default_factory=list)
    next_id: int = 0


class Tracer:
    """Process-wide collector of spans, decisions and samples."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Completed records in completion order — the journal body.
        self.records: List[TracedRecord] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------- recording

    def span(
        self,
        name: str,
        sim_time: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        **attrs: Any,
    ) -> AnySpan:
        """Open a span (use as a context manager).

        ``sim_time`` fixes the span's sim start; ``clock`` is polled for
        the missing bound(s) — once immediately for ``sim_start`` when
        ``sim_time`` is not given, once at close for ``sim_end`` unless
        the caller assigned it.  Keyword attributes are journaled as-is.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            sim_time=sim_time,
            clock=clock,
        )
        self._next_id += 1
        if attrs:
            span.attrs.update(attrs)
        self._stack.append(span)
        return span

    def _finish(self, span: Span, wall_elapsed: float) -> None:
        """Close ``span`` (spans close strictly LIFO) and record it."""
        while self._stack and self._stack[-1] is not span:
            # A span leaked out of its nesting (caller never closed an
            # inner span); drop the strays rather than corrupt the stack.
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.records.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                depth=span.depth,
                sim_start=span.sim_start,
                sim_end=span.sim_end,
                attrs=dict(span.attrs),
                wall_start=span._wall_start,
                wall_elapsed=wall_elapsed,
            )
        )

    def inject(self, records: List[TracedRecord]) -> None:
        """Append pre-built records (a merged journal fragment) verbatim.

        Used by :mod:`repro.runtime` to splice canonically ordered,
        renumbered worker records into the parent's journal.  The id
        allocator is advanced past every injected span id so spans opened
        afterwards cannot collide.
        """
        if not self.enabled:
            return
        self.records.extend(records)
        for record in records:
            if isinstance(record, SpanRecord) and record.span_id >= self._next_id:
                self._next_id = record.span_id + 1

    def decision(self, record: DecisionRecord) -> None:
        """Journal one association decision (no-op when disabled)."""
        if self.enabled:
            self.records.append(record)

    def sample(self, record: SampleRecord) -> None:
        """Journal one balance-index sample (no-op when disabled)."""
        if self.enabled:
            self.records.append(record)

    def fault(self, record: FaultRecord) -> None:
        """Journal one fault firing (no-op when disabled)."""
        if self.enabled:
            self.records.append(record)

    def recovery(self, record: RecoveryRecord) -> None:
        """Journal one crash/restore cycle (no-op when disabled)."""
        if self.enabled:
            self.records.append(record)

    # ------------------------------------------------------------- querying

    def spans(self) -> List[SpanRecord]:
        """All closed spans, in completion order."""
        return [r for r in self.records if isinstance(r, SpanRecord)]

    def decisions(self) -> List[DecisionRecord]:
        """All decision records, in emission order."""
        return [r for r in self.records if isinstance(r, DecisionRecord)]

    def samples(self) -> List[SampleRecord]:
        """All balance samples, in emission order."""
        return [r for r in self.records if isinstance(r, SampleRecord)]

    def faults(self) -> List[FaultRecord]:
        """All fault records, in emission order."""
        return [r for r in self.records if isinstance(r, FaultRecord)]

    # ------------------------------------------------------------ lifecycle

    def reset(self) -> None:
        """Drop every record and any half-open span state."""
        self.records.clear()
        self._stack.clear()
        self._next_id = 0

    def export_state(self) -> "TracerState":
        """A checkpointable copy of the tracer's record state.

        Records are frozen-at-append journal lines, so a shallow list
        copy is a faithful snapshot; half-open spans are deliberately
        not captured — a checkpoint boundary never falls inside one in
        the supervised service, and a restored tracer must start with a
        clean stack.
        """
        return TracerState(
            enabled=self.enabled,
            records=list(self.records),
            next_id=self._next_id,
        )

    def restore_state(self, state: "TracerState") -> None:
        """Reset this tracer to a previously exported state."""
        self.enabled = state.enabled
        self.records = list(state.records)
        self._stack.clear()
        self._next_id = state.next_id


#: The process-global tracer every instrumented layer records into.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return TRACER


def span(
    name: str,
    sim_time: Optional[float] = None,
    clock: Optional[Callable[[], float]] = None,
    **attrs: Any,
) -> AnySpan:
    """Open a span on the global tracer."""
    return TRACER.span(name, sim_time=sim_time, clock=clock, **attrs)


def decision(record: DecisionRecord) -> None:
    """Record a decision on the global tracer."""
    TRACER.decision(record)


def sample(record: SampleRecord) -> None:
    """Record a balance sample on the global tracer."""
    TRACER.sample(record)


def fault(record: FaultRecord) -> None:
    """Record a fault firing on the global tracer."""
    TRACER.fault(record)


def recovery(record: RecoveryRecord) -> None:
    """Record a crash/restore cycle on the global tracer."""
    TRACER.recovery(record)


def enable(reset: bool = True) -> Tracer:
    """Turn the global tracer on (fresh by default); returns it."""
    if reset:
        TRACER.reset()
    TRACER.enabled = True
    return TRACER


def disable() -> Tracer:
    """Turn the global tracer off (records are kept); returns it."""
    TRACER.enabled = False
    return TRACER
