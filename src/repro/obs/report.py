"""``python -m repro.obs.report`` — render a run journal for humans.

Loads a JSONL journal (see :mod:`repro.obs.journal`) and prints four
sections: the run metadata, the top spans aggregated by name, a
per-controller balance-index timeline from the sampler records, and a
decision audit table with every candidate AP's load and score.  The
``--strip`` flag instead emits the wall-stripped journal (the byte-stable
form) for diffing seeded runs.

    python -m repro.obs.report out.jsonl
    python -m repro.obs.report out.jsonl --decisions 25
    python -m repro.obs.report a.jsonl --strip > a.stable
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.journal import Journal, read_journal, strip_wall
from repro.obs.records import (
    DecisionRecord,
    FaultRecord,
    MetricRecord,
    SampleRecord,
    SpanRecord,
)


def format_top_spans(spans: Sequence[SpanRecord], limit: int = 12) -> str:
    """Spans aggregated by name, widest wall footprint first."""
    if not spans:
        return "(no spans recorded)"
    totals: Dict[str, Tuple[int, float, float]] = {}
    for span in spans:
        calls, wall, sim = totals.get(span.name, (0, 0.0, 0.0))
        totals[span.name] = (
            calls + 1,
            wall + span.wall_elapsed,
            sim + (span.sim_elapsed or 0.0),
        )
    rows = sorted(totals.items(), key=lambda item: (-item[1][1], item[0]))[:limit]
    if not rows:
        return "(no spans recorded)"
    width = max(len(name) for name, _ in rows)
    lines = [
        f"{'span'.ljust(width)}  {'calls':>7}  {'wall_total':>11}  {'sim_total':>12}"
    ]
    for name, (calls, wall, sim) in rows:
        lines.append(
            f"{name.ljust(width)}  {calls:>7d}  {wall:>10.3f}s  {sim:>11.0f}s"
        )
    return "\n".join(lines)


def format_balance_timelines(
    samples: Sequence[SampleRecord], buckets: int = 12
) -> str:
    """Per-controller mean balance index over equal time buckets.

    Total on empty input: a run that never sampled (e.g. zero decisions
    and no sampler ticks) renders a placeholder instead of assuming at
    least one controller appears.
    """
    if not samples:
        return "(no balance samples recorded)"
    buckets = max(buckets, 1)
    by_controller: Dict[str, List[SampleRecord]] = {}
    for sample in samples:
        by_controller.setdefault(sample.controller_id, []).append(sample)
    if not by_controller:
        return "(no balance samples recorded)"
    t_lo = min(s.sim_time for s in samples)
    t_hi = max(s.sim_time for s in samples)
    span = max(t_hi - t_lo, 1.0)
    lines = [
        f"balance index, {buckets} buckets over "
        f"t=[{t_lo:.0f}s, {t_hi:.0f}s] (mean per bucket, '----' = idle)"
    ]
    width = max(len(cid) for cid in by_controller)
    for controller_id in sorted(by_controller):
        series = by_controller[controller_id]
        sums = [0.0] * buckets
        counts = [0] * buckets
        for sample in series:
            index = min(int((sample.sim_time - t_lo) / span * buckets), buckets - 1)
            sums[index] += sample.balance
            counts[index] += 1
        cells = [
            f"{sums[i] / counts[i]:.2f}" if counts[i] else "----"
            for i in range(buckets)
        ]
        mean = sum(s.balance for s in series) / len(series)
        lines.append(
            f"{controller_id.ljust(width)}  {' '.join(cells)}  "
            f"(n={len(series)}, mean={mean:.3f})"
        )
    return "\n".join(lines)


def format_decision(decision: DecisionRecord) -> str:
    """One audit line: who went where, and what the alternatives scored."""
    when = "t=?" if decision.sim_time is None else f"t={decision.sim_time:.0f}s"
    candidates = "  ".join(
        "{}{}(load={:.0f}, users={}{})".format(
            "*" if c.ap_id == decision.chosen else " ",
            c.ap_id,
            c.load,
            c.users,
            "" if c.score is None else f", score={c.score:.3f}",
        )
        for c in decision.candidates
    )
    note = "" if decision.note is None else f"  [{decision.note}]"
    return (
        f"{when}  user={decision.user_id}  ctrl={decision.controller_id}  "
        f"batch={decision.batch_id}  {decision.strategy}/{decision.mode} -> "
        f"{decision.chosen}{note}\n    {candidates}"
    )


def format_decisions(
    decisions: Sequence[DecisionRecord], limit: int = 10
) -> str:
    """The first ``limit`` decisions as an audit table."""
    if not decisions:
        return "(no decisions recorded)"
    lines = [format_decision(d) for d in decisions[:limit]]
    if len(decisions) > limit:
        lines.append(f"... {len(decisions) - limit} more decision(s)")
    return "\n".join(lines)


def format_faults(faults: Sequence[FaultRecord]) -> str:
    """One line per injected fault / worker failure, in journal order."""
    if not faults:
        return "(no faults recorded)"
    lines = []
    for record in faults:
        when = "wall" if record.sim_time is None else f"t={record.sim_time:.0f}s"
        detail = " ".join(
            f"{key}={record.detail[key]}" for key in sorted(record.detail)
        )
        controller = "" if record.controller_id is None else f"  ctrl={record.controller_id}"
        lines.append(
            f"{when}  {record.kind}  target={record.target}{controller}"
            + (f"  {detail}" if detail else "")
        )
    return "\n".join(lines)


def format_metrics(journal: Journal) -> str:
    """One line per metric series: kind, scope, windows, run totals."""
    if not journal.metrics:
        return "(no metric records; run with metrics enabled)"
    from repro.obs.metrics import series_key

    by_series: Dict[str, List[MetricRecord]] = {}
    for record in journal.metrics:
        by_series.setdefault(series_key(record.name, record.labels), []).append(
            record
        )
    rollup = journal.metrics_rollup
    window = "?" if rollup is None else f"{rollup.window_seconds:.0f}s"
    width = max(len(key) for key in by_series)
    lines = [f"{len(by_series)} series, sim-time window {window}"]
    for key in sorted(by_series):
        windows = by_series[key]
        first = windows[0]
        if first.kind == "counter":
            total = sum(record.value or 0.0 for record in windows)
            detail = f"total={total:g}"
        elif first.kind == "gauge":
            last = max(windows, key=lambda record: record.window)
            detail = (
                f"last={last.value or 0.0:g} @t={last.at or 0.0:.0f}s"
            )
        else:
            count = sum(record.count or 0 for record in windows)
            total = sum(record.total or 0.0 for record in windows)
            mean = total / count if count else 0.0
            detail = f"count={count} sum={total:g} mean={mean:g}"
        lines.append(
            f"{key.ljust(width)}  {first.kind:<9}  {first.scope:<4}  "
            f"windows={len(windows):<3d}  {detail}"
        )
    return "\n".join(lines)


def _sim_span_seconds(journal: Journal) -> Optional[float]:
    """The simulated span the journal's spans cover, if any."""
    starts = [s.sim_start for s in journal.spans if s.sim_start is not None]
    ends = [s.sim_end for s in journal.spans if s.sim_end is not None]
    if not starts or not ends:
        return None
    span = max(ends) - min(starts)
    return span if span > 0 else None


def format_perf_footer(journal: Journal) -> str:
    """The perf footer: counters, then wall timers.

    When the journal's spans cover a simulated interval, each timer also
    gets a ``calls/simh`` rate (calls per simulated hour) — the
    preset-independent view of how hot a path is.
    """
    perf = journal.perf
    if perf is None or not (perf.counters or perf.timers):
        return "(no perf footer)"
    lines: List[str] = []
    if perf.counters:
        width = max(len(name) for name in perf.counters)
        for name in sorted(perf.counters):
            value = perf.counters[name]
            rendered = f"{int(value)}" if value == int(value) else f"{value:.3f}"
            lines.append(f"{name.ljust(width)}  {rendered:>12}")
    if perf.timers:
        sim_seconds = _sim_span_seconds(journal)
        width = max(len(name) for name in perf.timers)
        header = (
            f"{'timer'.ljust(width)}  {'calls':>7}  {'total':>10}  "
            f"{'mean':>10}  {'min':>10}  {'max':>10}"
        )
        if sim_seconds is not None:
            header += f"  {'calls/simh':>11}"
        lines.append(header)
        ordered = sorted(
            perf.timers.items(), key=lambda item: -item[1].get("total", 0.0)
        )
        for name, stats in ordered:
            row = (
                f"{name.ljust(width)}  {int(stats.get('calls', 0)):>7d}  "
                f"{stats.get('total', 0.0):>9.3f}s  {stats.get('mean', 0.0):>9.4f}s  "
                f"{stats.get('min', 0.0):>9.4f}s  {stats.get('max', 0.0):>9.4f}s"
            )
            if sim_seconds is not None:
                rate = int(stats.get("calls", 0)) * 3600.0 / sim_seconds
                row += f"  {rate:>11.2f}"
            lines.append(row)
    return "\n".join(lines)


def render_report(
    journal: Journal,
    spans: int = 12,
    decisions: int = 10,
    title: Optional[str] = None,
    metrics: bool = False,
) -> str:
    """The full human-readable report for a parsed journal."""
    meta = " ".join(f"{k}={journal.meta[k]}" for k in sorted(journal.meta))
    lines = [
        f"=== run journal{f': {title}' if title else ''} ===",
        f"meta: {meta or '(none)'}",
        f"records: {len(journal.spans)} spans, {len(journal.decisions)} "
        f"decisions, {len(journal.samples)} samples, "
        f"{len(journal.faults)} faults, {len(journal.metrics)} metric "
        f"windows",
        "",
        "-- top spans --",
        format_top_spans(journal.spans, limit=spans),
        "",
        "-- balance timelines --",
        format_balance_timelines(journal.samples),
        "",
        "-- faults --",
        format_faults(journal.faults),
        "",
        f"-- decision audit (first {decisions}) --",
        format_decisions(journal.decisions, limit=decisions),
    ]
    if metrics:
        lines.extend(["", "-- metrics --", format_metrics(journal)])
    lines.extend(["", "-- perf footer --", format_perf_footer(journal)])
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="render a repro.obs run journal",
    )
    parser.add_argument("journal", help="path to a .jsonl run journal")
    parser.add_argument(
        "--spans", type=int, default=12, help="span rows to show (default 12)"
    )
    parser.add_argument(
        "--decisions",
        type=int,
        default=10,
        help="decision rows to show (default 10)",
    )
    parser.add_argument(
        "--strip",
        action="store_true",
        help="emit the wall-stripped journal instead of the report",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="include the windowed-metrics section in the report",
    )
    options = parser.parse_args(argv)
    path = Path(options.journal)
    if not path.exists():
        print(f"no such journal: {path}", file=sys.stderr)
        return 2
    try:
        if options.strip:
            sys.stdout.write(strip_wall(path.read_text(encoding="utf-8")))
            return 0
        journal = read_journal(path)
        print(
            render_report(
                journal,
                spans=options.spans,
                decisions=options.decisions,
                title=path.name,
                metrics=options.metrics,
            )
        )
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
