"""The single sanctioned wall-clock read of the observability layer.

Every wall timestamp in :mod:`repro.obs` flows through :func:`wall_time`.
The ``no-wallclock`` lint rule allowlists exactly this module (see
``ALLOWED_MODULES`` in :mod:`repro.devtools.rules.wallclock`), so any
other wall-clock read added to the package still fails the lint.  Journal
consumers must treat these values as diagnostics only: they live under
the ``"wall"`` key of every record precisely so they can be stripped
before byte-comparing seeded runs.
"""

from __future__ import annotations

import time


def wall_time() -> float:
    """Seconds since the epoch, read once per call."""
    return time.time()
