"""From-scratch graph substrate: weighted graphs, coloring, max-clique.

Section IV of the paper builds an undirected graph over the users awaiting
assignment (edges where the social relation index exceeds 0.3), then
iteratively extracts **maximum cliques** — "we adopt a heuristic
branch-and-bound algorithm [Ostergard 2002]; each time the users are first
sorted by a greedy vertex coloring algorithm" — distributing each clique
across APs before removing it from the graph.

This package implements that machinery without external graph libraries:

``graph``     a weighted undirected graph with subgraph/removal support
``coloring``  greedy vertex coloring (ordering + upper bounds)
``clique``    branch-and-bound maximum clique with coloring bounds,
              edge-weight tie-breaking and the iterative clique cover
"""

from repro.graph.graph import Graph
from repro.graph.coloring import greedy_coloring, color_classes
from repro.graph.clique import CliqueCover, max_clique, clique_cover, is_clique
from repro.graph.metrics import (
    average_clustering,
    average_degree,
    component_sizes,
    degree_histogram,
    density,
    local_clustering,
    summarize,
)

__all__ = [
    "Graph",
    "greedy_coloring",
    "color_classes",
    "CliqueCover",
    "max_clique",
    "clique_cover",
    "is_clique",
    "average_clustering",
    "average_degree",
    "component_sizes",
    "degree_histogram",
    "density",
    "local_clustering",
    "summarize",
]
