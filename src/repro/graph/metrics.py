"""Structural metrics of (social) graphs.

"Characterizing sociality" is the paper's subtitle; beyond pairwise
indices, the *shape* of the social graph — how dense it is, how strongly
it clusters, how large its communities are — describes a campus
population.  These metrics are used by the analysis examples and by tests
that sanity-check learned social graphs against the generator's planted
structure (group-based graphs cluster strongly; random noise does not).
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.graph.graph import Graph, Node


def density(graph: Graph) -> float:
    """Edges present over edges possible; 0 for graphs with < 2 nodes."""
    n = len(graph)
    if n < 2:
        return 0.0
    return 2.0 * graph.n_edges() / (n * (n - 1))


def average_degree(graph: Graph) -> float:
    """Mean node degree (0 for the empty graph)."""
    if len(graph) == 0:
        return 0.0
    return 2.0 * graph.n_edges() / len(graph)


def local_clustering(graph: Graph, node: Node) -> float:
    """Fraction of a node's neighbor pairs that are themselves adjacent.

    Nodes with fewer than two neighbors have no triangles to close; their
    coefficient is 0 by the usual convention.
    """
    neighbors = list(graph.neighbors(node))
    k = len(neighbors)
    if k < 2:
        return 0.0
    closed = sum(
        1
        for a, b in itertools.combinations(neighbors, 2)
        if graph.has_edge(a, b)
    )
    return 2.0 * closed / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all nodes."""
    if len(graph) == 0:
        return 0.0
    total = sum(local_clustering(graph, node) for node in graph)
    return total / len(graph)


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """degree -> node count."""
    histogram: Dict[int, int] = {}
    for node in graph:
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def component_sizes(graph: Graph) -> Dict[int, int]:
    """component size -> count of components of that size."""
    sizes: Dict[int, int] = {}
    for component in graph.connected_components():
        size = len(component)
        sizes[size] = sizes.get(size, 0) + 1
    return sizes


def summarize(graph: Graph) -> str:
    """One-paragraph structural summary."""
    components = component_sizes(graph)
    largest = max(components) if components else 0
    return (
        f"nodes={len(graph)} edges={graph.n_edges()} "
        f"density={density(graph):.4f} "
        f"avg_degree={average_degree(graph):.2f} "
        f"clustering={average_clustering(graph):.3f} "
        f"largest_component={largest}"
    )
