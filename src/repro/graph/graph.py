"""A small weighted undirected graph.

Nodes are arbitrary hashable objects (user ids in the S³ pipeline); edges
carry a positive weight (the social relation index).  The representation is
a dict-of-dicts adjacency, which keeps neighbor iteration, edge lookup and
node removal all O(degree) — the operations the clique decomposition loop
performs repeatedly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Node = Hashable


class Graph:
    """Weighted undirected simple graph (no self-loops, no multi-edges)."""

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------- building

    def add_node(self, node: Node) -> None:
        """Add an isolated node (no-op if present)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add or overwrite the edge ``{u, v}``.

        Self-loops are rejected: a user has no social relation with
        themselves, and cliques are defined over distinct vertices.
        """
        if u == v:
            raise ValueError(f"self-loop on {u!r}")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight!r}")
        self._adj.setdefault(u, {})[v] = float(weight)
        self._adj.setdefault(v, {})[u] = float(weight)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and its incident edges; raises if absent."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        for neighbor in self._adj.pop(node):
            del self._adj[neighbor][node]

    def remove_nodes(self, nodes: Iterable[Node]) -> None:
        """Remove several nodes (and their edges)."""
        for node in list(nodes):
            self.remove_node(node)

    # ------------------------------------------------------------- querying

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Each undirected edge exactly once, as ``(u, v, weight)``."""
        seen: Set[frozenset] = set()
        for u, neighbors in self._adj.items():
            for v, weight in neighbors.items():
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield (u, v, weight)

    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nb) for nb in self._adj.values()) // 2

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """Neighbor -> weight mapping (a live view is never exposed)."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        return dict(self._adj[node])

    def degree(self, node: Node) -> int:
        """Number of neighbors of the node."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        return len(self._adj[node])

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the undirected edge exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node, default: float = 0.0) -> float:
        """Edge weight, or ``default`` when the edge is absent."""
        if u in self._adj and v in self._adj[u]:
            return self._adj[u][v]
        return default

    def total_weight(self, nodes: Iterable[Node]) -> float:
        """Sum of edge weights inside the induced subgraph of ``nodes``."""
        members = list(nodes)
        member_set = set(members)
        total = 0.0
        for u in members:
            if u not in self._adj:
                continue
            for v, weight in self._adj[u].items():
                if v in member_set:
                    total += weight
        return total / 2.0

    # ----------------------------------------------------------- transforms

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes`` (unknown nodes ignored)."""
        keep = {n for n in nodes if n in self._adj}
        out = Graph()
        for node in keep:
            out.add_node(node)
        for node in keep:
            for neighbor, weight in self._adj[node].items():
                if neighbor in keep and not out.has_edge(node, neighbor):
                    out.add_edge(node, neighbor, weight)
        return out

    def copy(self) -> "Graph":
        """A deep copy of the graph structure."""
        out = Graph()
        out._adj = {node: dict(nb) for node, nb in self._adj.items()}
        return out

    def connected_components(self) -> List[Set[Node]]:
        """Connected components, each as a node set."""
        seen: Set[Node] = set()
        components: List[Set[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            component: Set[Node] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(n for n in self._adj[node] if n not in component)
            seen |= component
            components.append(component)
        return components

    def __repr__(self) -> str:
        return f"Graph(nodes={len(self)}, edges={self.n_edges()})"
