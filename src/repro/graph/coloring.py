"""Greedy vertex coloring.

The Östergård-style clique search sorts vertices "by a greedy vertex
coloring algorithm" (Section IV.A): the number of colors used on a
candidate set upper-bounds the size of any clique inside it, and coloring
classes give the branching order.  This module provides the greedy coloring
both as a standalone utility (returning a proper coloring) and in the
ordered form the clique search consumes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.graph.graph import Graph, Node


def greedy_coloring(graph: Graph, order: Sequence[Node] = None) -> Dict[Node, int]:
    """Proper vertex coloring via the greedy algorithm.

    Vertices are processed in ``order`` (default: descending degree, the
    classic Welsh-Powell heuristic) and each receives the smallest color
    not used by an already-colored neighbor.  Colors are 0-based.
    """
    if order is None:
        order = sorted(graph.nodes, key=lambda n: (-graph.degree(n), str(n)))
    else:
        order = list(order)
        missing = [n for n in order if n not in graph]
        if missing:
            raise KeyError(f"order contains unknown nodes: {missing[:3]}")
        if len(set(order)) != len(graph):
            raise ValueError("order must enumerate every node exactly once")

    colors: Dict[Node, int] = {}
    for node in order:
        used = {colors[nb] for nb in graph.neighbors(node) if nb in colors}
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    return colors


def color_classes(colors: Dict[Node, int]) -> List[List[Node]]:
    """Group a coloring into classes, index = color."""
    if not colors:
        return []
    n_colors = max(colors.values()) + 1
    classes: List[List[Node]] = [[] for _ in range(n_colors)]
    for node, color in colors.items():
        classes[color].append(node)
    return classes


def chromatic_upper_bound(graph: Graph) -> int:
    """Number of colors the greedy coloring uses — a clique-size upper bound."""
    if len(graph) == 0:
        return 0
    colors = greedy_coloring(graph)
    return max(colors.values()) + 1


def is_proper_coloring(graph: Graph, colors: Dict[Node, int]) -> bool:
    """Check that no edge joins two same-colored vertices."""
    if set(colors) != set(graph.nodes):
        return False
    return all(colors[u] != colors[v] for u, v, _ in graph.edges())
