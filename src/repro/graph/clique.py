"""Branch-and-bound maximum clique and the iterative clique cover.

Section IV.A of the paper: users whose social relation index exceeds the
0.3 threshold are joined by an edge; "a group of users where each pair of
users have a close relationship" is a clique.  The decomposition then
"iteratively picks a maximum clique each time ... and deletes all vertices
in the clique ... until there are no more vertices left"; among multiple
maximum cliques "we choose the one with the largest sum of edges", because
heavier cliques are the likeliest to co-leave and most urgent to spread.

The search is the Östergård/Tomita family the paper cites: depth-first
branch and bound where candidates are greedily colored and the color count
bounds the achievable clique size.  Vertices are explored in descending
color order so the bound tightens early.  Bitsets (Python ints) represent
candidate sets, which keeps set intersection O(words) and makes the search
comfortably fast at controller-domain scale (tens of waiting users).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph, Node


def is_clique(graph: Graph, nodes: Sequence[Node]) -> bool:
    """True when every pair in ``nodes`` is adjacent in ``graph``."""
    members = list(nodes)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if not graph.has_edge(u, v):
                return False
    return True


class _BitsetSearch:
    """One max-clique search instance over an index-mapped graph."""

    def __init__(self, graph: Graph) -> None:
        # Descending-degree order concentrates dense structure at low
        # indices, which improves both the coloring bound and cache locality.
        self.nodes: List[Node] = sorted(
            graph.nodes, key=lambda n: (-graph.degree(n), str(n))
        )
        self.index: Dict[Node, int] = {n: i for i, n in enumerate(self.nodes)}
        n = len(self.nodes)
        self.adj: List[int] = [0] * n
        self.weights: List[Dict[int, float]] = [dict() for _ in range(n)]
        for u, v, w in graph.edges():
            i, j = self.index[u], self.index[v]
            self.adj[i] |= 1 << j
            self.adj[j] |= 1 << i
            self.weights[i][j] = w
            self.weights[j][i] = w
        self.best_members: List[int] = []
        self.best_weight = -1.0

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _bits(mask: int) -> List[int]:
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def _color_sort(self, candidates: int) -> List[Tuple[int, int]]:
        """Greedy-color the candidate set; return [(vertex, color)] with
        colors ascending (1-based).  color(v) bounds the clique size any
        extension through v can reach within the remaining candidates."""
        result: List[Tuple[int, int]] = []
        uncolored = candidates
        color = 0
        while uncolored:
            color += 1
            available = uncolored
            while available:
                low = available & -available
                v = low.bit_length() - 1
                result.append((v, color))
                # v joins this color class: drop v and its neighbors from
                # the class's availability, and v from the uncolored pool.
                available &= ~(self.adj[v] | low)
                uncolored &= ~low
        return result

    def _added_weight(self, v: int, clique: List[int]) -> float:
        w = self.weights[v]
        return sum(w.get(u, 0.0) for u in clique)

    # --------------------------------------------------------------- search

    def run(self) -> Tuple[List[Node], float]:
        """Execute the branch-and-bound search; returns (members, weight)."""
        if not self.nodes:
            return [], 0.0
        all_mask = (1 << len(self.nodes)) - 1
        self._expand([], 0.0, all_mask)
        members = [self.nodes[i] for i in self.best_members]
        return members, self.best_weight

    def _expand(self, clique: List[int], weight: float, candidates: int) -> None:
        if not candidates:
            size = len(clique)
            best_size = len(self.best_members)
            if size > best_size or (size == best_size and weight > self.best_weight):
                self.best_members = list(clique)
                self.best_weight = weight
            return
        colored = self._color_sort(candidates)
        # Walk highest colors first; the bound len(clique) + color is the
        # best size reachable through this vertex.  Pruning uses < so that
        # equal-size, heavier-weight cliques are still explored (the
        # paper's edge-weight tie-break needs them).
        for v, color in reversed(colored):
            if len(clique) + color < len(self.best_members):
                return
            added = self._added_weight(v, clique)
            clique.append(v)
            self._expand(clique, weight + added, candidates & self.adj[v])
            clique.pop()
            candidates &= ~(1 << v)


def max_clique(graph: Graph) -> Tuple[List[Node], float]:
    """The maximum clique of ``graph`` and its internal edge-weight sum.

    Among maximum cliques of equal size, the one with the largest sum of
    edge weights is returned (the paper's tie-break).  The empty graph
    yields ``([], 0.0)``; an edgeless graph yields a single vertex.
    """
    members, weight = _BitsetSearch(graph).run()
    return members, max(weight, 0.0)


@dataclass(frozen=True)
class CliqueCover:
    """The result of the iterative clique decomposition."""

    cliques: List[List[Node]]
    weights: List[float]

    def __len__(self) -> int:
        return len(self.cliques)

    def __iter__(self) -> Iterator[List[Node]]:
        return iter(self.cliques)

    @property
    def nodes(self) -> Set[Node]:
        """All nodes covered by the cliques."""
        return {node for clique in self.cliques for node in clique}


def clique_cover(graph: Graph, max_clique_size: Optional[int] = None) -> CliqueCover:
    """Iteratively extract maximum cliques until the graph is exhausted.

    Returns the cliques in extraction order (largest first — removing a
    clique can only shrink later cliques).  Isolated vertices come out as
    singleton cliques at the tail.  ``max_clique_size`` optionally caps a
    clique's size by splitting oversized extractions (useful when a clique
    exceeds the number of APs it must be spread over).
    """
    working = graph.copy()
    cliques: List[List[Node]] = []
    weights: List[float] = []
    while len(working) > 0:
        # Fast path: no edges left, everything remaining is a singleton.
        if working.n_edges() == 0:
            for node in sorted(working.nodes, key=str):
                cliques.append([node])
                weights.append(0.0)
            break
        members, weight = max_clique(working)
        if not members:
            raise RuntimeError("max_clique returned empty on a non-empty graph")
        if max_clique_size is not None and len(members) > max_clique_size:
            members = members[:max_clique_size]
            weight = working.total_weight(members)
        cliques.append(members)
        weights.append(weight)
        working.remove_nodes(members)
    return CliqueCover(cliques=cliques, weights=weights)
