"""Sharded multiprocess execution for replays and experiment sweeps.

The replay engine buffers arrivals, fires departures and samples load
strictly per controller domain, so a campus replay decomposes into one
independent shard per controller; ablation and figure sweeps decompose
into independent tasks per parameter point.  This package executes
either decomposition across a :mod:`concurrent.futures` process pool
while preserving **byte-identical** results:

* :func:`plan_replay_shards` partitions a demand stream by controller
  and pins the global sampler/poller grid (:class:`ReplayWindow`);
* :func:`replay` dispatches ``engine="serial"|"process"|"auto"`` between
  the single-process :class:`~repro.wlan.replay.ReplayEngine` and the
  sharded pool, merging per-shard results, obs-journal fragments and
  perf snapshots deterministically (see :mod:`repro.runtime.merge`);
* :func:`run_sweep` executes a :class:`SweepPlan` task graph with the
  same engine contract;
* :class:`RunDirectory` checkpoints completed shards/tasks so an
  interrupted run resumes with only the unfinished pieces.

Determinism rests on two invariants: named RNG streams are derived by
content (``RandomStreams.child`` is stable across processes), and every
shard of one run samples on the same :class:`ReplayWindow` grid.  See
``docs/runtime.md`` for the full contract.
"""

from repro.runtime.checkpoint import RunDirectory
from repro.runtime.engine import replay, replay_process, replay_serial
from repro.runtime.options import RuntimeOptions
from repro.runtime.resilience import TaskFailure
from repro.runtime.shards import ReplayShard, ShardPlan, plan_replay_shards
from repro.runtime.sweep import (
    SweepPlan,
    SweepTask,
    run_sweep,
    run_sweep_process,
    run_sweep_serial,
)
from repro.wlan.replay import ReplayWindow

__all__ = [
    "ReplayShard",
    "ReplayWindow",
    "RunDirectory",
    "RuntimeOptions",
    "ShardPlan",
    "SweepPlan",
    "SweepTask",
    "TaskFailure",
    "plan_replay_shards",
    "replay",
    "replay_process",
    "replay_serial",
    "run_sweep",
    "run_sweep_process",
    "run_sweep_serial",
]
