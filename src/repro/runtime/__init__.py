"""Sharded multiprocess execution for replays and experiment sweeps.

The replay engine buffers arrivals, fires departures and samples load
strictly per controller domain, so a campus replay decomposes into one
independent shard per controller; ablation and figure sweeps decompose
into independent tasks per parameter point.  This package executes
either decomposition across a :mod:`concurrent.futures` process pool
while preserving **byte-identical** results:

* :func:`plan_replay_shards` partitions a demand stream by controller
  and pins the global sampler/poller grid (:class:`ReplayWindow`);
* :func:`replay` dispatches ``engine="serial"|"process"|"auto"`` between
  the single-process :class:`~repro.wlan.replay.ReplayEngine` and the
  sharded pool, merging per-shard results, obs-journal fragments and
  perf snapshots deterministically (see :mod:`repro.runtime.merge`);
* :func:`run_sweep` executes a :class:`SweepPlan` task graph with the
  same engine contract;
* :class:`RunDirectory` checkpoints completed shards/tasks so an
  interrupted run resumes with only the unfinished pieces;
* :mod:`repro.runtime.shm` moves the columnar payloads through
  ``multiprocessing.shared_memory`` — published once per run by a
  :class:`SegmentSet`, sliced by row range in the workers — so nothing
  heavier than an :class:`ShmHandle` crosses the pool boundary.

Determinism rests on two invariants: named RNG streams are derived by
content (``RandomStreams.child`` is stable across processes), and every
shard of one run samples on the same :class:`ReplayWindow` grid.  See
``docs/runtime.md`` for the full contract.
"""

from repro.runtime.checkpoint import RunDirectory
from repro.runtime.engine import replay, replay_process, replay_serial
from repro.runtime.options import RuntimeOptions
from repro.runtime.resilience import TaskFailure, shutdown_pools
from repro.runtime.shards import ReplayShard, ShardPlan, plan_replay_shards
from repro.runtime.shm import (
    SegmentSet,
    ShmHandle,
    ShmSlice,
    attach_arrays,
    reap_orphans,
)
from repro.runtime.sweep import (
    SweepPlan,
    SweepTask,
    run_sweep,
    run_sweep_process,
    run_sweep_serial,
    with_attachments,
)
from repro.wlan.replay import ReplayWindow

__all__ = [
    "ReplayShard",
    "ReplayWindow",
    "RunDirectory",
    "RuntimeOptions",
    "SegmentSet",
    "ShardPlan",
    "ShmHandle",
    "ShmSlice",
    "SweepPlan",
    "SweepTask",
    "TaskFailure",
    "attach_arrays",
    "plan_replay_shards",
    "reap_orphans",
    "replay",
    "replay_process",
    "replay_serial",
    "run_sweep",
    "run_sweep_process",
    "run_sweep_serial",
    "shutdown_pools",
    "with_attachments",
]
