"""The ``engine=`` dispatcher for sharded replays.

:func:`replay` is the drop-in parallel equivalent of
``ReplayEngine(layout, strategy, config).run(demands)``:

* ``engine="serial"`` — exactly that call (:func:`replay_serial`);
* ``engine="process"`` — shard per controller, execute the shards on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, and merge results,
  journal fragments and perf snapshots deterministically
  (:func:`replay_process`);
* ``engine="auto"`` — the process pool when there is real parallelism
  (more than one busy shard) and the strategy is ``shard_safe``, serial
  otherwise.

The two engines are byte-identical for a fixed seed — the parity tests
registered in :mod:`repro.devtools.parity_registry` assert equal
:class:`~repro.wlan.replay.ReplayResult`\\ s and ``strip_wall``-identical
journals.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro import perf
from repro.faults.model import FaultPlan
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import Span, get_tracer
from repro.runtime.checkpoint import RunDirectory
from repro.runtime.merge import merge_journal_fragments, merge_shard_results
from repro.runtime.resilience import journal_failure, run_pool_with_retries
from repro.runtime.shards import ShardPlan, plan_replay_shards
from repro.runtime.shm import SegmentSet, ShmSlice, reap_orphans
from repro.runtime.workers import (
    ShardOutcome,
    ShardTask,
    init_worker,  # noqa: F401  (re-exported for pool users/tests)
    run_replay_shard,
)
from repro.trace.columnar import DemandArrays
from repro.trace.records import DemandSession
from repro.trace.social import CampusLayout
from repro.wlan.replay import ReplayConfig, ReplayEngine, ReplayResult
from repro.wlan.strategies import SelectionStrategy


def replay(
    layout: CampusLayout,
    strategy: SelectionStrategy,
    demands: Sequence[DemandSession],
    config: Optional[ReplayConfig] = None,
    *,
    engine: str = "auto",
    workers: Optional[int] = None,
    run_dir: Optional[Union[str, Path]] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_task_retries: int = 0,
) -> ReplayResult:
    """Replay ``demands`` under ``strategy``; see the module docstring."""
    config = config if config is not None else ReplayConfig()
    if engine not in ("auto", "serial", "process"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "process" and not strategy.shard_safe:
        raise ValueError(
            f"strategy {strategy.name!r} is not shard-safe (it carries "
            "mutable cross-controller state); use engine='serial'"
        )
    if engine == "auto":
        if not strategy.shard_safe or not demands:
            engine = "serial"
        else:
            plan = plan_replay_shards(layout, demands, config)
            engine = "process" if plan.busy_shards > 1 else "serial"
    if engine == "serial":
        return replay_serial(layout, strategy, demands, config, fault_plan=fault_plan)
    return replay_process(
        layout, strategy, demands, config, workers=workers, run_dir=run_dir,
        fault_plan=fault_plan, max_task_retries=max_task_retries,
    )


def replay_serial(
    layout: CampusLayout,
    strategy: SelectionStrategy,
    demands: Sequence[DemandSession],
    config: Optional[ReplayConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ReplayResult:
    """The single-process reference: ``ReplayEngine.run`` verbatim."""
    return ReplayEngine(layout, strategy, config, fault_plan=fault_plan).run(
        demands
    )


def replay_process(
    layout: CampusLayout,
    strategy: SelectionStrategy,
    demands: Sequence[DemandSession],
    config: Optional[ReplayConfig] = None,
    workers: Optional[int] = None,
    run_dir: Optional[Union[str, Path]] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_task_retries: int = 0,
) -> ReplayResult:
    """Sharded replay across a process pool, deterministically merged."""
    config = config if config is not None else ReplayConfig()
    if not strategy.shard_safe:
        raise ValueError(
            f"strategy {strategy.name!r} is not shard-safe; the process "
            "engine would change its decisions"
        )
    if not demands:
        # Nothing to shard; keep the serial engine's empty-result shape.
        return replay_serial(layout, strategy, demands, config, fault_plan=fault_plan)
    plan = plan_replay_shards(layout, demands, config)
    # Quarantine segments a hard-killed earlier run may have left behind
    # before publishing our own.
    reap_orphans()
    tracer = get_tracer()
    metrics_registry = obs_metrics.get_metrics()
    with perf.timer(f"replay.run.{strategy.name}"):
        with tracer.span(
            "replay.run",
            strategy=strategy.name,
            demands=len(demands),
        ) as span:
            span.sim_start = plan.window.start
            ordered, ranges = plan.demand_layout()
            with SegmentSet() as segments:
                with perf.timer("shm.publish"):
                    handle = segments.publish_demands(
                        DemandArrays.from_demands(ordered)
                    )
                # One task per pool worker, not per controller: a
                # worker replays its whole (contiguous) shard group in
                # a single simulator pass, so the periodic sampler and
                # poller grids — which every per-controller shard would
                # otherwise duplicate — run once per worker.
                groups = plan.worker_groups(
                    resolve_workers(workers, len(plan.shards))
                )
                tasks = [
                    ShardTask(
                        shard_id="+".join(s.shard_id for s in group),
                        controller_id=group[0].controller_id,
                        controller_ids=tuple(
                            s.controller_id for s in group
                        ),
                        demands=ShmSlice(
                            handle,
                            ranges[group[0].shard_id][0],
                            ranges[group[-1].shard_id][1],
                        ),
                        layout=layout,
                        strategy=strategy,
                        config=config,
                        window=plan.window,
                        trace=tracer.enabled,
                        metrics=metrics_registry.enabled,
                        metrics_window=metrics_registry.window_seconds,
                        fault_plan=fault_plan,
                    )
                    for group in groups
                ]
                outcomes = _execute_shards(
                    plan, tasks, workers, run_dir, max_task_retries
                )
            for outcome in outcomes:
                perf.merge(outcome.perf)
                if metrics_registry.enabled and outcome.metrics:
                    # Same contract as the journal fragments: the merged
                    # run-scoped series are byte-identical to a serial
                    # run's (order-independent fold, disjoint shards).
                    metrics_registry.merge(outcome.metrics)
            result = merge_shard_results(plan, outcomes, strategy.name)
            final_now = {outcome.final_now for outcome in outcomes}
            if len(final_now) != 1:
                raise ValueError(
                    f"shards ended at different clocks {sorted(final_now)}"
                )
            sim_end = next(iter(final_now))
            if tracer.enabled and isinstance(span, Span):
                tracer.inject(
                    merge_journal_fragments(
                        [outcome.records for outcome in outcomes],
                        base_id=span.span_id,
                        base_depth=span.depth,
                        sim_start=plan.window.start,
                        sim_end=sim_end,
                        events=result.events_processed,
                    )
                )
            span.sim_end = sim_end
            span.set(
                sessions=len(result.sessions),
                events=result.events_processed,
            )
    perf.count("replay.events", result.events_processed)
    perf.count("replay.sessions", len(result.sessions))
    return result


def resolve_workers(workers: Optional[int], pending: int) -> int:
    """The pool size: requested (or CPU count), never above the work."""
    limit = workers if workers is not None else os.cpu_count() or 1
    return max(1, min(limit, pending))


def _execute_shards(
    plan: ShardPlan,
    tasks: List[ShardTask],
    workers: Optional[int],
    run_dir: Optional[Union[str, Path]],
    max_task_retries: int = 0,
) -> List[ShardOutcome]:
    """Run (or reload) every shard; returns outcomes in plan order.

    A shard whose worker raises — or dies outright, breaking the pool —
    is retried up to ``max_task_retries`` times on a fresh pool.  A merge
    needs *every* shard, so a shard that exhausts its retries is fatal:
    it is journalled and marked ``.failed.json`` in the run directory
    (never silently dropped), the finished shards stay checkpointed, and
    the first original exception re-raises for the resume to handle.
    """
    store = (
        RunDirectory(run_dir, kind="replay", fingerprint=_fingerprint(plan, tasks))
        if run_dir is not None
        else None
    )
    outcomes: Dict[str, ShardOutcome] = {}
    pending: List[ShardTask] = []
    for task in tasks:
        hit = False
        value: Optional[ShardOutcome] = None
        if store is not None:
            hit, value = store.try_load(task.shard_id)
        if hit and value is not None:
            outcomes[task.shard_id] = value
        else:
            pending.append(task)
    if pending:

        def record(task: ShardTask, outcome: ShardOutcome) -> None:
            outcomes[task.shard_id] = outcome
            if store is not None:
                store.store(task.shard_id, outcome)

        failures, first_error = run_pool_with_retries(
            pending,
            run_replay_shard,
            lambda task: task.shard_id,
            record,
            workers=workers,
            max_retries=max_task_retries,
        )
        if failures:
            for task_id in sorted(failures):
                failure = failures[task_id]
                journal_failure(failure)
                if store is not None:
                    store.store_failure(
                        task_id,
                        {"error": failure.error, "attempts": failure.attempts},
                    )
            assert first_error is not None
            raise first_error
    return [outcomes[task.shard_id] for task in tasks]


def _fingerprint(plan: ShardPlan, tasks: List[ShardTask]) -> str:
    """Checkpoint fingerprint: plan shape, strategy/config/trace, faults.

    The ``transport=`` tag versions the :class:`ShardOutcome` pickle
    shape — a run directory checkpointed before the shared-memory
    transport landed fails the fingerprint guard loudly instead of
    crashing at merge time with half-loaded outcomes.  The ``groups=``
    tag pins the worker-group shape: checkpoints are keyed by group id,
    so a directory written at one worker count refuses to half-resume
    at another instead of silently recomputing under different keys.
    """
    first = tasks[0]
    faults = (
        "none" if first.fault_plan is None else first.fault_plan.fingerprint()
    )
    groups = ",".join(task.shard_id for task in tasks)
    return (
        f"{plan.fingerprint()}|{first.strategy.name}|{first.config!r}"
        f"|trace={first.trace}|metrics={first.metrics}"
        f"|faults={faults}|transport=shm-v1"
        f"|groups={groups}"
    )
