"""Execution options shared by the replay and sweep dispatchers."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

#: The engine names every dispatcher in this package accepts.
ENGINES = ("auto", "serial", "process")


@dataclass(frozen=True)
class RuntimeOptions:
    """How to execute a shardable run.

    ``engine="auto"`` picks the process pool when the plan has more than
    one unit of parallel work (and, for replays, the strategy is
    ``shard_safe``); ``workers`` caps the pool size (defaults to the CPU
    count); ``run_dir`` enables checkpoint/resume via
    :class:`~repro.runtime.checkpoint.RunDirectory`.
    """

    engine: str = "auto"
    workers: Optional[int] = None
    run_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


#: The default: serial execution, no checkpointing — byte-for-byte the
#: behaviour every caller had before this package existed.
SERIAL = RuntimeOptions(engine="serial")
