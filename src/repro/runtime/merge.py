"""Deterministic reassembly of per-shard outputs.

Two merges happen after a sharded replay, and both must reproduce the
serial engine's output exactly:

**Results.**  Sessions concatenate and re-sort by ``(connect, user_id)``
— the serial engine's own output order.  Per-controller series are
disjoint across outcomes (each worker samples only its own controller
group on the shared :class:`~repro.wlan.replay.ReplayWindow` grid), so
the series dict is a keyed union.  Event counts need one correction:
every worker group processes its *own* copy of the periodic
sampler/poller ticks, which the serial run processes exactly once, so
the merged count subtracts the ``(k - 1)`` duplicate tick sets for
``k`` outcomes.

**Journal fragments.**  The serial engine emits records in event order:
at one instant, flush-phase records (decisions, then the closing
``replay.flush`` span) precede sampler records, sampler records tick
through controllers in sorted order, and the ``sim.run`` span closes
after everything.  Worker fragments each preserve that order *within*
a shard; the merge reassembles the global order by interleaving
*units* — one flush group (its decisions plus the closing span) or one
sample record — on the canonical key ``(sim_time, phase, tie)``, drops
each worker's private ``sim.run`` span, renumbers the surviving spans
consecutively under the parent's ``replay.run`` span, and synthesizes
the single ``sim.run`` record the serial engine would have written.

The tie key needs care: two controllers *do* flush at the same instant
(arrivals are quantized to schedule boundaries), and the serial heap
fires those flushes in the order their flush events were scheduled —
which is the arrival order of each batch's first ("opener") demand, and
arrivals at one instant are processed in ``(arrival, user_id)`` order.
The opener is exactly the batch's first decision record, so a flush
group ties on its first decision's ``user_id``.  Sample units tie on
``controller_id`` (the serial sampler's own iteration order).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs.records import (
    DecisionRecord,
    FaultRecord,
    SampleRecord,
    SpanRecord,
)
from repro.obs.tracer import TracedRecord
from repro.runtime.shards import ShardPlan
from repro.runtime.workers import SessionColumns, ShardOutcome
from repro.trace.records import SessionRecord
from repro.wlan.metrics import ControllerSeries
from repro.wlan.replay import ReplayResult

#: Canonical intra-instant phases (mirrors the kernel's event
#: priorities): fault records fire first at an instant (the engine
#: schedules fault events at priority -1), then flush-phase records,
#: then sampler records.
_PHASE_FAULT = -1
_PHASE_FLUSH = 0
_PHASE_SAMPLE = 1

#: (sim_time, phase, tie, fragment_unit_seq)
_SortKey = Tuple[float, int, str, int]


def merge_shard_results(
    plan: ShardPlan,
    outcomes: Sequence[ShardOutcome],
    strategy_name: str,
) -> ReplayResult:
    """Reassemble per-shard (or per-group) results into the serial output.

    Outcomes may carry one controller each or a whole worker group's;
    what must hold is that together they cover every controller of the
    plan exactly once.
    """
    expected = {shard.controller_id for shard in plan.shards}
    covered = {cid for outcome in outcomes for cid in outcome.series}
    if covered != expected:
        raise ValueError(
            f"outcomes cover controllers {sorted(covered)}, "
            f"plan expects {sorted(expected)}"
        )
    sessions = merge_session_columns([outcome.sessions for outcome in outcomes])
    series: Dict[str, ControllerSeries] = {}
    for outcome in sorted(outcomes, key=lambda o: o.controller_id):
        for controller_id, controller_series in outcome.series.items():
            if controller_id in series:
                raise ValueError(
                    f"controller {controller_id!r} sampled by two shards"
                )
            series[controller_id] = controller_series
    tick_sets = {(o.sampler_ticks, o.poller_ticks) for o in outcomes}
    if len(tick_sets) != 1:
        raise ValueError(
            f"shards disagree on the periodic grid: {sorted(tick_sets)} — "
            "they were not run against one shared window"
        )
    sampler_ticks, poller_ticks = next(iter(tick_sets))
    duplicates = (len(outcomes) - 1) * (sampler_ticks + poller_ticks)
    events = sum(o.events_processed for o in outcomes) - duplicates
    return ReplayResult(
        strategy_name=strategy_name,
        sessions=sessions,
        series=series,
        events_processed=events,
    )


def _remap(table: List[str], local: Sequence[str]) -> np.ndarray:
    """local code -> union code, for one sorted union ``table``."""
    return np.searchsorted(
        np.asarray(table, dtype=object), np.asarray(local, dtype=object)
    )


def merge_session_columns(
    columns: Sequence[SessionColumns],
) -> List[SessionRecord]:
    """Fold per-shard session columns into the serial output order.

    The serial engine emits sessions sorted by ``(connect, user_id)``.
    Reassembling that from columns is three array ops: remap each
    shard's codes onto union id tables (sorted union, so code order is
    still lexicographic id order), concatenate in shard-plan order, and
    stable-lexsort by ``(connect, user)``.  Stability makes full-key
    ties keep concatenation order — exactly what ``sorted`` over the
    chained per-shard lists (the previous implementation) produced.
    """
    total = sum(len(c) for c in columns)
    if total == 0:
        return []
    user_ids = sorted(set().union(*(c.user_ids for c in columns)))
    ap_ids = sorted(set().union(*(c.ap_ids for c in columns)))
    controller_ids = sorted(set().union(*(c.controller_ids for c in columns)))
    user_parts: List[np.ndarray] = []
    ap_parts: List[np.ndarray] = []
    controller_parts: List[np.ndarray] = []
    for c in columns:
        if not len(c):
            continue
        # searchsorted over the union table maps each shard-local table
        # entry to its global code; indexing by the shard's code column
        # then remaps every row at once.
        user_parts.append(_remap(user_ids, c.user_ids)[c.user])
        ap_parts.append(_remap(ap_ids, c.ap_ids)[c.ap])
        controller_parts.append(
            _remap(controller_ids, c.controller_ids)[c.controller]
        )
    user = np.concatenate(user_parts)
    ap = np.concatenate(ap_parts)
    controller = np.concatenate(controller_parts)
    connect = np.concatenate([c.connect for c in columns if len(c)])
    disconnect = np.concatenate([c.disconnect for c in columns if len(c)])
    bytes_total = np.concatenate([c.bytes_total for c in columns if len(c)])
    order = np.lexsort((user, connect))
    # Materialize on the post-merge hot path the same way the workers do
    # (see DemandArrays.to_demands): batch-decode the columns with
    # ``tolist`` and build each record via ``__new__`` plus a direct
    # ``__dict__`` assignment.  ``__post_init__`` validation is safely
    # skipped — every row came from a SessionRecord the worker engine
    # already validated at construction.
    user_l = user[order].tolist()
    ap_l = ap[order].tolist()
    controller_l = controller[order].tolist()
    connect_l = connect[order].tolist()
    disconnect_l = disconnect[order].tolist()
    bytes_l = bytes_total[order].tolist()
    new = SessionRecord.__new__
    out: List[SessionRecord] = []
    append = out.append
    for i in range(len(user_l)):
        record = new(SessionRecord)
        record.__dict__.update({
            "user_id": user_ids[user_l[i]],
            "ap_id": ap_ids[ap_l[i]],
            "controller_id": controller_ids[controller_l[i]],
            "connect": connect_l[i],
            "disconnect": disconnect_l[i],
            "bytes_total": bytes_l[i],
        })
        append(record)
    return out


def _fragment_units(
    fragment: Sequence[TracedRecord],
) -> List[Tuple[_SortKey, List[TracedRecord]]]:
    """Split one worker fragment into keyed interleave units.

    A unit is either one flush group — the contiguous decisions of one
    batch followed by its closing ``replay.flush`` span, keyed by the
    flush instant and the opener's user id — or a single sample record,
    keyed by its controller.  Workers' ``sim.run`` spans are dropped
    (the parent synthesizes the single merged one).
    """
    units: List[Tuple[_SortKey, List[TracedRecord]]] = []
    group: List[DecisionRecord] = []
    for record in fragment:
        if isinstance(record, DecisionRecord):
            group.append(record)
            continue
        if isinstance(record, SpanRecord) and record.name == "sim.run":
            if group:
                raise ValueError("decisions dangling outside a flush group")
            continue
        seq = len(units)
        if isinstance(record, SpanRecord):
            if not group:
                raise ValueError(
                    f"span {record.name!r} closed with no decision group"
                )
            close = record.sim_end if record.sim_end is not None else 0.0
            opener = group[0].user_id
            units.append(
                ((close, _PHASE_FLUSH, opener, seq), [*group, record])
            )
            group = []
        elif isinstance(record, SampleRecord):
            units.append(
                (
                    (record.sim_time, _PHASE_SAMPLE, record.controller_id, seq),
                    [record],
                )
            )
        elif isinstance(record, FaultRecord):
            if record.sim_time is None:
                raise ValueError(
                    f"fault record {record.kind!r} in a shard fragment "
                    "carries no sim time"
                )
            # The serial engine schedules a plan's fault events in plan
            # order — sorted (time, kind, target) — so the same key
            # reassembles the global stream (kind tags never prefix one
            # another, so "kind:target" compares like (kind, target)).
            tie = f"{record.kind}:{record.target}"
            units.append(
                ((record.sim_time, _PHASE_FAULT, tie, seq), [record])
            )
        else:
            raise TypeError(
                f"unexpected fragment record {type(record).__name__}"
            )
    if group:
        raise ValueError("fragment ended inside an open flush group")
    return units


def merge_journal_fragments(
    fragments: Sequence[Sequence[TracedRecord]],
    base_id: int,
    base_depth: int,
    sim_start: float,
    sim_end: float,
    events: int,
) -> List[TracedRecord]:
    """Worker tracer fragments → the serial engine's record stream.

    ``base_id``/``base_depth`` identify the parent's open ``replay.run``
    span; the synthetic ``sim.run`` span is numbered directly after it
    and every surviving fragment span is renumbered consecutively in
    canonical order, exactly as the serial engine would have allocated
    ids (flush spans open and close in event order).  ``events`` is the
    *merged* event count (the serial ``sim.run`` span's attribute).
    """
    sim_run_id = base_id + 1
    keyed: List[Tuple[_SortKey, List[TracedRecord]]] = []
    for fragment in fragments:
        keyed.extend(_fragment_units(fragment))
    keyed.sort(key=lambda item: item[0])
    merged: List[TracedRecord] = []
    next_id = sim_run_id + 1
    for _, unit in keyed:
        for record in unit:
            if isinstance(record, SpanRecord):
                record = SpanRecord(
                    span_id=next_id,
                    parent_id=sim_run_id,
                    name=record.name,
                    depth=base_depth + 2,
                    sim_start=record.sim_start,
                    sim_end=record.sim_end,
                    attrs=dict(record.attrs),
                    wall_start=record.wall_start,
                    wall_elapsed=record.wall_elapsed,
                )
                next_id += 1
            merged.append(record)
    merged.append(
        SpanRecord(
            span_id=sim_run_id,
            parent_id=base_id,
            name="sim.run",
            depth=base_depth + 1,
            sim_start=sim_start,
            sim_end=sim_end,
            attrs={"events": events},
            wall_start=0.0,
            wall_elapsed=0.0,
        )
    )
    return merged
