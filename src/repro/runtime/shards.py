"""Shard planning: partition a demand stream by controller domain.

Sharding is *by construction* lossless: ``wlan/replay.py`` buffers
arrivals per controller, fires departures against the owning
controller's APs, and samples each controller's load independently — no
event of controller ``A``'s replay reads or writes controller ``B``'s
state.  The only shared coordinates are the simulator clock and the
periodic sampler/poller grids, which the plan pins for every shard via
one global :class:`~repro.wlan.replay.ReplayWindow`.

Every controller of the layout gets a shard, including controllers with
zero demands: a serial run samples idle controllers too, and the merged
series must carry those (all-idle) rows to stay identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.trace.records import DemandSession
from repro.trace.social import CampusLayout
from repro.wlan.replay import (
    ReplayConfig,
    ReplayWindow,
    shard_stream_name,
    window_for,
)


@dataclass(frozen=True)
class ReplayShard:
    """One controller domain's slice of the demand stream."""

    #: Stable shard identifier — also the RNG child-stream name (see
    #: :func:`repro.wlan.replay.shard_stream_name`).
    shard_id: str
    controller_id: str
    #: This controller's demands, sorted by ``(arrival, user_id)``.
    demands: Tuple[DemandSession, ...]


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of one replay run."""

    shards: Tuple[ReplayShard, ...]
    window: ReplayWindow

    @property
    def n_demands(self) -> int:
        """Total demands across all shards."""
        return sum(len(shard.demands) for shard in self.shards)

    @property
    def busy_shards(self) -> int:
        """Shards that actually carry demands."""
        return sum(1 for shard in self.shards if shard.demands)

    def demand_layout(
        self,
    ) -> Tuple[List[DemandSession], Dict[str, Tuple[int, int]]]:
        """The plan's demands flattened shard-by-shard, plus row ranges.

        This is the shape the zero-copy transport wants: one flat list
        to publish once, and a half-open ``[start, stop)`` row range per
        ``shard_id`` for the workers to slice.  Within each range the
        demands keep their shard order (sorted ``(arrival, user_id)``).
        """
        ordered: List[DemandSession] = []
        ranges: Dict[str, Tuple[int, int]] = {}
        for shard in self.shards:
            start = len(ordered)
            ordered.extend(shard.demands)
            ranges[shard.shard_id] = (start, len(ordered))
        return ordered, ranges

    def worker_groups(self, n: int) -> List[Tuple[ReplayShard, ...]]:
        """Partition the shards into at most ``n`` contiguous groups.

        One group per pool worker: a worker replays its whole group in
        a *single* simulator pass (``run_window`` with the group's
        controller list), so one periodic sampler/poller grid serves
        every controller of the group instead of one duplicated grid
        per controller — the dominant decomposition overhead when
        workers are few.  Groups are contiguous in plan order, so each
        group's rows stay one half-open range of the published demand
        layout, and are balanced by demand count (a group closes once
        it reaches its fair share of the rows).

        The grouping never changes the merged result: the merge layer
        reassembles outcomes by controller and canonical sort keys, not
        by group shape.
        """
        count = max(1, min(n, len(self.shards)))
        total = self.n_demands
        groups: List[Tuple[ReplayShard, ...]] = []
        current: List[ReplayShard] = []
        cum = 0
        for i, shard in enumerate(self.shards):
            current.append(shard)
            cum += len(shard.demands)
            remaining = len(self.shards) - i - 1
            open_slots = count - len(groups) - 1
            if open_slots and (
                cum * count >= (len(groups) + 1) * total
                or remaining == open_slots
            ):
                groups.append(tuple(current))
                current = []
        if current:
            groups.append(tuple(current))
        return groups

    def fingerprint(self) -> str:
        """A stable digest of the plan's shape, for checkpoint metadata.

        Covers the shard ids, their demand counts and the window, so a
        run directory created for one plan refuses to resume another.
        """
        parts = [f"{self.window.start!r}:{self.window.horizon!r}"]
        parts.extend(
            f"{shard.shard_id}={len(shard.demands)}" for shard in self.shards
        )
        digest = zlib.crc32("|".join(parts).encode("utf-8"))
        return f"shards:{len(self.shards)}:{digest:08x}"


def plan_replay_shards(
    layout: CampusLayout,
    demands: Sequence[DemandSession],
    config: ReplayConfig,
) -> ShardPlan:
    """Partition ``demands`` into one shard per controller of ``layout``.

    Raises :class:`ValueError` for an empty demand stream (there is no
    window to pin — callers short-circuit that case) and :class:`KeyError`
    for a demand in a building the layout does not know, mirroring what
    the serial engine would raise at replay time.
    """
    if not demands:
        raise ValueError("cannot plan shards for an empty demand stream")
    ordered = sorted(demands, key=lambda d: (d.arrival, d.user_id))
    window = window_for(ordered, config)
    by_controller: Dict[str, List[DemandSession]] = {
        controller_id: [] for controller_id in layout.controller_ids
    }
    for demand in ordered:
        building = layout.buildings[demand.building_id]
        by_controller[building.controller_id].append(demand)
    shards = tuple(
        ReplayShard(
            shard_id=shard_stream_name(controller_id),
            controller_id=controller_id,
            demands=tuple(by_controller[controller_id]),
        )
        for controller_id in layout.controller_ids
    )
    return ShardPlan(shards=shards, window=window)
