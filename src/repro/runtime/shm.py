"""Zero-copy columnar transport over POSIX shared memory.

The process engine used to pickle every shard's demand slice into the
pool and pickle every session object back out — at trace scale the
serialization tax made the parallel engine *slower* than serial.  This
module replaces that handoff:

* the parent publishes a run's columnar arrays
  (:class:`~repro.trace.columnar.DemandArrays`,
  :class:`~repro.trace.columnar.SessionArrays`,
  :class:`~repro.trace.columnar.FlowArrays`) into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment per
  family, **once per run**;
* workers receive a :class:`ShmHandle` — segment name plus column
  dtypes/shapes/offsets, a few hundred bytes of pickle — attach
  read-only, and slice their controller-domain rows by index range
  (:class:`ShmSlice`);
* nothing numpy crosses the pool boundary by value (enforced by the
  ``no-pickled-columns`` lint rule).

Segment lifecycle contract
--------------------------

Creation and destruction belong to the parent: a :class:`SegmentSet`
context manager owns every segment it publishes and closes **and
unlinks** them on exit — normal return, worker crash, or
``KeyboardInterrupt`` all pass through its ``finally``.  Workers only
ever attach and close; they never unlink, so the parent's single
``unlink()`` also keeps the :mod:`multiprocessing.resource_tracker`
ledger balanced (no leak warnings at interpreter shutdown).

A parent killed hard (SIGKILL, OOM) cannot run ``finally`` blocks; its
segments become orphans in ``/dev/shm``.  :func:`reap_orphans` — called
by the engine before each sharded run — quarantines those the way
:mod:`repro.runtime.checkpoint` quarantines ``*.corrupt`` pickles:
every segment whose embedded creator pid is dead is removed and
reported, never silently ignored.  (Unlike a corrupt checkpoint, a dead
run's segment has no post-mortem value, so quarantine deletes instead
of renaming — the warning log is the audit trail.)

Attach safety: numpy views built over ``SharedMemory.buf`` do **not**
pin the mapping — numpy releases the Py_buffer immediately and keeps a
bare pointer, so ``close()`` succeeds and unmaps even while views are
alive, turning them into dangling pointers.  The contract is therefore
scope-based: arrays yielded by :func:`attach_arrays` (and its typed
variants) are valid *only inside the* ``with`` *block*; anything that
must outlive it is copied out first, which is exactly what the
worker-facing :func:`fetch_demands` does before its mapping closes.
"""

from __future__ import annotations

import itertools
import logging
import os
import re
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.trace.columnar import DemandArrays, FlowArrays, SessionArrays

_LOG = logging.getLogger(__name__)

#: Live published segment bytes, parent-side only (a worker never
#: publishes).  Read by the ``mem.shm_bytes`` memory-probe source.
_SHM_BYTES: Dict[str, int] = {"published": 0}


def published_bytes() -> float:
    """Bytes currently published in this process's live segments."""
    return float(_SHM_BYTES["published"])

#: Segment names are ``repro-shm-<creator pid>-<seq>``; the pid is what
#: lets :func:`reap_orphans` tell a live run's segments from a dead one's.
_SEGMENT_PREFIX = "repro-shm"
_SEGMENT_PATTERN = re.compile(r"^repro-shm-(\d+)-\d+$")
_SEGMENT_SEQ = itertools.count()

#: Where POSIX shared memory surfaces as files on Linux.
_SHM_DIR = "/dev/shm"

#: Column offsets are aligned so every numpy view starts on a boundary
#: friendly to vectorized loads.
_ALIGN = 16

ColumnArrays = Union[DemandArrays, SessionArrays, FlowArrays]


@dataclass(frozen=True)
class ColumnSpec:
    """One column's location inside a segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmHandle:
    """A compact, picklable description of one published column family.

    ``digest`` is a crc32 chain over the column *contents*, so
    :meth:`fingerprint` is stable across runs (segment names are not —
    they embed the creator pid) and safe to fold into checkpoint
    fingerprints.
    """

    segment: str
    #: ``"demands"``, ``"sessions"`` or ``"flows"``.
    kind: str
    specs: Tuple[ColumnSpec, ...]
    nbytes: int
    digest: int

    def fingerprint(self) -> str:
        """A content digest independent of the segment's name."""
        return f"shm:{self.kind}:{self.nbytes}:{self.digest:08x}"


@dataclass(frozen=True)
class ShmSlice:
    """A worker's row range ``[start, stop)`` of a published family."""

    handle: ShmHandle
    start: int
    stop: int


# ------------------------------------------------------------------ packing


def _table_columns(name: str, values: Sequence[str]) -> List[Tuple[str, np.ndarray]]:
    """A string table as two flat columns: utf-8 blob + end offsets."""
    encoded = [value.encode("utf-8") for value in values]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    for i, piece in enumerate(encoded):
        offsets[i + 1] = offsets[i] + len(piece)
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return [(f"{name}#off", offsets), (f"{name}#blob", blob)]


def _decode_table(views: Dict[str, np.ndarray], name: str) -> List[str]:
    """Rebuild a string table (owned copies; strings outlive the segment)."""
    offsets = views[f"{name}#off"]
    data = views[f"{name}#blob"].tobytes()
    return [
        data[int(offsets[i]) : int(offsets[i + 1])].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


def _pack(
    kind: str, columns: Sequence[Tuple[str, np.ndarray]]
) -> Tuple[Tuple[ColumnSpec, ...], int, int]:
    """Lay out ``columns`` back to back: specs, total bytes, content crc."""
    specs: List[ColumnSpec] = []
    offset = 0
    digest = zlib.crc32(kind.encode("utf-8"))
    for name, array in columns:
        array = np.ascontiguousarray(array)
        spec = ColumnSpec(
            name=name,
            dtype=array.dtype.name,
            shape=tuple(int(dim) for dim in array.shape),
            offset=offset,
        )
        specs.append(spec)
        digest = zlib.crc32(repr((name, spec.dtype, spec.shape)).encode(), digest)
        digest = zlib.crc32(array.tobytes(), digest)
        offset += array.nbytes
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
    return tuple(specs), offset, digest


def _attach_views(
    handle: ShmHandle, buf: memoryview
) -> Dict[str, np.ndarray]:
    """Read-only numpy views of every column in an attached segment."""
    views: Dict[str, np.ndarray] = {}
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=buf, offset=spec.offset
        )
        view.flags.writeable = False
        views[spec.name] = view
    return views


# ---------------------------------------------------------- family schemas


def _demand_columns(arrays: DemandArrays) -> List[Tuple[str, np.ndarray]]:
    columns = _table_columns("user_ids", arrays.user_ids)
    columns += _table_columns("building_ids", arrays.building_ids)
    columns += _table_columns("group_ids", arrays.group_ids)
    columns += [
        ("user", arrays.user),
        ("building", arrays.building),
        ("group", arrays.group),
        ("arrival", arrays.arrival),
        ("departure", arrays.departure),
        ("realm_bytes", arrays.realm_bytes),
    ]
    return columns


def _demands_from_views(views: Dict[str, np.ndarray]) -> DemandArrays:
    return DemandArrays(
        _decode_table(views, "user_ids"),
        _decode_table(views, "building_ids"),
        _decode_table(views, "group_ids"),
        views["user"],
        views["building"],
        views["group"],
        views["arrival"],
        views["departure"],
        views["realm_bytes"],
    )


def _session_columns(arrays: SessionArrays) -> List[Tuple[str, np.ndarray]]:
    columns = _table_columns("user_ids", arrays.user_ids)
    columns += _table_columns("ap_ids", arrays.ap_ids)
    columns += [
        ("user", arrays.user.astype(np.int64, copy=False)),
        ("ap", arrays.ap.astype(np.int64, copy=False)),
        ("connect", arrays.connect),
        ("disconnect", arrays.disconnect),
    ]
    return columns


def _sessions_from_views(views: Dict[str, np.ndarray]) -> SessionArrays:
    return SessionArrays(
        _decode_table(views, "user_ids"),
        _decode_table(views, "ap_ids"),
        views["user"],
        views["ap"],
        views["connect"],
        views["disconnect"],
    )


def _flow_columns(arrays: FlowArrays) -> List[Tuple[str, np.ndarray]]:
    columns = _table_columns("user_ids", arrays.user_ids)
    columns += _table_columns("src_ips", arrays.src_ips)
    columns += _table_columns("dst_ips", arrays.dst_ips)
    columns += [
        ("user", arrays.user),
        ("src_ip", arrays.src_ip),
        ("dst_ip", arrays.dst_ip),
        ("protocol", arrays.protocol),
        ("src_port", arrays.src_port),
        ("dst_port", arrays.dst_port),
        ("start", arrays.start),
        ("end", arrays.end),
        ("bytes_total", arrays.bytes_total),
    ]
    return columns


def _flows_from_views(views: Dict[str, np.ndarray]) -> FlowArrays:
    return FlowArrays(
        _decode_table(views, "user_ids"),
        _decode_table(views, "src_ips"),
        _decode_table(views, "dst_ips"),
        views["user"],
        views["src_ip"],
        views["dst_ip"],
        views["protocol"],
        views["src_port"],
        views["dst_port"],
        views["start"],
        views["end"],
        views["bytes_total"],
    )


_FAMILY_ENCODERS = {
    "demands": _demand_columns,
    "sessions": _session_columns,
    "flows": _flow_columns,
}
_FAMILY_DECODERS = {
    "demands": _demands_from_views,
    "sessions": _sessions_from_views,
    "flows": _flows_from_views,
}


# ------------------------------------------------------------- publishing


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh named segment (collision-proof via the module counter)."""
    while True:
        name = f"{_SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_SEQ)}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=max(1, nbytes)
            )
        except FileExistsError:
            # A dead run with our pid number left this name behind; the
            # counter moves on and the orphan reaper will collect it.
            continue


def _close_quietly(segment: shared_memory.SharedMemory) -> None:
    """Close one mapping, tolerating still-exported buffers.

    Some buffer consumers (plain ``memoryview`` slices) do keep exports
    that make ``close()`` raise :class:`BufferError`; numpy views do
    not, so closing normally just unmaps.  Either way the *name* is
    freed by the owner's unlink — this helper only guards the close.
    """
    try:
        segment.close()
    except BufferError:
        pass


class SegmentSet:
    """Owner of every segment one run publishes.

    Use as a context manager around publish + pool execution; ``__exit__``
    closes and unlinks every segment no matter how the block ends.  Both
    operations are idempotent, so an explicit early :meth:`unlink` (or a
    second ``__exit__`` via nesting bugs) is harmless.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._released = False
        self._nbytes = 0

    def publish(self, kind: str, arrays: ColumnArrays) -> ShmHandle:
        """Copy one column family into a fresh segment; returns its handle."""
        if self._released:
            raise RuntimeError("SegmentSet already released")
        encode = _FAMILY_ENCODERS.get(kind)
        if encode is None:
            raise ValueError(f"unknown column family {kind!r}")
        columns = encode(arrays)  # type: ignore[operator]
        specs, nbytes, digest = _pack(kind, columns)
        segment = _create_segment(nbytes)
        self._segments.append(segment)
        self._nbytes += nbytes
        _SHM_BYTES["published"] += nbytes
        for spec, (_, array) in zip(specs, columns):
            if not array.size:
                continue
            dst = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=segment.buf,
                offset=spec.offset,
            )
            dst[...] = array
            del dst
        return ShmHandle(
            segment=segment.name,
            kind=kind,
            specs=specs,
            nbytes=nbytes,
            digest=digest,
        )

    def publish_demands(self, arrays: DemandArrays) -> ShmHandle:
        """Publish a demand stream's columns."""
        return self.publish("demands", arrays)

    def publish_sessions(self, arrays: SessionArrays) -> ShmHandle:
        """Publish a session log's columns."""
        return self.publish("sessions", arrays)

    def publish_flows(self, arrays: FlowArrays) -> ShmHandle:
        """Publish a flow log's columns."""
        return self.publish("flows", arrays)

    def publish_bundle(self, bundle: "TraceBundleLike") -> Dict[str, ShmHandle]:
        """Publish every non-empty family of a :class:`TraceBundle`."""
        handles: Dict[str, ShmHandle] = {}
        if bundle.demands:
            handles["demands"] = self.publish_demands(bundle.demand_columns())
        if bundle.sessions:
            handles["sessions"] = self.publish_sessions(bundle.columns())
        if bundle.flows:
            handles["flows"] = self.publish_flows(bundle.flow_columns())
        return handles

    def release(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        if self._released:
            return
        self._released = True
        _SHM_BYTES["published"] = max(
            0, _SHM_BYTES["published"] - self._nbytes
        )
        self._nbytes = 0
        for segment in self._segments:
            _close_quietly(segment)
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # already reaped or unlinked — nothing left to free
        self._segments.clear()

    def __enter__(self) -> "SegmentSet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class TraceBundleLike:
    """Structural stand-in for :class:`~repro.trace.records.TraceBundle`.

    Declared locally (rather than imported) to keep this module's import
    graph one-way: ``trace`` must never import ``runtime``.
    """

    sessions: Sequence[object]
    flows: Sequence[object]
    demands: Sequence[object]

    def columns(self) -> SessionArrays:  # pragma: no cover - protocol only
        raise NotImplementedError

    def demand_columns(self) -> DemandArrays:  # pragma: no cover
        raise NotImplementedError

    def flow_columns(self) -> FlowArrays:  # pragma: no cover
        raise NotImplementedError


# -------------------------------------------------------------- attaching


@contextmanager
def attach_arrays(handle: ShmHandle) -> Iterator[ColumnArrays]:
    """Attach read-only and yield the handle's column family.

    The yielded arrays are live views of the segment; copy anything that
    must outlive the ``with`` block (see :func:`fetch_demands`).
    """
    decode = _FAMILY_DECODERS.get(handle.kind)
    if decode is None:
        raise ValueError(f"unknown column family {handle.kind!r}")
    segment = shared_memory.SharedMemory(name=handle.segment, create=False)
    views: Optional[Dict[str, np.ndarray]] = None
    try:
        views = _attach_views(handle, segment.buf)
        yield decode(views)
    finally:
        del views
        _close_quietly(segment)


@contextmanager
def attach_demands(handle: ShmHandle) -> Iterator[DemandArrays]:
    """:func:`attach_arrays`, typed for the ``demands`` family."""
    with attach_arrays(handle) as arrays:
        assert isinstance(arrays, DemandArrays)
        yield arrays


@contextmanager
def attach_sessions(handle: ShmHandle) -> Iterator[SessionArrays]:
    """:func:`attach_arrays`, typed for the ``sessions`` family."""
    with attach_arrays(handle) as arrays:
        assert isinstance(arrays, SessionArrays)
        yield arrays


@contextmanager
def attach_flows(handle: ShmHandle) -> Iterator[FlowArrays]:
    """:func:`attach_arrays`, typed for the ``flows`` family."""
    with attach_arrays(handle) as arrays:
        assert isinstance(arrays, FlowArrays)
        yield arrays


def fetch_demands(rows: ShmSlice) -> DemandArrays:
    """A worker's owned copy of its demand rows.

    Attaches, slices ``[start, stop)``, copies the slice out, then
    drops every view and closes the mapping — the returned arrays own
    their memory and survive the segment's unmapping.
    """
    with attach_demands(rows.handle) as arrays:
        return arrays.slice_rows(slice(rows.start, rows.stop)).copy()


# ------------------------------------------------------------- lifecycle


def list_segments() -> List[str]:
    """Names of every ``repro-shm-*`` segment currently in ``/dev/shm``."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if _SEGMENT_PATTERN.match(name))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def reap_orphans() -> List[str]:
    """Quarantine segments whose creator process is dead.

    Returns the reaped names; each one is logged as a warning so an
    orphaned run is visible, never silently swept.  Live runs' segments
    (creator pid still alive — including ours) are untouched.
    """
    reaped: List[str] = []
    for name in list_segments():
        match = _SEGMENT_PATTERN.match(name)
        assert match is not None  # list_segments pre-filtered
        if _pid_alive(int(match.group(1))):
            continue
        try:
            # Direct unlink of the backing file: attaching first would
            # re-register the name with the resource tracker and then
            # warn when we did not create it.
            os.unlink(os.path.join(_SHM_DIR, name))
        except OSError:
            continue  # raced with another reaper, or not ours to remove
        _LOG.warning(
            "reaped orphaned shared-memory segment %s (creator pid dead)", name
        )
        reaped.append(name)
    return reaped


# Window-boundary memory probes include live segment bytes: shm usage is
# the scale knob the ROADMAP's peak-RSS target actually turns on.
obs_metrics.register_memory_source("mem.shm_bytes", published_bytes)
