"""Checkpoint/resume for sharded runs.

A :class:`RunDirectory` owns one directory holding:

* ``meta.json`` — the run ``kind`` (``"replay"`` / ``"sweep"``) and the
  plan fingerprint.  A directory created for one plan refuses to serve
  another: resuming a sweep with different parameters against stale
  results would silently mix runs.
* ``task-<slug>-<crc>.pkl`` — one pickle per completed unit of work,
  written atomically (temp file + ``os.replace``) so a kill mid-write
  never leaves a readable-but-truncated checkpoint.

Resume is implicit: the dispatcher asks :meth:`RunDirectory.has` before
scheduling each task and re-executes only the misses.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import zlib
from pathlib import Path
from typing import Any, List, Sequence, Union

_META_NAME = "meta.json"


def _task_filename(task_id: str) -> str:
    """A filesystem-safe, collision-resistant name for ``task_id``."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", task_id)[:80]
    digest = zlib.crc32(task_id.encode("utf-8"))
    return f"task-{slug}-{digest:08x}.pkl"


class RunDirectory:
    """One run's checkpoint store."""

    def __init__(
        self, path: Union[str, Path], kind: str, fingerprint: str
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.fingerprint = fingerprint
        self.path.mkdir(parents=True, exist_ok=True)
        meta_path = self.path / _META_NAME
        if meta_path.exists():
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if meta.get("kind") != kind or meta.get("fingerprint") != fingerprint:
                raise RuntimeError(
                    f"run directory {self.path} belongs to a different run "
                    f"(found kind={meta.get('kind')!r} "
                    f"fingerprint={meta.get('fingerprint')!r}, expected "
                    f"kind={kind!r} fingerprint={fingerprint!r}); refusing "
                    "to mix checkpoints"
                )
        else:
            meta_path.write_text(
                json.dumps(
                    {"kind": kind, "fingerprint": fingerprint},
                    separators=(",", ":"),
                )
                + "\n",
                encoding="utf-8",
            )

    # ----------------------------------------------------------- task slots

    def _task_path(self, task_id: str) -> Path:
        return self.path / _task_filename(task_id)

    def has(self, task_id: str) -> bool:
        """Whether ``task_id`` already has a completed checkpoint."""
        return self._task_path(task_id).exists()

    def load(self, task_id: str) -> Any:
        """The checkpointed value of ``task_id``."""
        with self._task_path(task_id).open("rb") as handle:
            return pickle.load(handle)

    def store(self, task_id: str, value: Any) -> None:
        """Persist ``value`` for ``task_id`` atomically."""
        target = self._task_path(task_id)
        tmp = target.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, target)

    def completed(self, task_ids: Sequence[str]) -> List[str]:
        """The subset of ``task_ids`` with a checkpoint, in given order."""
        return [task_id for task_id in task_ids if self.has(task_id)]
