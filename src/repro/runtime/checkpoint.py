"""Checkpoint/resume for sharded runs.

A :class:`RunDirectory` owns one directory holding:

* ``meta.json`` — the run ``kind`` (``"replay"`` / ``"sweep"``) and the
  plan fingerprint.  A directory created for one plan refuses to serve
  another: resuming a sweep with different parameters against stale
  results would silently mix runs.
* ``task-<slug>-<crc>.pkl`` — one pickle per completed unit of work,
  written atomically (temp file + ``os.replace``) so a kill mid-write
  never leaves a readable-but-truncated checkpoint.
* ``task-<slug>-<crc>.failed.json`` — a quarantine marker for a task
  that exhausted its retries (see :mod:`repro.runtime.resilience`);
  cleared automatically when the task later checkpoints successfully.

Resume is implicit: the dispatcher asks :meth:`RunDirectory.has` before
scheduling each task and re-executes only the misses.

Corruption never aborts a resume.  A checkpoint that no longer
unpickles (truncated by a crash, written by an incompatible version) is
quarantined — renamed to ``*.corrupt`` with a logged warning — and
treated as a miss, so the task simply re-executes.  A ``meta.json`` that
no longer parses quarantines *everything*: without the plan fingerprint
the directory's checkpoints cannot be trusted to belong to this run.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import re
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import perf

_META_NAME = "meta.json"

_LOG = logging.getLogger(__name__)

#: Exceptions a stale/truncated/foreign pickle can raise on load.  Kept
#: deliberately wide: any of these means "this checkpoint is unusable",
#: and the correct recovery is identical — quarantine and re-execute.
_CORRUPT_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
)


def _task_filename(task_id: str) -> str:
    """A filesystem-safe, collision-resistant name for ``task_id``."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", task_id)[:80]
    digest = zlib.crc32(task_id.encode("utf-8"))
    return f"task-{slug}-{digest:08x}.pkl"


class RunDirectory:
    """One run's checkpoint store."""

    def __init__(
        self, path: Union[str, Path], kind: str, fingerprint: str
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.fingerprint = fingerprint
        self.path.mkdir(parents=True, exist_ok=True)
        meta_path = self.path / _META_NAME
        if meta_path.exists():
            meta = self._read_meta(meta_path)
            if meta is not None:
                if (
                    meta.get("kind") != kind
                    or meta.get("fingerprint") != fingerprint
                ):
                    raise RuntimeError(
                        f"run directory {self.path} belongs to a different "
                        f"run (found kind={meta.get('kind')!r} "
                        f"fingerprint={meta.get('fingerprint')!r}, expected "
                        f"kind={kind!r} fingerprint={fingerprint!r}); "
                        "refusing to mix checkpoints"
                    )
                return
        self._write_meta(meta_path)

    def _read_meta(self, meta_path: Path) -> Optional[Dict[str, Any]]:
        """Parse ``meta.json``; on corruption quarantine the whole run.

        A directory whose meta no longer parses has lost its identity:
        none of its checkpoints can be verified to belong to this plan,
        so every task pickle is quarantined alongside the meta and the
        run re-executes from scratch.
        """
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if not isinstance(meta, dict):
                raise ValueError(f"expected a JSON object, got {type(meta)}")
            return meta
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            quarantined = self._quarantine(meta_path)
            stale = sorted(self.path.glob("task-*.pkl"))
            for task_path in stale:
                self._quarantine(task_path)
            _LOG.warning(
                "run directory %s: meta.json is corrupt (%s); quarantined "
                "it as %s plus %d unverifiable checkpoint(s); the run "
                "re-executes from scratch",
                self.path,
                exc,
                quarantined.name,
                len(stale),
            )
            return None

    def _write_meta(self, meta_path: Path) -> None:
        meta_path.write_text(
            json.dumps(
                {"kind": self.kind, "fingerprint": self.fingerprint},
                separators=(",", ":"),
            )
            + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def _quarantine(path: Path) -> Path:
        """Rename ``path`` out of the way as ``<name>.corrupt``.

        A numbered suffix avoids clobbering the evidence of an earlier
        quarantine of the same file.
        """
        target = path.with_name(path.name + ".corrupt")
        counter = 1
        while target.exists():
            target = path.with_name(f"{path.name}.corrupt{counter}")
            counter += 1
        os.replace(path, target)
        return target

    # ----------------------------------------------------------- task slots

    def _task_path(self, task_id: str) -> Path:
        return self.path / _task_filename(task_id)

    def _failure_path(self, task_id: str) -> Path:
        return self.path / (_task_filename(task_id)[: -len(".pkl")] + ".failed.json")

    def has(self, task_id: str) -> bool:
        """Whether ``task_id`` already has a completed checkpoint."""
        return self._task_path(task_id).exists()

    def try_load(self, task_id: str) -> Tuple[bool, Any]:
        """``(True, value)`` for a readable checkpoint, else ``(False, None)``.

        A checkpoint file that exists but cannot be unpickled is
        quarantined as ``*.corrupt`` (with a logged warning) and reported
        as a miss, so the caller re-executes the task instead of dying on
        someone else's truncated write.
        """
        target = self._task_path(task_id)
        if not target.exists():
            return False, None
        try:
            with perf.timer("checkpoint.load"):
                with target.open("rb") as handle:
                    return True, pickle.load(handle)
        except _CORRUPT_ERRORS as exc:
            quarantined = self._quarantine(target)
            _LOG.warning(
                "checkpoint %s for task %s is corrupt (%s: %s); quarantined "
                "as %s, task re-executes",
                target.name,
                task_id,
                type(exc).__name__,
                exc,
                quarantined.name,
            )
            return False, None

    def load(self, task_id: str) -> Any:
        """The checkpointed value of ``task_id`` (missing/corrupt raises)."""
        hit, value = self.try_load(task_id)
        if not hit:
            raise FileNotFoundError(
                f"no readable checkpoint for task {task_id!r} in {self.path}"
            )
        return value

    def store(self, task_id: str, value: Any) -> None:
        """Persist ``value`` for ``task_id`` atomically.

        Also clears any quarantine marker from an earlier failed run of
        the same task: a successful checkpoint supersedes the failure.
        """
        target = self._task_path(task_id)
        tmp = target.with_suffix(".tmp")
        with perf.timer("checkpoint.store"):
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        failure = self._failure_path(task_id)
        if failure.exists():
            failure.unlink()

    def completed(self, task_ids: Sequence[str]) -> List[str]:
        """The subset of ``task_ids`` with a checkpoint, in given order."""
        return [task_id for task_id in task_ids if self.has(task_id)]

    def stored_slots(self) -> List[str]:
        """Task ids of every stored checkpoint, recovered from filenames.

        Only ids that survive the filename slug unchanged (safe charset,
        at most 80 characters — verified by re-hashing the slug against
        the embedded digest) can be recovered; other checkpoints are
        skipped.  The service supervisor discovers its latest
        ``snapshot-<seq>`` slot this way after a crash, when the writing
        process (and its in-memory slot list) is gone.
        """
        slots: List[str] = []
        for path in sorted(self.path.glob("task-*.pkl")):
            match = re.fullmatch(r"task-(.+)-([0-9a-f]{8})\.pkl", path.name)
            if match is None:
                continue
            slug = match.group(1)
            if f"{zlib.crc32(slug.encode('utf-8')):08x}" == match.group(2):
                slots.append(slug)
        return slots

    # ------------------------------------------------------ failure markers

    def store_failure(self, task_id: str, detail: Dict[str, Any]) -> None:
        """Persist a quarantine marker for a task that exhausted retries."""
        self._failure_path(task_id).write_text(
            json.dumps(
                {"task_id": task_id, **detail},
                separators=(",", ":"),
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    def has_failure(self, task_id: str) -> bool:
        """Whether ``task_id`` carries a quarantine marker."""
        return self._failure_path(task_id).exists()

    def load_failure(self, task_id: str) -> Dict[str, Any]:
        """The quarantine marker of ``task_id``."""
        data = json.loads(
            self._failure_path(task_id).read_text(encoding="utf-8")
        )
        if not isinstance(data, dict):
            raise ValueError(f"malformed failure marker for {task_id!r}")
        return data

    def failed(self, task_ids: Sequence[str]) -> List[str]:
        """The subset of ``task_ids`` with a failure marker, in order."""
        return [task_id for task_id in task_ids if self.has_failure(task_id)]
