"""Task-graph execution for experiment sweeps.

An ablation sweep (and the figure runners) is a loop of independent,
expensive evaluations — retrain with one knob changed, replay, score.
A :class:`SweepPlan` captures that loop as named tasks; :func:`run_sweep`
executes it serially (the reference: same call sequence as the original
loop) or across a process pool, with optional checkpoint/resume.

Task functions must be module-level and picklable by reference; the
stock ones below (:func:`balance_task`, :func:`experiment_task`) rebuild
their workload inside the worker from the experiment config's seed —
deterministic by the workload module's construction — so task *inputs*
stay small even when the artifacts are hundreds of megabytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union
import zlib

from repro import perf
from repro.runtime.checkpoint import RunDirectory
from repro.runtime.resilience import (
    TaskFailure,
    journal_failure,
    run_pool_with_retries,
    serial_with_retries,
)
from repro.runtime.shm import ShmHandle
from repro.runtime.workers import (
    SweepCall,
    SweepOutcome,
    call_with_attachments,
    run_sweep_call,
)

#: A sweep task is just a named call; reuse the worker's picklable form.
SweepTask = SweepCall


def make_task(task_id: str, fn: Callable[..., Any], **kwargs: Any) -> SweepTask:
    """Convenience constructor keeping kwargs in sorted, hashable form."""
    return SweepTask(
        task_id=task_id,
        fn=fn,
        kwargs=tuple(sorted(kwargs.items())),
    )


def with_attachments(task: SweepTask, **handles: ShmHandle) -> SweepTask:
    """A copy of ``task`` that receives shared-memory columns as kwargs.

    Each handle's decoded arrays are passed to the task function under
    the given keyword name — published once by the caller, attached
    zero-copy in every executing process instead of pickled per task.
    The caller's :class:`~repro.runtime.shm.SegmentSet` must stay open
    until the sweep returns.
    """
    return SweepTask(
        task_id=task.task_id,
        fn=task.fn,
        kwargs=task.kwargs,
        attachments=tuple(sorted(handles.items())),
    )


class SweepPlan:
    """An ordered set of uniquely named, independent tasks."""

    def __init__(self, tasks: Sequence[SweepTask]) -> None:
        self.tasks: Tuple[SweepTask, ...] = tuple(tasks)
        seen: Dict[str, SweepTask] = {}
        for task in self.tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate sweep task id {task.task_id!r}")
            seen[task.task_id] = task

    def __len__(self) -> int:
        return len(self.tasks)

    def fingerprint(self) -> str:
        """A stable digest of the plan (task ids + functions + kwargs).

        Attachments are folded in by *content* digest
        (:meth:`~repro.runtime.shm.ShmHandle.fingerprint`), never by
        segment name — names embed the creator pid, and a resumed run
        republished into fresh segments must still match.
        """
        parts = []
        for task in self.tasks:
            part = (
                f"{task.task_id}={task.fn.__module__}.{task.fn.__qualname__}"
                f"({task.kwargs!r})"
            )
            if task.attachments:
                attached = ",".join(
                    f"{name}:{handle.fingerprint()}"
                    for name, handle in task.attachments
                )
                part += f"+[{attached}]"
            parts.append(part)
        digest = zlib.crc32("|".join(parts).encode("utf-8"))
        return f"sweep:{len(self.tasks)}:{digest:08x}"


def run_sweep(
    plan: SweepPlan,
    *,
    engine: str = "auto",
    workers: Optional[int] = None,
    run_dir: Optional[Union[str, Path]] = None,
    max_task_retries: int = 0,
    on_failure: str = "raise",
) -> Dict[str, Any]:
    """Execute every task of ``plan``; values keyed by task id.

    ``engine="serial"`` runs the tasks in order in this process — the
    same call sequence as the loop the plan replaced.  ``"process"``
    fans them out over a pool, merging each worker's perf snapshot into
    the parent registry.  ``"auto"`` picks the pool when the plan holds
    more than one task.

    A failing task is retried ``max_task_retries`` times (on a fresh
    pool, so even a worker killed hard is survivable).  A task that
    exhausts its retries follows ``on_failure``: ``"raise"`` (default)
    re-raises the first original exception after the survivors have
    checkpointed; ``"quarantine"`` journals the failure, writes a
    ``.failed.json`` marker beside the checkpoints and completes the
    sweep with a :class:`~repro.runtime.resilience.TaskFailure` as that
    task's value.
    """
    if engine not in ("auto", "serial", "process"):
        raise ValueError(f"unknown engine {engine!r}")
    _check_on_failure(on_failure)
    if engine == "auto":
        engine = "process" if len(plan) > 1 else "serial"
    if engine == "serial":
        return run_sweep_serial(
            plan, run_dir=run_dir, max_task_retries=max_task_retries,
            on_failure=on_failure,
        )
    return run_sweep_process(
        plan, workers=workers, run_dir=run_dir,
        max_task_retries=max_task_retries, on_failure=on_failure,
    )


def _check_on_failure(on_failure: str) -> None:
    if on_failure not in ("raise", "quarantine"):
        raise ValueError(f"unknown on_failure policy {on_failure!r}")


def _call_task(task: SweepTask) -> Any:
    # Shared helper with the pool worker, so the serial engine resolves
    # shared-memory attachments exactly the way a worker process does.
    return call_with_attachments(task)


def _task_id(task: SweepTask) -> str:
    return task.task_id


def _resolve_failures(
    failures: Dict[str, TaskFailure],
    first_error: Optional[BaseException],
    values: Dict[str, Any],
    store: Optional[RunDirectory],
    on_failure: str,
) -> None:
    """Apply the ``on_failure`` policy to the tasks that exhausted retries.

    Either way the failures are journalled and (when checkpointing)
    marked on disk first — a failed task is never silently dropped.
    """
    if not failures:
        return
    for task_id in sorted(failures):
        failure = failures[task_id]
        journal_failure(failure)
        if store is not None:
            store.store_failure(
                task_id,
                {"error": failure.error, "attempts": failure.attempts},
            )
    if on_failure == "raise":
        assert first_error is not None
        raise first_error
    for task_id in sorted(failures):
        values[task_id] = failures[task_id]


def run_sweep_serial(
    plan: SweepPlan,
    run_dir: Optional[Union[str, Path]] = None,
    max_task_retries: int = 0,
    on_failure: str = "raise",
) -> Dict[str, Any]:
    """The reference: tasks run in plan order, in this process."""
    _check_on_failure(on_failure)
    store = _store(plan, run_dir)
    values: Dict[str, Any] = {}
    pending: List[SweepTask] = []
    for task in plan.tasks:
        hit = False
        value: Any = None
        if store is not None:
            hit, value = store.try_load(task.task_id)
        if hit:
            values[task.task_id] = value
        else:
            pending.append(task)

    def record(task: SweepTask, value: Any) -> None:
        values[task.task_id] = value
        if store is not None:
            store.store(task.task_id, value)

    failures, first_error = serial_with_retries(
        pending, _call_task, _task_id, record, max_retries=max_task_retries
    )
    _resolve_failures(failures, first_error, values, store, on_failure)
    return {task.task_id: values[task.task_id] for task in plan.tasks}


def run_sweep_process(
    plan: SweepPlan,
    workers: Optional[int] = None,
    run_dir: Optional[Union[str, Path]] = None,
    max_task_retries: int = 0,
    on_failure: str = "raise",
) -> Dict[str, Any]:
    """Fan the plan out over a process pool; resumes from ``run_dir``."""
    _check_on_failure(on_failure)
    store = _store(plan, run_dir)
    values: Dict[str, Any] = {}
    pending: List[SweepTask] = []
    for task in plan.tasks:
        hit = False
        value: Any = None
        if store is not None:
            hit, value = store.try_load(task.task_id)
        if hit:
            values[task.task_id] = value
        else:
            pending.append(task)
    if pending:
        snapshots: Dict[str, perf.PerfSnapshot] = {}

        def record(task: SweepTask, outcome: SweepOutcome) -> None:
            values[outcome.task_id] = outcome.value
            snapshots[outcome.task_id] = outcome.perf
            if store is not None:
                store.store(outcome.task_id, outcome.value)

        failures, first_error = run_pool_with_retries(
            pending,
            run_sweep_call,
            _task_id,
            record,
            workers=workers,
            max_retries=max_task_retries,
        )
        _resolve_failures(failures, first_error, values, store, on_failure)
        # Merge worker perf in plan order, so the parent registry's
        # contents do not depend on completion order.  Quarantined tasks
        # have no snapshot to merge.
        for task in pending:
            if task.task_id in snapshots:
                perf.merge(snapshots[task.task_id])
    return {task.task_id: values[task.task_id] for task in plan.tasks}


def _store(
    plan: SweepPlan, run_dir: Optional[Union[str, Path]]
) -> Optional[RunDirectory]:
    if run_dir is None:
        return None
    return RunDirectory(run_dir, kind="sweep", fingerprint=plan.fingerprint())


# --------------------------------------------------------------- task fns
#
# Stock task bodies for the ablation/figure planners.  They must stay
# module-level (picklable by reference) and rebuild everything they need
# from their arguments — the worker starts with cleared caches.


def balance_task(
    config: Any,
    strategy: str,
    training: Any = None,
    replay: Any = None,
    online_only: bool = False,
) -> float:
    """Mean daytime balance of one replay variant.

    ``strategy`` is ``"llf"`` or ``"s3"``; ``training`` overrides the
    S³ training config (forcing a retrain), ``replay`` overrides the
    replay config, and ``online_only`` wraps the S³ selector in the
    ablations' no-batching strategy.
    """
    from repro.experiments.evaluation import mean_daytime_balance
    from repro.experiments.workload import build_workload, trained_model
    from repro.wlan.strategies import LeastLoadedFirst, S3Strategy, SelectionStrategy

    workload = build_workload(config)
    selected: SelectionStrategy
    if strategy == "llf":
        selected = LeastLoadedFirst()
    elif strategy == "s3":
        model = trained_model(config, training)
        if online_only:
            from repro.experiments.ablations import OnlineOnlyS3

            selected = OnlineOnlyS3(model.selector())
        else:
            selected = S3Strategy(model.selector())
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return mean_daytime_balance(workload.replay_test(selected, replay))


def experiment_task(name: str, preset: str) -> str:
    """Run one registered experiment and return its rendered report."""
    from repro.experiments.__main__ import EXPERIMENTS, PRESETS

    result = EXPERIMENTS[name].run(PRESETS[preset])
    return str(result.render())
