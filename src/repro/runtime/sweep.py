"""Task-graph execution for experiment sweeps.

An ablation sweep (and the figure runners) is a loop of independent,
expensive evaluations — retrain with one knob changed, replay, score.
A :class:`SweepPlan` captures that loop as named tasks; :func:`run_sweep`
executes it serially (the reference: same call sequence as the original
loop) or across a process pool, with optional checkpoint/resume.

Task functions must be module-level and picklable by reference; the
stock ones below (:func:`balance_task`, :func:`experiment_task`) rebuild
their workload inside the worker from the experiment config's seed —
deterministic by the workload module's construction — so task *inputs*
stay small even when the artifacts are hundreds of megabytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union
import zlib

from concurrent.futures import Future, ProcessPoolExecutor, as_completed

from repro import perf
from repro.runtime.checkpoint import RunDirectory
from repro.runtime.workers import SweepCall, SweepOutcome, init_worker, run_sweep_call

#: A sweep task is just a named call; reuse the worker's picklable form.
SweepTask = SweepCall


def make_task(task_id: str, fn: Callable[..., Any], **kwargs: Any) -> SweepTask:
    """Convenience constructor keeping kwargs in sorted, hashable form."""
    return SweepTask(
        task_id=task_id,
        fn=fn,
        kwargs=tuple(sorted(kwargs.items())),
    )


class SweepPlan:
    """An ordered set of uniquely named, independent tasks."""

    def __init__(self, tasks: Sequence[SweepTask]) -> None:
        self.tasks: Tuple[SweepTask, ...] = tuple(tasks)
        seen: Dict[str, SweepTask] = {}
        for task in self.tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate sweep task id {task.task_id!r}")
            seen[task.task_id] = task

    def __len__(self) -> int:
        return len(self.tasks)

    def fingerprint(self) -> str:
        """A stable digest of the plan (task ids + functions + kwargs)."""
        parts = [
            f"{task.task_id}={task.fn.__module__}.{task.fn.__qualname__}"
            f"({task.kwargs!r})"
            for task in self.tasks
        ]
        digest = zlib.crc32("|".join(parts).encode("utf-8"))
        return f"sweep:{len(self.tasks)}:{digest:08x}"


def run_sweep(
    plan: SweepPlan,
    *,
    engine: str = "auto",
    workers: Optional[int] = None,
    run_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Execute every task of ``plan``; values keyed by task id.

    ``engine="serial"`` runs the tasks in order in this process — the
    same call sequence as the loop the plan replaced.  ``"process"``
    fans them out over a pool, merging each worker's perf snapshot into
    the parent registry.  ``"auto"`` picks the pool when the plan holds
    more than one task.
    """
    if engine not in ("auto", "serial", "process"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "auto":
        engine = "process" if len(plan) > 1 else "serial"
    if engine == "serial":
        return run_sweep_serial(plan, run_dir=run_dir)
    return run_sweep_process(plan, workers=workers, run_dir=run_dir)


def run_sweep_serial(
    plan: SweepPlan,
    run_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """The reference: tasks run in plan order, in this process."""
    store = _store(plan, run_dir)
    values: Dict[str, Any] = {}
    for task in plan.tasks:
        if store is not None and store.has(task.task_id):
            values[task.task_id] = store.load(task.task_id)
            continue
        value = task.fn(**task.kwargs_dict)
        values[task.task_id] = value
        if store is not None:
            store.store(task.task_id, value)
    return values


def run_sweep_process(
    plan: SweepPlan,
    workers: Optional[int] = None,
    run_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Fan the plan out over a process pool; resumes from ``run_dir``."""
    # Imported here (not at module top) to keep a one-way dependency:
    # engine → workers, sweep → engine-helpers.
    from repro.runtime.engine import resolve_workers

    store = _store(plan, run_dir)
    values: Dict[str, Any] = {}
    pending: List[SweepTask] = []
    for task in plan.tasks:
        if store is not None and store.has(task.task_id):
            values[task.task_id] = store.load(task.task_id)
        else:
            pending.append(task)
    if pending:
        pool_size = resolve_workers(workers, len(pending))
        snapshots: Dict[str, perf.PerfSnapshot] = {}
        with ProcessPoolExecutor(
            max_workers=pool_size, initializer=init_worker
        ) as pool:
            futures: Dict[Future[SweepOutcome], str] = {
                pool.submit(run_sweep_call, task): task.task_id
                for task in pending
            }
            error: Optional[BaseException] = None
            for future in as_completed(futures):
                try:
                    outcome = future.result()
                except Exception as exc:
                    # Keep draining so finished tasks are checkpointed;
                    # a resume then re-runs only the failures.
                    if error is None:
                        error = exc
                    continue
                values[outcome.task_id] = outcome.value
                snapshots[outcome.task_id] = outcome.perf
                if store is not None:
                    store.store(outcome.task_id, outcome.value)
            if error is not None:
                raise error
        # Merge worker perf in plan order, so the parent registry's
        # contents do not depend on completion order.
        for task in pending:
            perf.merge(snapshots[task.task_id])
    return {task.task_id: values[task.task_id] for task in plan.tasks}


def _store(
    plan: SweepPlan, run_dir: Optional[Union[str, Path]]
) -> Optional[RunDirectory]:
    if run_dir is None:
        return None
    return RunDirectory(run_dir, kind="sweep", fingerprint=plan.fingerprint())


# --------------------------------------------------------------- task fns
#
# Stock task bodies for the ablation/figure planners.  They must stay
# module-level (picklable by reference) and rebuild everything they need
# from their arguments — the worker starts with cleared caches.


def balance_task(
    config: Any,
    strategy: str,
    training: Any = None,
    replay: Any = None,
    online_only: bool = False,
) -> float:
    """Mean daytime balance of one replay variant.

    ``strategy`` is ``"llf"`` or ``"s3"``; ``training`` overrides the
    S³ training config (forcing a retrain), ``replay`` overrides the
    replay config, and ``online_only`` wraps the S³ selector in the
    ablations' no-batching strategy.
    """
    from repro.experiments.evaluation import mean_daytime_balance
    from repro.experiments.workload import build_workload, trained_model
    from repro.wlan.strategies import LeastLoadedFirst, S3Strategy, SelectionStrategy

    workload = build_workload(config)
    selected: SelectionStrategy
    if strategy == "llf":
        selected = LeastLoadedFirst()
    elif strategy == "s3":
        model = trained_model(config, training)
        if online_only:
            from repro.experiments.ablations import OnlineOnlyS3

            selected = OnlineOnlyS3(model.selector())
        else:
            selected = S3Strategy(model.selector())
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return mean_daytime_balance(workload.replay_test(selected, replay))


def experiment_task(name: str, preset: str) -> str:
    """Run one registered experiment and return its rendered report."""
    from repro.experiments.__main__ import EXPERIMENTS, PRESETS

    result = EXPERIMENTS[name].run(PRESETS[preset])
    return str(result.render())
