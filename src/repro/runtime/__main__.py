"""Drive the sharded execution engine from the command line.

    python -m repro.runtime replay [paper|small|tiny]
        [--strategy llf|s3] [--engine auto|serial|process]
        [--workers N] [--run-dir PATH] [--journal PATH]

    python -m repro.runtime sweep {terms,threshold,staleness,batching}
        [paper|small|tiny] [--engine auto|serial|process]
        [--workers N] [--run-dir PATH]

``replay`` replays the preset's evaluation demands under one strategy
through :func:`repro.runtime.engine.replay` and prints the result shape
plus the mean daytime balance; ``--journal`` additionally records the
run's structured journal (byte-identical across engines after
``strip_wall``).  ``sweep`` executes one of the ablation planners
through :func:`repro.runtime.sweep.run_sweep` and prints each task's
value.  ``--run-dir`` makes either mode resumable: a re-invocation after
a mid-run kill re-executes only the unfinished shards/tasks.

Fault injection (``replay`` only): ``--fault-seed N`` generates a
deterministic chaos plan (one AP outage by default) from seed ``N`` over
the run's window; ``--fault-plan PATH`` replays a plan saved as JSON
(see :mod:`repro.faults`).  Same seed or same file, same faults — the
journal stays byte-identical across engines.  ``--retries N`` retries
crashed shard workers up to ``N`` times before giving up (both modes).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.options import ENGINES

_USAGE = (
    "usage: python -m repro.runtime replay [preset] [--strategy llf|s3]\n"
    "           [--engine auto|serial|process] [--workers N]\n"
    "           [--run-dir PATH] [--journal PATH]\n"
    "           [--fault-seed N | --fault-plan PATH] [--retries N]\n"
    "       python -m repro.runtime sweep {terms,threshold,staleness,"
    "batching}\n"
    "           [preset] [--engine auto|serial|process] [--workers N]\n"
    "           [--run-dir PATH] [--retries N]"
)

_SWEEPS = ("terms", "threshold", "staleness", "batching")


def _pop_option(args: List[str], flag: str) -> Optional[str]:
    """Remove ``flag VALUE`` from ``args``; None when absent.

    Raises :class:`ValueError` when the flag is present without a value.
    """
    if flag not in args:
        return None
    index = args.index(flag)
    if index + 1 >= len(args):
        raise ValueError(f"{flag} requires a value")
    value = args[index + 1]
    del args[index : index + 2]
    return value


def _parse_common(
    args: List[str],
) -> Tuple[str, Optional[int], Optional[str], int]:
    """Extract ``--engine/--workers/--run-dir/--retries`` in place."""
    engine = _pop_option(args, "--engine") or "auto"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    raw_workers = _pop_option(args, "--workers")
    workers: Optional[int] = None
    if raw_workers is not None:
        workers = int(raw_workers)
        if workers < 1:
            raise ValueError("--workers must be a positive integer")
    run_dir = _pop_option(args, "--run-dir")
    raw_retries = _pop_option(args, "--retries")
    retries = 0
    if raw_retries is not None:
        retries = int(raw_retries)
        if retries < 0:
            raise ValueError("--retries must be a non-negative integer")
    return engine, workers, run_dir, retries


def _pop_preset(args: List[str]) -> str:
    from repro.experiments.__main__ import PRESETS

    if args and args[0] in PRESETS:
        return args.pop(0)
    return "paper"


def _cmd_replay(args: List[str]) -> int:
    from repro import obs
    from repro.experiments.__main__ import PRESETS
    from repro.experiments.evaluation import mean_daytime_balance
    from repro.experiments.workload import build_workload, trained_model
    from repro.runtime.engine import replay
    from repro.wlan.strategies import LeastLoadedFirst, S3Strategy, SelectionStrategy

    engine, workers, run_dir, retries = _parse_common(args)
    journal_path = _pop_option(args, "--journal")
    strategy_name = _pop_option(args, "--strategy") or "llf"
    fault_seed = _pop_option(args, "--fault-seed")
    fault_plan_path = _pop_option(args, "--fault-plan")
    if fault_seed is not None and fault_plan_path is not None:
        raise ValueError("--fault-seed and --fault-plan are mutually exclusive")
    preset_key = _pop_preset(args)
    if args:
        raise ValueError(f"unexpected arguments: {args}")
    config = PRESETS[preset_key]
    workload = build_workload(config)
    strategy: SelectionStrategy
    if strategy_name == "llf":
        strategy = LeastLoadedFirst()
    elif strategy_name == "s3":
        strategy = S3Strategy(trained_model(config).selector())
    else:
        raise ValueError(f"unknown strategy {strategy_name!r}; choose llf or s3")
    fault_plan = _fault_plan(
        fault_seed, fault_plan_path, workload, config.replay
    )
    if journal_path is not None:
        obs.enable(reset=True)
    try:
        result = replay(
            workload.world.layout,
            strategy,
            workload.test_demands,
            config.replay,
            engine=engine,
            workers=workers,
            run_dir=run_dir,
            fault_plan=fault_plan,
            max_task_retries=retries,
        )
        if journal_path is not None:
            meta = {
                "preset": preset_key,
                "strategy": strategy.name,
                "engine": engine,
            }
            if fault_plan is not None:
                meta["faults"] = fault_plan.fingerprint()
            obs.write_journal(journal_path, meta=meta)
    finally:
        if journal_path is not None:
            obs.disable()
    print(
        f"replay preset={preset_key} strategy={strategy.name} "
        f"engine={engine}"
    )
    print(
        f"  sessions={len(result.sessions)} events={result.events_processed} "
        f"controllers={len(result.series)}"
    )
    if fault_plan is not None:
        print(
            f"  faults: {len(fault_plan.events)} event(s), "
            f"{fault_plan.fingerprint()}"
        )
    print(f"  mean daytime balance: {mean_daytime_balance(result):.4f}")
    if journal_path is not None:
        print(f"  journal: {journal_path}")
    return 0


def _fault_plan(
    fault_seed: Optional[str],
    fault_plan_path: Optional[str],
    workload: Any,
    replay_config: Any,
) -> Optional[Any]:
    """Resolve ``--fault-seed``/``--fault-plan`` into a FaultPlan (or None)."""
    if fault_plan_path is not None:
        from repro.faults import FaultPlan

        return FaultPlan.load(fault_plan_path)
    if fault_seed is None:
        return None
    from repro.faults import generate_plan
    from repro.sim.rng import RandomStreams
    from repro.wlan.replay import window_for

    window = window_for(workload.test_demands, replay_config)
    return generate_plan(
        workload.world.layout,
        window.start,
        window.horizon,
        RandomStreams(int(fault_seed)),
    )


def _cmd_sweep(args: List[str]) -> int:
    from repro.experiments import ablations
    from repro.experiments.__main__ import PRESETS
    from repro.runtime.sweep import run_sweep

    if not args or args[0] not in _SWEEPS:
        raise ValueError(f"sweep needs one of {_SWEEPS}")
    sweep_name = args.pop(0)
    engine, workers, run_dir, retries = _parse_common(args)
    preset_key = _pop_preset(args)
    if args:
        raise ValueError(f"unexpected arguments: {args}")
    config = PRESETS[preset_key]
    planners = {
        "terms": ablations.plan_terms,
        "threshold": ablations.plan_threshold,
        "staleness": ablations.plan_staleness,
        "batching": ablations.plan_batching,
    }
    plan = planners[sweep_name](config)
    values: Dict[str, Any] = run_sweep(
        plan, engine=engine, workers=workers, run_dir=run_dir,
        max_task_retries=retries,
    )
    print(
        f"sweep {sweep_name} preset={preset_key} engine={engine} "
        f"tasks={len(plan)}"
    )
    for task in plan.tasks:
        value = values[task.task_id]
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        print(f"  {task.task_id}: {rendered}")
    return 0


def main(argv: Sequence[str]) -> int:
    args = list(argv)
    if not args or args[0] in ("-h", "--help"):
        print(_USAGE)
        return 0 if args else 2
    command = args.pop(0)
    try:
        if command == "replay":
            return _cmd_replay(args)
        if command == "sweep":
            return _cmd_sweep(args)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(f"unknown command {command!r}\n{_USAGE}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
