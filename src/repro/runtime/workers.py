"""Worker-process entry points and lifecycle.

Everything in this module is module-level and picklable by reference, so
it works under any :mod:`multiprocessing` start method (fork or spawn).

Lifecycle contract:

* :func:`init_worker` runs once per pool process.  It clears the
  :mod:`repro.experiments.workload` caches (the module's fork-safety
  contract: workers rebuild, never inherit), resets the perf registry
  and resets + disables the obs tracer, so nothing recorded in the
  parent before the fork leaks into a worker's output.
* Each task function resets the worker's perf registry, does its work,
  and ships a :class:`~repro.perf.PerfSnapshot` (plus, for replay
  shards, the tracer's record fragment) back to the parent, which merges
  them.  Per-task reset means a pool process serving many tasks never
  double-counts.

RNG contract: a worker never draws from a root-seeded
:class:`~repro.sim.rng.RandomStreams` directly — per-shard streams are
derived via ``child(shard_stream_name(controller_id))`` inside the
replay engine, which is what makes worker draws bit-identical to the
serial engine's (enforced by the ``fork-safe-rng`` lint rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import perf
from repro.faults.model import FaultPlan
from repro.obs.tracer import TracedRecord, get_tracer
from repro.perf import PerfSnapshot
from repro.runtime.shards import ReplayShard
from repro.trace.social import CampusLayout
from repro.wlan.replay import ReplayConfig, ReplayEngine, ReplayResult, ReplayWindow
from repro.wlan.strategies import SelectionStrategy


@dataclass(frozen=True)
class ShardTask:
    """One replay shard, fully self-contained and picklable."""

    shard: ReplayShard
    layout: CampusLayout
    strategy: SelectionStrategy
    config: ReplayConfig
    window: ReplayWindow
    #: Whether the worker should trace (journal fragments are collected
    #: only when the parent's tracer is enabled).
    trace: bool
    #: The run's fault plan (the worker fires the plan's events on its
    #: own controllers, exactly as the serial engine would).
    fault_plan: Optional[FaultPlan] = None


@dataclass
class ShardOutcome:
    """What one replay shard sends back for the deterministic merge."""

    shard_id: str
    controller_id: str
    result: ReplayResult
    final_now: float
    sampler_ticks: int
    poller_ticks: int
    #: The worker tracer's records (flush spans, decisions, samples and
    #: the worker's own ``sim.run`` span); empty when not tracing.
    records: List[TracedRecord]
    perf: PerfSnapshot


def init_worker() -> None:
    """Pool initializer: a worker rebuilds, never inherits."""
    # Imported here so replay-only pools don't pay for the experiments
    # package; the clear is the workload module's fork-safety contract.
    from repro.experiments.workload import clear_caches

    clear_caches()
    perf.reset()
    tracer = get_tracer()
    tracer.reset()
    tracer.enabled = False


def run_replay_shard(task: ShardTask) -> ShardOutcome:
    """Execute one shard in this process and package the outcome."""
    tracer = get_tracer()
    tracer.reset()
    tracer.enabled = task.trace
    perf.reset()
    engine = ReplayEngine(
        task.layout, task.strategy, task.config, fault_plan=task.fault_plan
    )
    run = engine.run_window(
        list(task.shard.demands),
        task.window,
        controllers=(task.shard.controller_id,),
    )
    records = list(tracer.records)
    tracer.reset()
    tracer.enabled = False
    return ShardOutcome(
        shard_id=task.shard.shard_id,
        controller_id=task.shard.controller_id,
        result=run.result,
        final_now=run.final_now,
        sampler_ticks=run.sampler_ticks,
        poller_ticks=run.poller_ticks,
        records=records,
        perf=perf.snapshot(),
    )


@dataclass(frozen=True)
class SweepCall:
    """One sweep task: a module-level function plus keyword arguments."""

    task_id: str
    fn: Callable[..., Any]
    kwargs: Tuple[Tuple[str, Any], ...]

    @property
    def kwargs_dict(self) -> Dict[str, Any]:
        """The kwargs as a dict (stored as a tuple to stay hashable)."""
        return dict(self.kwargs)


@dataclass
class SweepOutcome:
    """One sweep task's value plus the worker's perf snapshot."""

    task_id: str
    value: Any
    perf: PerfSnapshot


def run_sweep_call(call: SweepCall) -> SweepOutcome:
    """Execute one sweep task in this process and package the outcome."""
    perf.reset()
    value = call.fn(**call.kwargs_dict)
    return SweepOutcome(task_id=call.task_id, value=value, perf=perf.snapshot())
