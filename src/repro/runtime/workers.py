"""Worker-process entry points and lifecycle.

Everything in this module is module-level and picklable by reference, so
it works under any :mod:`multiprocessing` start method (fork or spawn).

Lifecycle contract:

* :func:`init_worker` runs once per pool process.  It clears the
  :mod:`repro.experiments.workload` caches (the module's fork-safety
  contract: workers rebuild, never inherit), resets the perf registry
  and resets + disables the obs tracer, so nothing recorded in the
  parent before the fork leaks into a worker's output.
* Each task function resets the worker's perf registry, does its work,
  and ships a :class:`~repro.perf.PerfSnapshot` (plus, for replay
  shards, the tracer's record fragment) back to the parent, which merges
  them.  Per-task reset means a pool process serving many tasks never
  double-counts.

Transport contract: demand rows reach a replay worker through the
zero-copy shared-memory path — a :class:`ShardTask` carries only a
:class:`~repro.runtime.shm.ShmSlice` (segment name + row range, a few
hundred bytes of pickle) and the worker copies its rows out with
:func:`~repro.runtime.shm.fetch_demands`.  Results travel back as
:class:`SessionColumns` — flat numpy columns plus small id tables —
instead of per-object pickled :class:`~repro.trace.records.SessionRecord`
lists.  The ``no-pickled-columns`` lint rule enforces that no
heavyweight columnar container crosses the pool boundary by value.

RNG contract: a worker never draws from a root-seeded
:class:`~repro.sim.rng.RandomStreams` directly — per-shard streams are
derived via ``child(shard_stream_name(controller_id))`` inside the
replay engine, which is what makes worker draws bit-identical to the
serial engine's (enforced by the ``fork-safe-rng`` lint rule).
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.faults.model import FaultPlan
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsSnapshot
from repro.obs.tracer import TracedRecord, get_tracer
from repro.perf import PerfSnapshot
from repro.runtime.shm import ShmHandle, ShmSlice, attach_arrays, fetch_demands
from repro.trace.records import SessionRecord
from repro.trace.social import CampusLayout
from repro.wlan.metrics import ControllerSeries
from repro.wlan.replay import ReplayConfig, ReplayEngine, ReplayWindow
from repro.wlan.strategies import SelectionStrategy


@dataclass(frozen=True)
class ShardTask:
    """One replay shard (or worker group of shards), picklable small.

    The demand payload stays in shared memory; ``demands`` only names
    the published segment and this task's row range.
    """

    shard_id: str
    controller_id: str
    demands: ShmSlice
    layout: CampusLayout
    strategy: SelectionStrategy
    config: ReplayConfig
    window: ReplayWindow
    #: Whether the worker should trace (journal fragments are collected
    #: only when the parent's tracer is enabled).
    trace: bool
    #: Whether the worker should collect windowed metrics, and on what
    #: sim-time window — mirrors the parent registry's settings so the
    #: merged series line up window for window.
    metrics: bool = False
    metrics_window: float = obs_metrics.DEFAULT_WINDOW_SECONDS
    #: All controllers this task replays, in plan order.  The engine
    #: groups one task per pool worker so a worker runs its whole
    #: controller group in a single simulator pass — one periodic grid
    #: for the group instead of one per controller.  Empty means just
    #: ``controller_id`` (single-shard tasks, and older pickles).
    controller_ids: Tuple[str, ...] = ()
    #: The run's fault plan (the worker fires the plan's events on its
    #: own controllers, exactly as the serial engine would).
    fault_plan: Optional[FaultPlan] = None


@dataclass
class SessionColumns:
    """A shard's session output as flat columns — the cheap return pickle.

    Codes index sorted id tables (code order == lexicographic id order,
    like :class:`~repro.trace.columnar.SessionArrays`); the merge layer
    unions tables across shards with array ops instead of unpickling
    thousands of :class:`~repro.trace.records.SessionRecord` objects.
    """

    user_ids: List[str]
    ap_ids: List[str]
    controller_ids: List[str]
    user: np.ndarray
    ap: np.ndarray
    controller: np.ndarray
    connect: np.ndarray
    disconnect: np.ndarray
    bytes_total: np.ndarray

    @classmethod
    def from_records(cls, records: Sequence[SessionRecord]) -> "SessionColumns":
        """Transpose one shard's session list into columns.

        ``np.unique(..., return_inverse=True)`` builds each sorted id
        table and its code column in one C pass — the table is sorted,
        so code order is lexicographic id order, same as the dict-based
        encoding it replaces.
        """
        n = len(records)
        user_table, user = np.unique(
            np.array([r.user_id for r in records], dtype=object),
            return_inverse=True,
        )
        ap_table, ap = np.unique(
            np.array([r.ap_id for r in records], dtype=object),
            return_inverse=True,
        )
        controller_table, controller = np.unique(
            np.array([r.controller_id for r in records], dtype=object),
            return_inverse=True,
        )
        connect = np.fromiter(
            (r.connect for r in records), dtype=np.float64, count=n
        )
        disconnect = np.fromiter(
            (r.disconnect for r in records), dtype=np.float64, count=n
        )
        bytes_total = np.fromiter(
            (r.bytes_total for r in records), dtype=np.float64, count=n
        )
        return cls(
            user_table.tolist(),
            ap_table.tolist(),
            controller_table.tolist(),
            user.astype(np.int64, copy=False),
            ap.astype(np.int64, copy=False),
            controller.astype(np.int64, copy=False),
            connect,
            disconnect,
            bytes_total,
        )

    def to_records(self) -> List[SessionRecord]:
        """Materialize the columns back into records, row order preserved.

        Batch-decodes the columns with ``tolist`` and builds records via
        ``__new__`` plus a direct ``__dict__`` assignment, skipping
        ``__post_init__`` — every row was validated when the worker's
        engine constructed the original record.
        """
        user_ids = self.user_ids
        ap_ids = self.ap_ids
        controller_ids = self.controller_ids
        user = self.user.tolist()
        ap = self.ap.tolist()
        controller = self.controller.tolist()
        connect = self.connect.tolist()
        disconnect = self.disconnect.tolist()
        bytes_total = self.bytes_total.tolist()
        new = SessionRecord.__new__
        out: List[SessionRecord] = []
        append = out.append
        for i in range(len(user)):
            record = new(SessionRecord)
            record.__dict__.update({
                "user_id": user_ids[user[i]],
                "ap_id": ap_ids[ap[i]],
                "controller_id": controller_ids[controller[i]],
                "connect": connect[i],
                "disconnect": disconnect[i],
                "bytes_total": bytes_total[i],
            })
            append(record)
        return out

    def __len__(self) -> int:
        return int(self.user.shape[0])


@dataclass
class ShardOutcome:
    """What one replay shard sends back for the deterministic merge."""

    shard_id: str
    controller_id: str
    #: The shard's sessions in the engine's output order (sorted by
    #: ``(connect, user_id)``), as compact columns.
    sessions: SessionColumns
    #: The shard's own controller series (disjoint across shards).
    series: Dict[str, ControllerSeries]
    events_processed: int
    final_now: float
    sampler_ticks: int
    poller_ticks: int
    #: The worker tracer's records (flush spans, decisions, samples and
    #: the worker's own ``sim.run`` span); empty when not tracing.
    records: List[TracedRecord]
    perf: PerfSnapshot
    #: The worker's windowed-metrics snapshot; empty when metrics were
    #: off.  Merged parent-side exactly like the journal fragments.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)


def init_worker() -> None:
    """Pool initializer: a worker rebuilds, never inherits."""
    # Imported here so replay-only pools don't pay for the experiments
    # package; the clear is the workload module's fork-safety contract.
    from repro.experiments.workload import clear_caches

    clear_caches()
    perf.reset()
    tracer = get_tracer()
    tracer.reset()
    tracer.enabled = False
    registry = obs_metrics.get_metrics()
    registry.reset()
    registry.enabled = False


def run_replay_shard(task: ShardTask) -> ShardOutcome:
    """Execute one shard in this process and package the outcome."""
    tracer = get_tracer()
    tracer.reset()
    tracer.enabled = task.trace
    perf.reset()
    registry = obs_metrics.get_metrics()
    registry.reset()
    registry.window_seconds = task.metrics_window
    registry.enabled = task.metrics
    with perf.timer("shm.attach"):
        demands = fetch_demands(task.demands)
    engine = ReplayEngine(
        task.layout, task.strategy, task.config, fault_plan=task.fault_plan
    )
    # The worker-side wall clock: the parent's ``replay.run.*`` timer
    # minus the merged ``shard.run`` totals is the transport + pool
    # overhead, directly readable off a perf snapshot.
    with perf.timer("shard.run"):
        run = engine.run_window(
            demands,
            task.window,
            controllers=task.controller_ids or (task.controller_id,),
        )
    records = list(tracer.records)
    tracer.reset()
    tracer.enabled = False
    if task.metrics:
        # The shard's wall latency, as a host-scoped histogram anchored
        # at the shard window's start.  Read off the perf timer rather
        # than a clock: the wall-time funnel stays in repro.perf.
        obs_metrics.observe(
            "runtime.task_seconds",
            perf.PERF.total("shard.run"),
            task.window.start,
        )
    metrics_snapshot = registry.snapshot() if task.metrics else MetricsSnapshot()
    registry.reset()
    registry.enabled = False
    return ShardOutcome(
        shard_id=task.shard_id,
        controller_id=task.controller_id,
        sessions=SessionColumns.from_records(run.result.sessions),
        series=dict(run.result.series),
        events_processed=run.result.events_processed,
        final_now=run.final_now,
        sampler_ticks=run.sampler_ticks,
        poller_ticks=run.poller_ticks,
        records=records,
        perf=perf.snapshot(),
        metrics=metrics_snapshot,
    )


@dataclass(frozen=True)
class SweepCall:
    """One sweep task: a module-level function plus keyword arguments.

    ``attachments`` maps extra keyword names to published shared-memory
    handles; the executing process attaches each one and passes the
    decoded columnar arrays under that name — the zero-copy alternative
    to pickling a :class:`~repro.trace.columnar.SessionArrays` into
    ``kwargs``.
    """

    task_id: str
    fn: Callable[..., Any]
    kwargs: Tuple[Tuple[str, Any], ...]
    attachments: Tuple[Tuple[str, ShmHandle], ...] = field(default=())

    @property
    def kwargs_dict(self) -> Dict[str, Any]:
        """The kwargs as a dict (stored as a tuple to stay hashable)."""
        return dict(self.kwargs)


@dataclass
class SweepOutcome:
    """One sweep task's value plus the worker's perf snapshot."""

    task_id: str
    value: Any
    perf: PerfSnapshot


def call_with_attachments(call: SweepCall) -> Any:
    """Invoke one sweep call, materializing its shared-memory kwargs.

    Attached arrays are valid only for the duration of the call — a
    task function that wants to return column data must copy it out.
    """
    kwargs = call.kwargs_dict
    if not call.attachments:
        return call.fn(**kwargs)
    with ExitStack() as stack:
        with perf.timer("shm.attach"):
            for name, handle in call.attachments:
                kwargs[name] = stack.enter_context(attach_arrays(handle))
        try:
            return call.fn(**kwargs)
        finally:
            # Drop our references to the attached views before the stack
            # closes the mappings.
            kwargs.clear()


def run_sweep_call(call: SweepCall) -> SweepOutcome:
    """Execute one sweep task in this process and package the outcome."""
    perf.reset()
    value = call_with_attachments(call)
    return SweepOutcome(task_id=call.task_id, value=value, perf=perf.snapshot())
