"""Bounded retry and quarantine for pool-executed task graphs.

One failure policy shared by the replay dispatcher
(:mod:`repro.runtime.engine`) and the sweep executor
(:mod:`repro.runtime.sweep`):

* a task that raises — or whose worker process dies outright, surfacing
  as ``BrokenProcessPool`` for everything in flight — is retried up to
  ``max_retries`` times on a **fresh** pool (a broken executor cannot be
  reused);
* a task that exhausts its retries becomes a :class:`TaskFailure`: the
  caller decides whether to re-raise the first original exception
  (``on_failure="raise"``, the default everywhere) or to quarantine the
  failure — journal it as a ``worker-failure`` fault record, persist a
  ``*.failed.json`` marker next to the checkpoints, and let the rest of
  the run complete.

Nothing here is silent: every failed attempt logs a warning, and a
quarantined task is visible in the run journal, the run directory and
the returned values.
"""

from __future__ import annotations

import logging
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.obs.records import FaultRecord
from repro.obs.tracer import get_tracer
from repro.runtime.workers import init_worker

_LOG = logging.getLogger(__name__)

TaskT = TypeVar("TaskT")
OutcomeT = TypeVar("OutcomeT")


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retries.

    ``error`` is ``"ExcType: message"`` of the *last* attempt;
    ``attempts`` counts every execution (first try included).
    """

    task_id: str
    error: str
    attempts: int


def failure_fault_record(failure: TaskFailure) -> FaultRecord:
    """The journal record of one quarantined task.

    ``sim_time`` is ``None``: a worker failure is a wall-clock event of
    the host, not of the simulated campus.
    """
    return FaultRecord(
        sim_time=None,
        kind="worker-failure",
        target=failure.task_id,
        controller_id=None,
        detail={"attempts": failure.attempts, "error": failure.error},
    )


def journal_failure(failure: TaskFailure) -> None:
    """Log and (when tracing) journal one quarantined task."""
    _LOG.warning(
        "task %s failed %d attempt(s), quarantined: %s",
        failure.task_id,
        failure.attempts,
        failure.error,
    )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.fault(failure_fault_record(failure))


def run_pool_with_retries(
    tasks: Sequence[TaskT],
    runner: Callable[[TaskT], OutcomeT],
    task_id_of: Callable[[TaskT], str],
    on_result: Callable[[TaskT, OutcomeT], None],
    workers: Optional[int] = None,
    max_retries: int = 0,
) -> Tuple[Dict[str, TaskFailure], Optional[BaseException]]:
    """Execute ``tasks`` on process pools with bounded per-task retries.

    ``on_result`` is invoked in the parent, in completion order, for each
    success (the caller checkpoints and merges there).  Returns the
    tasks that exhausted their retries, keyed by id, plus the *first*
    exception observed — callers running ``on_failure="raise"`` re-raise
    exactly that object, preserving the original type and message.

    Each retry round gets a fresh :class:`ProcessPoolExecutor`: a worker
    killed hard (``os._exit``, OOM, SIGKILL) breaks the pool for every
    in-flight future, so survivors of the round are retried on a new one.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    # Imported lazily to keep the one-way dependency engine -> resilience.
    from repro.runtime.engine import resolve_workers

    pending: List[TaskT] = list(tasks)
    attempts: Dict[str, int] = {}
    failures: Dict[str, TaskFailure] = {}
    first_error: Optional[BaseException] = None
    while pending:
        pool_size = resolve_workers(workers, len(pending))
        retry: List[TaskT] = []
        with ProcessPoolExecutor(
            max_workers=pool_size, initializer=init_worker
        ) as pool:
            futures: Dict[Future[OutcomeT], TaskT] = {
                pool.submit(runner, task): task for task in pending
            }
            for future in as_completed(futures):
                task = futures[future]
                task_id = task_id_of(task)
                try:
                    outcome = future.result()
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                    count = attempts.get(task_id, 0) + 1
                    attempts[task_id] = count
                    error = f"{type(exc).__name__}: {exc}"
                    if count <= max_retries:
                        _LOG.warning(
                            "task %s failed attempt %d/%d, retrying: %s",
                            task_id,
                            count,
                            max_retries + 1,
                            error,
                        )
                        retry.append(task)
                    else:
                        failures[task_id] = TaskFailure(
                            task_id=task_id, error=error, attempts=count
                        )
                    continue
                on_result(task, outcome)
        pending = retry
    return failures, first_error


def serial_with_retries(
    tasks: Sequence[TaskT],
    runner: Callable[[TaskT], Any],
    task_id_of: Callable[[TaskT], str],
    on_result: Callable[[TaskT, Any], None],
    max_retries: int = 0,
) -> Tuple[Dict[str, TaskFailure], Optional[BaseException]]:
    """The in-process mirror of :func:`run_pool_with_retries`.

    Same retry accounting and return shape, so the serial and process
    sweep engines expose identical failure semantics.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    failures: Dict[str, TaskFailure] = {}
    first_error: Optional[BaseException] = None
    for task in tasks:
        task_id = task_id_of(task)
        for attempt in range(1, max_retries + 2):
            try:
                outcome = runner(task)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= max_retries:
                    _LOG.warning(
                        "task %s failed attempt %d/%d, retrying: %s",
                        task_id,
                        attempt,
                        max_retries + 1,
                        error,
                    )
                    continue
                failures[task_id] = TaskFailure(
                    task_id=task_id, error=error, attempts=attempt
                )
                break
            on_result(task, outcome)
            break
    return failures, first_error
