"""Bounded retry and quarantine for pool-executed task graphs.

One failure policy shared by the replay dispatcher
(:mod:`repro.runtime.engine`) and the sweep executor
(:mod:`repro.runtime.sweep`):

* a task that raises — or whose worker process dies outright, surfacing
  as ``BrokenProcessPool`` for everything in flight — is retried up to
  ``max_retries`` times on a **fresh** pool (a broken executor cannot be
  reused);
* a task that exhausts its retries becomes a :class:`TaskFailure`: the
  caller decides whether to re-raise the first original exception
  (``on_failure="raise"``, the default everywhere) or to quarantine the
  failure — journal it as a ``worker-failure`` fault record, persist a
  ``*.failed.json`` marker next to the checkpoints, and let the rest of
  the run complete.

Nothing here is silent: every failed attempt logs a warning, and a
quarantined task is visible in the run journal, the run directory and
the returned values.

Pool reuse: starting a :class:`ProcessPoolExecutor` costs tens of
milliseconds to seconds (workers are spawned from clean interpreters,
see :func:`_acquire_pool`) — enough to dominate small parallel replays.
A round that
completes **fully clean** (every task succeeded, no exception escaped)
returns its pool to a per-size cache for the next call to reuse; any
failure discards the pool, preserving the fresh-pool-per-retry-round
semantics the recovery path depends on (a broken executor cannot be
reused, and a retried task must not see state a crashed sibling left in
a worker).  :func:`shutdown_pools` drains the cache — it runs at
interpreter exit, and tests call it for isolation (a cached pool's
workers were started under an earlier test's environment).
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.obs import metrics as obs_metrics
from repro.obs.records import FaultRecord
from repro.obs.tracer import get_tracer
from repro.runtime.workers import init_worker

_LOG = logging.getLogger(__name__)

#: Idle, known-clean pools keyed by worker count.
_POOL_CACHE: Dict[int, ProcessPoolExecutor] = {}


def _acquire_pool(size: int) -> ProcessPoolExecutor:
    """A cached pool of ``size`` workers, or a fresh one.

    Workers are *spawned*, not forked, on every platform.  A forked
    worker inherits the parent's full heap image copy-on-write: its
    first write to any inherited page takes a COW fault, and every
    cyclic-GC pass walks the parent's objects — measurably slowing the
    replay loop itself (~5% on the benchmark campus) on top of the
    fork-inheritance hazards ``init_worker`` exists to defuse.  A
    spawned worker starts from a clean interpreter: its heap holds only
    what the task unpickles.  The higher start-up cost (a fresh
    interpreter imports :mod:`repro`) is paid once per pool and
    amortized by the pool cache.
    """
    pool = _POOL_CACHE.pop(size, None)
    if pool is not None:
        return pool
    return ProcessPoolExecutor(
        max_workers=size,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=init_worker,
    )


def _release_pool(size: int, pool: ProcessPoolExecutor) -> None:
    """Cache one clean pool for reuse (or shut it down if the slot is full)."""
    if size in _POOL_CACHE:
        pool.shutdown(wait=True)
    else:
        _POOL_CACHE[size] = pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool (idempotent)."""
    while _POOL_CACHE:
        _, pool = _POOL_CACHE.popitem()
        pool.shutdown(wait=True)


atexit.register(shutdown_pools)

TaskT = TypeVar("TaskT")
OutcomeT = TypeVar("OutcomeT")


def _run_task_chunk(
    runner: Callable[[Any], Any], tasks: Sequence[Any]
) -> List[Tuple[bool, Any]]:
    """Worker-side chunk body: run tasks sequentially, isolate soft failures.

    Returns one ``(ok, value)`` pair per task — the outcome on success,
    the exception object on failure — so a raising task does not abort
    its chunk-mates and the parent keeps per-task retry accounting.  A
    *hard* death (``os._exit``, OOM, SIGKILL) still takes the whole
    chunk down with the worker, exactly as it takes down every in-flight
    future of a per-task pool.
    """
    results: List[Tuple[bool, Any]] = []
    for task in tasks:
        try:
            results.append((True, runner(task)))
        except Exception as exc:
            results.append((False, exc))
    return results


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retries.

    ``error`` is ``"ExcType: message"`` of the *last* attempt;
    ``attempts`` counts every execution (first try included).
    """

    task_id: str
    error: str
    attempts: int


def failure_fault_record(failure: TaskFailure) -> FaultRecord:
    """The journal record of one quarantined task.

    ``sim_time`` is ``None``: a worker failure is a wall-clock event of
    the host, not of the simulated campus.
    """
    return FaultRecord(
        sim_time=None,
        kind="worker-failure",
        target=failure.task_id,
        controller_id=None,
        detail={"attempts": failure.attempts, "error": failure.error},
    )


def journal_failure(failure: TaskFailure) -> None:
    """Log and (when tracing) journal one quarantined task."""
    _LOG.warning(
        "task %s failed %d attempt(s), quarantined: %s",
        failure.task_id,
        failure.attempts,
        failure.error,
    )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.fault(failure_fault_record(failure))


def run_pool_with_retries(
    tasks: Sequence[TaskT],
    runner: Callable[[TaskT], OutcomeT],
    task_id_of: Callable[[TaskT], str],
    on_result: Callable[[TaskT, OutcomeT], None],
    workers: Optional[int] = None,
    max_retries: int = 0,
    chunk_size: int = 1,
) -> Tuple[Dict[str, TaskFailure], Optional[BaseException]]:
    """Execute ``tasks`` on process pools with bounded per-task retries.

    ``on_result`` is invoked in the parent, in completion order, for each
    success (the caller checkpoints and merges there).  Returns the
    tasks that exhausted their retries, keyed by id, plus the *first*
    exception observed — callers running ``on_failure="raise"`` re-raise
    exactly that object, preserving the original type and message.

    Each retry round gets a fresh :class:`ProcessPoolExecutor`: a worker
    killed hard (``os._exit``, OOM, SIGKILL) breaks the pool for every
    in-flight future, so survivors of the round are retried on a new one.

    ``chunk_size`` groups that many tasks into one submission
    (:func:`_run_task_chunk`), cutting pool round-trips when tasks are
    few and short — each handoff costs wakeups through the executor's
    management thread, which dominates small replays.  Failure semantics
    are unchanged: soft failures are caught per-task inside the chunk,
    and a hard-killed worker burns one attempt for every task of its
    chunk — just as it breaks every in-flight future today.  The one
    trade: a chunk's finished outcomes ride home with the chunk, so a
    crash mid-chunk re-runs its already-completed tasks on retry.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    # Imported lazily to keep the one-way dependency engine -> resilience.
    from repro.runtime.engine import resolve_workers

    pending: List[TaskT] = list(tasks)
    attempts: Dict[str, int] = {}
    failures: Dict[str, TaskFailure] = {}
    first_error: Optional[BaseException] = None
    while pending:
        # Host-scoped backpressure gauge: how deep the queue was when
        # each round opened (retry rounds overwrite within the window).
        obs_metrics.set_gauge("runtime.pool_pending", float(len(pending)))
        pool_size = resolve_workers(workers, len(pending))
        retry: List[TaskT] = []
        pool = _acquire_pool(pool_size)
        round_clean = True
        try:
            chunks = [
                list(pending[i : i + chunk_size])
                for i in range(0, len(pending), chunk_size)
            ]
            futures: Dict[Future[List[Tuple[bool, Any]]], List[TaskT]] = {
                pool.submit(_run_task_chunk, runner, chunk): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    items = future.result()
                except Exception as exc:
                    # The chunk died with its worker: every task in it
                    # burns one attempt, like every in-flight future of
                    # a broken per-task pool.
                    items = [(False, exc)] * len(chunk)
                for task, (ok, value) in zip(chunk, items):
                    if ok:
                        on_result(task, value)
                        continue
                    task_id = task_id_of(task)
                    round_clean = False
                    if first_error is None:
                        first_error = value
                    count = attempts.get(task_id, 0) + 1
                    attempts[task_id] = count
                    error = f"{type(value).__name__}: {value}"
                    if count <= max_retries:
                        _LOG.warning(
                            "task %s failed attempt %d/%d, retrying: %s",
                            task_id,
                            count,
                            max_retries + 1,
                            error,
                        )
                        obs_metrics.inc("runtime.task_retries")
                        retry.append(task)
                    else:
                        failures[task_id] = TaskFailure(
                            task_id=task_id, error=error, attempts=count
                        )
        except BaseException:
            round_clean = False
            raise
        finally:
            if round_clean:
                _release_pool(pool_size, pool)
            else:
                # A failed round's pool may be broken, and even a merely
                # task-failed one could carry poisoned worker state —
                # discard without waiting, the next round starts fresh.
                pool.shutdown(wait=False, cancel_futures=True)
        pending = retry
    return failures, first_error


def serial_with_retries(
    tasks: Sequence[TaskT],
    runner: Callable[[TaskT], Any],
    task_id_of: Callable[[TaskT], str],
    on_result: Callable[[TaskT, Any], None],
    max_retries: int = 0,
) -> Tuple[Dict[str, TaskFailure], Optional[BaseException]]:
    """The in-process mirror of :func:`run_pool_with_retries`.

    Same retry accounting and return shape, so the serial and process
    sweep engines expose identical failure semantics.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    failures: Dict[str, TaskFailure] = {}
    first_error: Optional[BaseException] = None
    for task in tasks:
        task_id = task_id_of(task)
        for attempt in range(1, max_retries + 2):
            try:
                outcome = runner(task)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= max_retries:
                    _LOG.warning(
                        "task %s failed attempt %d/%d, retrying: %s",
                        task_id,
                        attempt,
                        max_retries + 1,
                        error,
                    )
                    obs_metrics.inc("runtime.task_retries")
                    continue
                failures[task_id] = TaskFailure(
                    task_id=task_id, error=error, attempts=attempt
                )
                break
            on_result(task, outcome)
            break
    return failures, first_error
