"""Command-line interface for the full S³ workflow.

    python -m repro generate --out trace/ --preset small
    python -m repro collect  --trace trace/ --out collected/ --train-days 9
    python -m repro train    --trace collected/ --model model.pkl
    python -m repro evaluate --trace trace/ --model model.pkl --from-day 9
    python -m repro experiments small fig12

`generate` writes a demand trace (demands.csv, flows.csv, layout.json);
`collect` replays the demands under a production strategy and writes the
resulting session log next to the inputs; `train` fits an S³ model and
pickles it; `evaluate` replays a span of demands under several strategies
and prints the balance comparison.
"""

from __future__ import annotations

import argparse
import pickle
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.pipeline import S3Model, train_s3
from repro.sim.rng import RandomStreams
from repro.sim.timeline import DAY
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.io import (
    load_bundle,
    read_layout,
    save_bundle,
    write_layout,
    write_sessions,
)
from repro.trace.records import TraceBundle
from repro.trace.social import WorldConfig, build_world
from repro.wlan.replay import ReplayEngine
from repro.wlan.strategies import (
    LeastLoadedFirst,
    RandomSelection,
    S3Strategy,
    SelectionStrategy,
    StrongestSignal,
)
from repro.wlan.baselines import BestHeadroom, CellBreathing

WORLD_PRESETS = {
    "tiny": WorldConfig(n_buildings=1, aps_per_building=3, n_users=48, n_groups=6),
    "small": WorldConfig(n_buildings=2, aps_per_building=4, n_users=150, n_groups=18),
    "paper": WorldConfig(
        n_buildings=4,
        aps_per_building=5,
        n_users=700,
        n_groups=70,
        group_size_mean=14.0,
        solo_rate=0.5,
        loose_group_fraction=0.6,
    ),
}


def make_strategy(name: str, model: Optional[S3Model] = None) -> SelectionStrategy:
    """Strategy factory for CLI arguments."""
    if name == "llf":
        return LeastLoadedFirst()
    if name == "llf-users":
        return LeastLoadedFirst(metric="users")
    if name == "rssi":
        return StrongestSignal()
    if name == "random":
        return RandomSelection(np.random.default_rng(0))
    if name == "cell-breathing":
        return CellBreathing()
    if name == "best-headroom":
        return BestHeadroom()
    if name == "s3":
        if model is None:
            raise SystemExit("strategy 's3' needs --model <file>")
        return S3Strategy(model.selector())
    raise SystemExit(f"unknown strategy {name!r}")


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: build a world and write its demand trace."""
    world_config = WORLD_PRESETS[args.preset]
    config = GeneratorConfig(world=world_config, n_days=args.days, seed=args.seed)
    streams = RandomStreams(config.seed)
    world = build_world(world_config, streams)
    bundle = TraceGenerator(world, config, streams=streams).generate()
    out = Path(args.out)
    save_bundle(out, bundle)
    write_layout(out / "layout.json", world.layout)
    print(f"wrote {len(bundle.demands)} demands, {len(bundle.flows)} flows, "
          f"layout with {len(world.layout.aps)} APs to {out}/")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    """``repro collect``: replay demands under a production strategy."""
    trace_dir = Path(args.trace)
    bundle = load_bundle(trace_dir)
    layout = read_layout(trace_dir / "layout.json")
    split = args.train_days * DAY if args.train_days else float("inf")
    demands = [d for d in bundle.demands if d.arrival < split]
    strategy = make_strategy(args.strategy)
    result = ReplayEngine(layout, strategy).run(demands)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    write_sessions(out / "sessions.csv", result.sessions)
    # Carry the matching flows/demands so the directory is trainable.
    train_bundle = TraceBundle(
        sessions=result.sessions,
        flows=[f for f in bundle.flows if f.start < split],
        demands=demands,
    )
    save_bundle(out, train_bundle)
    write_layout(out / "layout.json", layout)
    print(
        f"collected {len(result.sessions)} sessions under {strategy.name} "
        f"into {out}/"
    )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: fit an S3 model on a collected trace and pickle it."""
    bundle = load_bundle(Path(args.trace))
    model = train_s3(bundle)
    with open(args.model, "wb") as handle:
        pickle.dump(model, handle)
    print(f"trained {model.summary()}")
    print(f"model written to {args.model}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``repro evaluate``: compare strategies on a span of demands."""
    trace_dir = Path(args.trace)
    bundle = load_bundle(trace_dir)
    layout = read_layout(trace_dir / "layout.json")
    start = args.from_day * DAY
    demands = [d for d in bundle.demands if d.arrival >= start]
    if not demands:
        raise SystemExit(f"no demands at or after day {args.from_day}")
    model: Optional[S3Model] = None
    if args.model:
        with open(args.model, "rb") as handle:
            model = pickle.load(handle)
    print(f"evaluating {len(demands)} demands (day {args.from_day}+)\n")
    print(f"{'strategy':<15} {'mean balance':>13}")
    print("-" * 29)
    for name in args.strategies:
        strategy = make_strategy(name, model)
        result = ReplayEngine(layout, strategy).run(demands)
        print(f"{strategy.name:<15} {result.mean_balance():>13.4f}")
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    """``repro describe``: print summary statistics of a trace directory."""
    from repro.analysis.sessions import describe_bundle

    bundle = load_bundle(Path(args.trace))
    print(describe_bundle(bundle))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """``repro experiments``: delegate to the experiment runner."""
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.rest)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro", description="S3 reproduction workflow"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic campus trace")
    generate.add_argument("--out", required=True)
    generate.add_argument("--preset", choices=sorted(WORLD_PRESETS), default="small")
    generate.add_argument("--days", type=int, default=12)
    generate.add_argument("--seed", type=int, default=20120704)
    generate.set_defaults(func=cmd_generate)

    collect = sub.add_parser(
        "collect", help="replay demands under a production strategy"
    )
    collect.add_argument("--trace", required=True)
    collect.add_argument("--out", required=True)
    collect.add_argument("--strategy", default="llf")
    collect.add_argument(
        "--train-days", type=int, default=None,
        help="only replay demands before this day",
    )
    collect.set_defaults(func=cmd_collect)

    train = sub.add_parser("train", help="train an S3 model on a collected trace")
    train.add_argument("--trace", required=True)
    train.add_argument("--model", required=True)
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="compare strategies on a demand trace")
    evaluate.add_argument("--trace", required=True)
    evaluate.add_argument("--model", default=None)
    evaluate.add_argument("--from-day", type=int, default=0)
    evaluate.add_argument(
        "--strategies", nargs="+",
        default=["llf", "llf-users", "rssi", "s3"],
    )
    evaluate.set_defaults(func=cmd_evaluate)

    describe = sub.add_parser("describe", help="summarize a trace directory")
    describe.add_argument("--trace", required=True)
    describe.set_defaults(func=cmd_describe)

    experiments = sub.add_parser(
        "experiments", help="run paper experiments (see python -m repro.experiments)"
    )
    experiments.add_argument("rest", nargs=argparse.REMAINDER)
    experiments.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
