"""Typed fault events and the deterministic :class:`FaultPlan` container.

A fault plan is the chaos analogue of a demand trace: a frozen, sorted
tuple of typed events that fully determines what goes wrong and when.
Plans come from exactly two places — :func:`repro.faults.schedule.generate_plan`
(seeded draws from the dedicated ``faults`` child stream) or a JSON file
written by :meth:`FaultPlan.save` — so every chaos run is reproducible
and byte-identical under both the serial and process replay engines.

Event kinds map one-to-one onto injection points:

========================  =====================================================
``ap-down`` / ``ap-up``   :mod:`repro.wlan.replay` evicts the AP's users into a
                          forced re-association batch and hides the AP from
                          candidate sets until the matching ``ap-up``.
``controller-outage``     steering degrades to per-station strongest-signal
                          while the controller is unreachable.
``stale-load-report``     the controller's next measurement poll is skipped,
                          so strategies decide on stale loads.
``frame-loss`` /          windows interpreted by the prototype
``frame-delay`` /         :class:`~repro.prototype.transport.LinkPolicy`
``frame-duplicate``       (drop / extra-delay / duplicate message frames).
``corrupt-trace-record``  rows damaged by :func:`apply_trace_corruption`,
                          surfaced by the :mod:`repro.trace.io` strict/skip
                          reader policy.
``event-loss`` /          service-stream faults interpreted by the
``event-duplicate`` /     :mod:`repro.service.supervisor` delivery loop: a
``producer-stall`` /      sequenced event dropped on the wire / delivered
``controller-crash``      twice / a producer's send window held back whole /
                          the controller process killed and restored from its
                          latest :class:`~repro.service.checkpoint.ServiceCheckpoint`.
========================  =====================================================

Events order canonically by ``(time, kind, target)``; the runtime merge
layer relies on that same key to reassemble fault records from sharded
workers into the exact serial stream (see :mod:`repro.runtime.merge`).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, Dict, Iterable, Tuple, Type, Union

#: CSV families that :class:`CorruptTraceRecord` may target.
TRACE_FAMILIES = ("sessions", "flows", "demands")


@dataclass(frozen=True)
class ApDown:
    """Take one AP off the air, force-evicting its associations."""

    kind: ClassVar[str] = "ap-down"
    time: float
    ap_id: str

    @property
    def target(self) -> str:
        """The entity this event acts on (merge/sort tie-break key)."""
        return self.ap_id


@dataclass(frozen=True)
class ApUp:
    """Restore a previously downed AP to the candidate set."""

    kind: ClassVar[str] = "ap-up"
    time: float
    ap_id: str

    @property
    def target(self) -> str:
        return self.ap_id


@dataclass(frozen=True)
class ControllerOutage:
    """The controller stops answering steering queries for ``duration``."""

    kind: ClassVar[str] = "controller-outage"
    time: float
    controller_id: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"outage duration must be positive: {self.duration}")

    @property
    def target(self) -> str:
        return self.controller_id


@dataclass(frozen=True)
class StaleLoadReport:
    """The controller's next load-measurement poll is silently skipped."""

    kind: ClassVar[str] = "stale-load-report"
    time: float
    controller_id: str

    @property
    def target(self) -> str:
        return self.controller_id


@dataclass(frozen=True)
class FrameLoss:
    """Message frames sent during the window are dropped with ``probability``."""

    kind: ClassVar[str] = "frame-loss"
    time: float
    duration: float
    probability: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"frame-loss duration must be positive: {self.duration}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of [0, 1]: {self.probability}")

    @property
    def target(self) -> str:
        return "link"


@dataclass(frozen=True)
class FrameDelay:
    """Frames in the window arrive ``delay`` seconds late with ``probability``."""

    kind: ClassVar[str] = "frame-delay"
    time: float
    duration: float
    probability: float
    delay: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"frame-delay duration must be positive: {self.duration}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of [0, 1]: {self.probability}")
        if self.delay <= 0:
            raise ValueError(f"extra delay must be positive: {self.delay}")

    @property
    def target(self) -> str:
        return "link"


@dataclass(frozen=True)
class FrameDuplicate:
    """Frames in the window are delivered twice with ``probability``."""

    kind: ClassVar[str] = "frame-duplicate"
    time: float
    duration: float
    probability: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(
                f"frame-duplicate duration must be positive: {self.duration}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of [0, 1]: {self.probability}")

    @property
    def target(self) -> str:
        return "link"


@dataclass(frozen=True)
class CorruptTraceRecord:
    """Damage one data row of a trace CSV family (0-indexed, header excluded)."""

    kind: ClassVar[str] = "corrupt-trace-record"
    time: float
    family: str
    row: int

    def __post_init__(self) -> None:
        if self.family not in TRACE_FAMILIES:
            raise ValueError(
                f"unknown trace family {self.family!r}; choose from {TRACE_FAMILIES}"
            )
        if self.row < 0:
            raise ValueError(f"row index must be >= 0: {self.row}")

    @property
    def target(self) -> str:
        return f"{self.family}:{self.row}"


@dataclass(frozen=True)
class EventLoss:
    """The service event with sequence number ``seq`` never arrives.

    The supervisor drops it between producer and controller: the write-
    ahead log still records it (the producer sent it), but the reorder
    buffer sees a permanent gap that only the gap horizon resolves.
    """

    kind: ClassVar[str] = "event-loss"
    time: float
    seq: int

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"event seq must be >= 0: {self.seq}")

    @property
    def target(self) -> str:
        return f"seq:{self.seq}"


@dataclass(frozen=True)
class EventDuplicate:
    """The service event with sequence number ``seq`` is delivered twice."""

    kind: ClassVar[str] = "event-duplicate"
    time: float
    seq: int

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"event seq must be >= 0: {self.seq}")

    @property
    def target(self) -> str:
        return f"seq:{self.seq}"


@dataclass(frozen=True)
class ProducerStall:
    """Events produced in ``[time, time + duration)`` are held back.

    The stalled events are delivered, in order, with the first event at
    or past the window's end — late enough that the reorder buffer's gap
    horizon may already have skipped them.
    """

    kind: ClassVar[str] = "producer-stall"
    time: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"stall duration must be positive: {self.duration}")

    @property
    def target(self) -> str:
        return "producer"


@dataclass(frozen=True)
class ControllerCrash:
    """The controller process dies at ``time`` and must be restored.

    Interpreted by :func:`repro.service.supervisor.run_supervised`: the
    live service is discarded before the first event at or past ``time``
    and rebuilt from its latest snapshot plus write-ahead-log replay.
    """

    kind: ClassVar[str] = "controller-crash"
    time: float
    controller_id: str

    @property
    def target(self) -> str:
        return self.controller_id


FaultEvent = Union[
    ApDown,
    ApUp,
    ControllerOutage,
    StaleLoadReport,
    FrameLoss,
    FrameDelay,
    FrameDuplicate,
    CorruptTraceRecord,
    EventLoss,
    EventDuplicate,
    ProducerStall,
    ControllerCrash,
]

#: Event classes by their stable ``kind`` tag (JSON round-trip dispatch).
EVENT_TYPES: Dict[str, Type[Any]] = {
    cls.kind: cls
    for cls in (
        ApDown,
        ApUp,
        ControllerOutage,
        StaleLoadReport,
        FrameLoss,
        FrameDelay,
        FrameDuplicate,
        CorruptTraceRecord,
        EventLoss,
        EventDuplicate,
        ProducerStall,
        ControllerCrash,
    )
}

#: Kinds interpreted by the replay engine (vs the prototype link / trace IO).
REPLAY_KINDS = frozenset(
    {ApDown.kind, ApUp.kind, ControllerOutage.kind, StaleLoadReport.kind}
)

#: Kinds interpreted by the prototype transport's LinkPolicy.
LINK_KINDS = frozenset({FrameLoss.kind, FrameDelay.kind, FrameDuplicate.kind})

#: Kinds interpreted by the supervised controller service's delivery loop.
SERVICE_KINDS = frozenset(
    {EventLoss.kind, EventDuplicate.kind, ProducerStall.kind, ControllerCrash.kind}
)


def event_sort_key(event: FaultEvent) -> Tuple[float, str, str]:
    """Canonical plan order — and the merge layer's tie-break key."""
    return (event.time, event.kind, event.target)


def event_payload(event: FaultEvent) -> Dict[str, Any]:
    """A JSON-ready dict: ``kind`` first, then field names sorted."""
    raw = asdict(event)
    payload: Dict[str, Any] = {"kind": event.kind}
    for name in sorted(raw):
        payload[name] = raw[name]
    return payload


def event_from_payload(payload: Dict[str, Any]) -> FaultEvent:
    """Rebuild a typed event from :func:`event_payload` output."""
    data = dict(payload)
    kind = data.pop("kind")
    if kind not in EVENT_TYPES:
        raise ValueError(f"unknown fault kind {kind!r}")
    cls = EVENT_TYPES[kind]
    names = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ValueError(f"unknown fields for {kind!r}: {unknown}")
    event: FaultEvent = cls(**data)
    return event


def _validate(events: Tuple[FaultEvent, ...]) -> None:
    seen = set()
    for event in events:
        key = event_sort_key(event)
        if key in seen:
            raise ValueError(f"duplicate fault event {key}")
        seen.add(key)
    # ap-down / ap-up must alternate per AP, starting down.
    state: Dict[str, bool] = {}
    for event in events:
        if isinstance(event, ApDown):
            if state.setdefault(event.ap_id, False):
                raise ValueError(
                    f"AP {event.ap_id} is already down at t={event.time}"
                )
            state[event.ap_id] = True
        elif isinstance(event, ApUp):
            if not state.setdefault(event.ap_id, False):
                raise ValueError(
                    f"ApUp for {event.ap_id} at t={event.time} without a "
                    "preceding ApDown"
                )
            state[event.ap_id] = False


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, canonically sorted schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=event_sort_key))
        object.__setattr__(self, "events", ordered)
        _validate(ordered)

    @property
    def is_empty(self) -> bool:
        """True when no events are scheduled (a clean run)."""
        return not self.events

    def of_kinds(self, kinds: Iterable[str]) -> Tuple[FaultEvent, ...]:
        """The plan's events restricted to the given kinds, in plan order."""
        wanted = frozenset(kinds)
        return tuple(e for e in self.events if e.kind in wanted)

    def fingerprint(self) -> str:
        """Content digest folded into checkpoint identities."""
        digest = zlib.crc32(self.to_json().encode("utf-8")) & 0xFFFFFFFF
        return f"faults:{len(self.events)}:{digest:08x}"

    # ------------------------------------------------------------ round-trip

    def to_json(self) -> str:
        """Canonical JSON text (stable key order, compact separators)."""
        payload = {
            "version": 1,
            "events": [event_payload(event) for event in self.events],
        }
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse :meth:`to_json` output (the only accepted layout)."""
        payload = json.loads(text)
        if payload["version"] != 1:
            raise ValueError(f"unsupported fault-plan version {payload['version']!r}")
        return cls(tuple(event_from_payload(item) for item in payload["events"]))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan as JSON; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan saved by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def apply_trace_corruption(
    path: Union[str, Path], family: str, events: Iterable[CorruptTraceRecord]
) -> int:
    """Damage the CSV at ``path`` per the plan's corrupt-record events.

    Each matching event's data row (0-indexed, header excluded) has its
    final field replaced with a non-numeric marker, which the strict
    reader policy rejects and the skip policy counts and drops.  Returns
    the number of rows corrupted; rows beyond the file are ignored.
    """
    if family not in TRACE_FAMILIES:
        raise ValueError(
            f"unknown trace family {family!r}; choose from {TRACE_FAMILIES}"
        )
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    rows = sorted({e.row for e in events if e.family == family})
    corrupted = 0
    for row in rows:
        index = row + 1  # skip the header line
        if index >= len(lines):
            continue
        head, _, _ = lines[index].rpartition(",")
        lines[index] = f"{head},CORRUPT" if head else "CORRUPT"
        corrupted += 1
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return corrupted
