"""Deterministic fault injection: typed plans, seeded chaos schedules.

See ``docs/robustness.md`` for the fault model, the injection points
across the replay engine / prototype transport / trace readers / the
supervised controller service, and the degradation chains each
subsystem falls back along.
"""

from repro.faults.model import (
    ApDown,
    ApUp,
    ControllerCrash,
    ControllerOutage,
    CorruptTraceRecord,
    EVENT_TYPES,
    EventDuplicate,
    EventLoss,
    FaultEvent,
    FaultPlan,
    FrameDelay,
    FrameDuplicate,
    FrameLoss,
    LINK_KINDS,
    ProducerStall,
    REPLAY_KINDS,
    SERVICE_KINDS,
    StaleLoadReport,
    TRACE_FAMILIES,
    apply_trace_corruption,
    event_from_payload,
    event_payload,
    event_sort_key,
)
from repro.faults.schedule import (
    ChaosConfig,
    ServiceChaosConfig,
    generate_plan,
    generate_service_plan,
    targeted_ap_outage,
)

__all__ = [
    "ApDown",
    "ApUp",
    "ChaosConfig",
    "ControllerCrash",
    "ControllerOutage",
    "CorruptTraceRecord",
    "EVENT_TYPES",
    "EventDuplicate",
    "EventLoss",
    "FaultEvent",
    "FaultPlan",
    "FrameDelay",
    "FrameDuplicate",
    "FrameLoss",
    "LINK_KINDS",
    "ProducerStall",
    "REPLAY_KINDS",
    "SERVICE_KINDS",
    "ServiceChaosConfig",
    "StaleLoadReport",
    "TRACE_FAMILIES",
    "apply_trace_corruption",
    "event_from_payload",
    "event_payload",
    "event_sort_key",
    "generate_plan",
    "generate_service_plan",
    "targeted_ap_outage",
]
