"""Seeded chaos-plan generation from the dedicated ``faults`` child stream.

Every random draw in this module comes from ``streams.child("faults")``
— never from the root factory or any other child — so a chaos plan is a
pure function of ``(seed, layout, window, config)`` and cannot perturb
the workload's own streams (radio shadowing, demand synthesis).  The
``fault-determinism`` lint rule enforces this by construction for every
module under :mod:`repro.faults`.

:func:`generate_plan` draws a randomized chaos schedule;
:func:`targeted_ap_outage` builds the deterministic single-AP plan the
resilience experiment uses (no draws at all — the target is computed
from the demand trace); :func:`generate_service_plan` draws the
service-stream chaos schedule (event losses/duplicates, producer
stalls, controller crashes) the supervised controller service injects —
the service layer itself never draws, so every service fault is pinned
here, on this one stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.faults.model import (
    ApDown,
    ApUp,
    ControllerCrash,
    ControllerOutage,
    EventDuplicate,
    EventLoss,
    FaultEvent,
    FaultPlan,
    FrameLoss,
    ProducerStall,
    StaleLoadReport,
)
from repro.obs import metrics as obs_metrics
from repro.sim.rng import RandomStreams
from repro.trace.social import CampusLayout


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for :func:`generate_plan` (all counts are best-effort caps)."""

    #: Number of APs taken down once each (capped at the layout's AP count).
    ap_outages: int = 1
    #: Uniform range the AP downtime is drawn from, seconds.
    ap_outage_duration: Tuple[float, float] = (900.0, 3600.0)
    #: Number of controller outages (capped at the controller count).
    controller_outages: int = 0
    #: Uniform range of controller unreachability, seconds.
    controller_outage_duration: Tuple[float, float] = (60.0, 600.0)
    #: Number of skipped load-measurement polls.
    stale_reports: int = 0
    #: Number of lossy link windows (prototype transport only).
    frame_loss_windows: int = 0
    #: Per-frame drop probability inside a lossy window.
    frame_loss_probability: float = 0.05
    #: Length of each lossy window, seconds.
    frame_window_duration: float = 600.0


def _pick(rng: Any, names: List[str], count: int) -> List[str]:
    """``count`` distinct names, drawn without replacement, returned sorted."""
    count = min(count, len(names))
    if count <= 0:
        return []
    indices = rng.choice(len(names), size=count, replace=False)
    return sorted(names[int(i)] for i in indices)


def generate_plan(
    layout: CampusLayout,
    start: float,
    horizon: float,
    streams: RandomStreams,
    config: Optional[ChaosConfig] = None,
) -> FaultPlan:
    """A randomized chaos schedule inside ``[start, horizon]``.

    Events are placed in the first 60% of the window so downtimes and
    recoveries both land inside the replayed horizon.  Draw order is
    fixed (APs, controllers, stale reports, link windows — each in
    sorted-target order), so the plan is byte-stable for a given seed.
    """
    if horizon <= start:
        raise ValueError(f"empty fault window: [{start}, {horizon}]")
    config = config if config is not None else ChaosConfig()
    rng = streams.child("faults").get("schedule")
    span = horizon - start
    events: List[FaultEvent] = []

    for ap_id in _pick(rng, sorted(layout.aps), config.ap_outages):
        down_at = start + float(rng.uniform(0.05, 0.6)) * span
        duration = float(rng.uniform(*config.ap_outage_duration))
        events.append(ApDown(time=down_at, ap_id=ap_id))
        events.append(ApUp(time=min(down_at + duration, horizon), ap_id=ap_id))

    controller_ids = layout.controller_ids
    for controller_id in _pick(rng, controller_ids, config.controller_outages):
        outage_at = start + float(rng.uniform(0.05, 0.6)) * span
        duration = float(rng.uniform(*config.controller_outage_duration))
        events.append(
            ControllerOutage(
                time=outage_at, controller_id=controller_id, duration=duration
            )
        )

    for _ in range(config.stale_reports):
        controller_id = controller_ids[int(rng.choice(len(controller_ids)))]
        stale_at = start + float(rng.uniform(0.05, 0.9)) * span
        events.append(StaleLoadReport(time=stale_at, controller_id=controller_id))

    for _ in range(config.frame_loss_windows):
        loss_at = start + float(rng.uniform(0.05, 0.6)) * span
        events.append(
            FrameLoss(
                time=loss_at,
                duration=config.frame_window_duration,
                probability=config.frame_loss_probability,
            )
        )

    # Plan generation runs once, parent-side, under both engines, so
    # this run-scoped count is identical whichever engine replays it.
    obs_metrics.inc("faults.planned_events", float(len(events)), start)
    return FaultPlan(tuple(events))


@dataclass(frozen=True)
class ServiceChaosConfig:
    """Knobs for :func:`generate_service_plan` (counts are best-effort caps)."""

    #: Sequenced events dropped between producer and controller.
    event_losses: int = 0
    #: Sequenced events delivered twice.
    event_duplicates: int = 0
    #: Producer send windows held back whole.
    producer_stalls: int = 0
    #: Uniform range each stall window's length is drawn from, sim seconds.
    stall_duration: Tuple[float, float] = (5.0, 30.0)
    #: Controller processes killed and restored from their snapshots.
    controller_crashes: int = 0
    #: The controller the crash events target.
    controller_id: str = "svc"


def generate_service_plan(
    total_events: int,
    start: float,
    horizon: float,
    streams: RandomStreams,
    config: Optional[ServiceChaosConfig] = None,
) -> FaultPlan:
    """A randomized service-stream chaos schedule for ``total_events``.

    Loss and duplicate targets are one draw without replacement over the
    sequence space (a seq both lost and duplicated would contradict
    itself), split losses-first; their nominal times are derived from
    the seq's position in the window, no draw.  Stalls land in the first
    60% of the window, crashes anywhere in the first 90%.  Draw order is
    fixed (loss/duplicate seqs, stalls, crashes), so the plan is
    byte-stable for a given seed.
    """
    if total_events <= 0:
        raise ValueError(f"total_events must be positive: {total_events}")
    if horizon <= start:
        raise ValueError(f"empty fault window: [{start}, {horizon}]")
    config = config if config is not None else ServiceChaosConfig()
    rng = streams.child("faults").get("schedule")
    span = horizon - start
    events: List[FaultEvent] = []

    wanted = min(config.event_losses + config.event_duplicates, total_events)
    picked: List[int] = []
    if wanted > 0:
        drawn = rng.choice(total_events, size=wanted, replace=False)
        picked = [int(seq) for seq in drawn]
    losses = sorted(picked[: config.event_losses])
    duplicates = sorted(picked[config.event_losses:])
    for seq in losses:
        at = start + span * (seq / total_events)
        events.append(EventLoss(time=at, seq=seq))
    for seq in duplicates:
        at = start + span * (seq / total_events)
        events.append(EventDuplicate(time=at, seq=seq))

    for _ in range(config.producer_stalls):
        stall_at = start + float(rng.uniform(0.05, 0.6)) * span
        duration = float(rng.uniform(*config.stall_duration))
        events.append(ProducerStall(time=stall_at, duration=duration))

    for _ in range(config.controller_crashes):
        crash_at = start + float(rng.uniform(0.05, 0.9)) * span
        events.append(
            ControllerCrash(time=crash_at, controller_id=config.controller_id)
        )

    obs_metrics.inc("faults.planned_events", float(len(events)), start)
    return FaultPlan(tuple(events))


def targeted_ap_outage(ap_id: str, start: float, duration: float) -> FaultPlan:
    """The deterministic one-AP outage plan (no random draws)."""
    if duration <= 0:
        raise ValueError(f"outage duration must be positive: {duration}")
    return FaultPlan((ApDown(time=start, ap_id=ap_id), ApUp(time=start + duration, ap_id=ap_id)))
