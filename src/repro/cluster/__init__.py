"""From-scratch clustering stack: k-means and the gap statistic.

Section III.D.2 clusters user application profiles with k-means and picks
``k`` via Tibshirani's gap statistic (Fig. 7 selects k = 4).  Both pieces
are implemented here directly on numpy — no external clustering library —
so the reproduction owns the full path from profiles to user types.
"""

from repro.cluster.kmeans import KMeans, KMeansResult, within_cluster_dispersion
from repro.cluster.gap import GapResult, gap_statistic, select_k

__all__ = [
    "KMeans",
    "KMeansResult",
    "within_cluster_dispersion",
    "GapResult",
    "gap_statistic",
    "select_k",
]
