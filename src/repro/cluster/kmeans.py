"""k-means clustering (Lloyd's algorithm with k-means++ seeding).

The paper (Section III.D.2) clusters users' normalized application-traffic
vectors with "a well-known unsupervised clustering algorithm called
k-means" [MacQueen 1967].  This implementation provides what the paper's
pipeline needs:

* k-means++ seeding for robust initialization,
* multiple restarts keeping the lowest-inertia solution,
* the *within-cluster dispersion* ``W_k`` used by the gap statistic
  (Tibshirani's pairwise-distance form, see :mod:`repro.cluster.gap`),
* deterministic behaviour under a caller-supplied generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """The outcome of one k-means fit."""

    centroids: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float  # sum of squared distances to assigned centroid
    iterations: int
    converged: bool

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Members per cluster, indexed by label."""
        return np.bincount(self.labels, minlength=self.k)


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and restarts."""

    def __init__(
        self,
        k: int,
        n_init: int = 8,
        max_iter: int = 200,
        tol: float = 1e-7,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if n_init <= 0 or max_iter <= 0:
            raise ValueError("n_init and max_iter must be positive")
        self.k = k
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------ fit

    def fit(self, data: Sequence[Sequence[float]]) -> KMeansResult:
        """Fit on an ``(n, d)`` matrix; returns the best of ``n_init`` runs."""
        points = np.asarray(data, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {points.shape}")
        n = points.shape[0]
        if n < self.k:
            raise ValueError(f"cannot form {self.k} clusters from {n} points")
        best: Optional[KMeansResult] = None
        for _ in range(self.n_init):
            result = self._fit_once(points)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    def _fit_once(self, points: np.ndarray) -> KMeansResult:
        centroids = self._seed(points)
        labels = np.zeros(points.shape[0], dtype=int)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            distances = _sq_distances(points, centroids)
            labels = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            repair_pool: Optional[np.ndarray] = None
            for j in range(self.k):
                members = points[labels == j]
                if members.size:
                    new_centroids[j] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from
                    # its centroid — standard k-means repair.  Each used
                    # repair point is retired from the pool, so two
                    # clusters emptying in the same iteration land on
                    # distinct points instead of duplicate centroids.
                    if repair_pool is None:
                        repair_pool = np.min(distances, axis=1).copy()
                    farthest = int(np.argmax(repair_pool))
                    repair_pool[farthest] = -np.inf
                    new_centroids[j] = points[farthest]
            shift = float(np.max(np.linalg.norm(new_centroids - centroids, axis=1)))
            centroids = new_centroids
            if shift <= self.tol:
                converged = True
                break
        distances = _sq_distances(points, centroids)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(points.shape[0]), labels].sum())
        return KMeansResult(
            centroids=centroids,
            labels=labels,
            inertia=inertia,
            iterations=iteration,
            converged=converged,
        )

    # ------------------------------------------------------------- seeding

    def _seed(self, points: np.ndarray) -> np.ndarray:
        """k-means++: spread initial centroids proportionally to D^2."""
        n = points.shape[0]
        centroids = np.empty((self.k, points.shape[1]))
        first = int(self.rng.integers(n))
        centroids[0] = points[first]
        closest = _sq_distances(points, centroids[:1]).ravel()
        for j in range(1, self.k):
            total = closest.sum()
            if total <= 0:
                # All points coincide with chosen centroids; pick uniformly.
                index = int(self.rng.integers(n))
            else:
                probabilities = closest / total
                index = int(self.rng.choice(n, p=probabilities))
            centroids[j] = points[index]
            closest = np.minimum(
                closest, _sq_distances(points, centroids[j : j + 1]).ravel()
            )
        return centroids


def _sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, (n, k)."""
    diff = points[:, None, :] - centroids[None, :, :]
    return np.einsum("nkd,nkd->nk", diff, diff)


def within_cluster_dispersion(points: np.ndarray, labels: np.ndarray) -> float:
    """Tibshirani's W_k: sum over clusters of D_r / (2 n_r).

    ``D_r`` is the sum of pairwise squared distances inside cluster ``r``;
    for Euclidean distance this equals the cluster's inertia, so
    ``W_k = sum_r inertia_r`` — computed here via the centroid identity
    rather than the O(n^2) pairwise sum.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if points.shape[0] != labels.shape[0]:
        raise ValueError("points and labels length mismatch")
    total = 0.0
    for label in np.unique(labels):
        members = points[labels == label]
        centroid = members.mean(axis=0)
        total += float(np.sum((members - centroid) ** 2))
    return total
