"""The gap statistic for choosing the number of clusters (Fig. 7).

Tibshirani, Walther & Hastie (2001), as used in Section III.D.2::

    Gap(k) = (1/B) * sum_b log(W_kb) - log(W_k)

where ``W_k`` is the within-cluster dispersion of the data clustered into
``k`` groups and ``W_kb`` the dispersion of the ``b``-th reference data set
drawn uniformly over the observed range.  The selected ``k`` is the
smallest one with::

    Gap(k) >= Gap(k+1) - s_{k+1}

where ``s_k = sd_k * sqrt(1 + 1/B)`` and ``sd_k`` is the standard deviation
of ``log(W_kb)`` over the reference sets.  The paper applies this to user
application profiles and reads off k = 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.kmeans import KMeans, within_cluster_dispersion


@dataclass(frozen=True)
class GapResult:
    """Gap curve over a range of k, plus the selected value."""

    ks: np.ndarray  # evaluated k values
    gaps: np.ndarray  # Gap(k)
    s_k: np.ndarray  # the simulation-error terms s_k
    log_wk: np.ndarray  # log W_k of the data
    selected_k: int

    def as_rows(self) -> List[dict]:
        """Row dicts for tabular reporting."""
        return [
            {
                "k": int(k),
                "gap": float(g),
                "s_k": float(s),
                "log_wk": float(w),
            }
            for k, g, s, w in zip(self.ks, self.gaps, self.s_k, self.log_wk)
        ]


def _dispersion_for_k(
    points: np.ndarray, k: int, rng: np.random.Generator, n_init: int
) -> float:
    if k == 1:
        centroid = points.mean(axis=0)
        return float(np.sum((points - centroid) ** 2))
    result = KMeans(k=k, n_init=n_init, rng=rng).fit(points)
    return within_cluster_dispersion(points, result.labels)


def _reference_sets(
    points: np.ndarray,
    n_references: int,
    rng: np.random.Generator,
    method: str,
) -> List[np.ndarray]:
    """Draw the null-reference data sets.

    ``"pca"`` (Tibshirani's method (b), the default): sample uniformly in
    the principal-component-aligned bounding box and rotate back.  This
    respects low-dimensional structure — e.g. application profiles live on
    a simplex (components sum to one), where an axis-aligned box would be
    a far too diffuse null and distort the Gap curve's shape in k.
    ``"uniform"``: the simpler axis-aligned bounding box (method (a)).
    """
    if method == "uniform":
        lows = points.min(axis=0)
        span = np.where(points.max(axis=0) > lows, points.max(axis=0) - lows, 1.0)
        return [lows + rng.random(points.shape) * span for _ in range(n_references)]
    if method == "pca":
        mean = points.mean(axis=0)
        centered = points - mean
        # Right singular vectors give the PCA rotation.
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        rotated = centered @ vt.T
        lows = rotated.min(axis=0)
        highs = rotated.max(axis=0)
        span = np.where(highs > lows, highs - lows, 0.0)
        return [
            (lows + rng.random(rotated.shape) * span) @ vt + mean
            for _ in range(n_references)
        ]
    raise ValueError(f"unknown reference method {method!r}")


def gap_statistic(
    data: Sequence[Sequence[float]],
    k_max: int = 10,
    n_references: int = 10,
    rng: Optional[np.random.Generator] = None,
    n_init: int = 4,
    reference: str = "pca",
) -> GapResult:
    """Compute Gap(k) for k = 1..k_max and select k.

    ``n_references`` null data sets are drawn once and shared across k so
    the curve is smooth in k (standard practice); see
    :func:`_reference_sets` for the two null models.
    """
    points = np.asarray(data, dtype=float)
    if points.ndim != 2 or points.shape[0] < 2:
        raise ValueError(f"need a 2-D matrix with >= 2 rows, got {points.shape}")
    if k_max < 1:
        raise ValueError("k_max must be >= 1")
    k_max = min(k_max, points.shape[0])
    rng = rng if rng is not None else np.random.default_rng(0)

    ks = np.arange(1, k_max + 1)
    gaps = np.zeros(k_max)
    s_k = np.zeros(k_max)
    log_wk = np.zeros(k_max)

    references = _reference_sets(points, n_references, rng, reference)

    for i, k in enumerate(ks):
        w_k = _dispersion_for_k(points, int(k), rng, n_init)
        log_wk[i] = np.log(max(w_k, 1e-300))
        ref_logs = np.array(
            [
                np.log(max(_dispersion_for_k(ref, int(k), rng, n_init), 1e-300))
                for ref in references
            ]
        )
        gaps[i] = float(ref_logs.mean() - log_wk[i])
        s_k[i] = float(ref_logs.std(ddof=0) * np.sqrt(1.0 + 1.0 / n_references))

    selected = select_k(gaps, s_k)
    return GapResult(ks=ks, gaps=gaps, s_k=s_k, log_wk=log_wk, selected_k=selected)


def select_k(gaps: Sequence[float], s_k: Sequence[float]) -> int:
    """Smallest k with ``Gap(k) >= Gap(k+1) - s_{k+1}``.

    Falls back to the argmax of the gap curve when no k satisfies the rule
    (can happen for k_max too small).  Returned k is 1-based.
    """
    gaps = np.asarray(list(gaps), dtype=float)
    s_k = np.asarray(list(s_k), dtype=float)
    if gaps.shape != s_k.shape or gaps.size == 0:
        raise ValueError("gaps and s_k must be equal-length, non-empty")
    for i in range(gaps.size - 1):
        if gaps[i] >= gaps[i + 1] - s_k[i + 1]:
            return i + 1
    return int(np.argmax(gaps)) + 1
