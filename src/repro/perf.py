"""Lightweight wall-clock timers and counters for the hot paths.

Every figure script (and the replay engine underneath it) spends its time
in a handful of substrates: trace generation, LLF collection, churn
extraction, model training, and replay.  This module gives each of those a
named timer / counter so a run can report where its time went without
dragging in a profiler:

    from repro import perf

    with perf.timer("train.churn"):
        churn = extract_churn(sessions)
    perf.count("replay.events", sim.events_processed)
    print(perf.report())

Timers nest freely (each ``with`` block records one sample) and the
registry is process-global by default, matching the in-process caching of
:mod:`repro.experiments.workload`.  ``perf.reset()`` clears everything —
the experiment runner calls it between figures so each report is
self-contained.  The overhead per timed block is two ``perf_counter``
calls and a dict update, cheap enough to leave enabled everywhere.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import ContextManager, Dict, Iterator, List, Optional


@dataclass
class TimerStat:
    """Accumulated samples of one named timer."""

    calls: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = 0.0

    def add(self, elapsed: float) -> None:
        """Fold one sample (seconds) into the statistic."""
        self.calls += 1
        self.total += elapsed
        if elapsed < self.minimum:
            self.minimum = elapsed
        if elapsed > self.maximum:
            self.maximum = elapsed

    def combine(self, other: "TimerStat") -> None:
        """Fold another statistic (e.g. a worker's) into this one."""
        self.calls += other.calls
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        """Mean seconds per call (0 when never called)."""
        return self.total / self.calls if self.calls else 0.0


@dataclass
class PerfSnapshot:
    """A picklable, immutable-by-convention copy of a registry's state.

    This is the hand-off format of :mod:`repro.runtime`: a worker process
    resets its registry, does its work, and ships a snapshot back; the
    parent folds every snapshot into its own registry with
    :meth:`PerfRegistry.merge`, so the final report covers work done in
    all processes instead of silently dropping child-process timings.
    """

    timers: Dict[str, TimerStat] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)


class PerfRegistry:
    """A named collection of timers and counters.

    One process-global instance (:data:`PERF`) serves the whole pipeline;
    tests that need isolation construct their own.
    """

    def __init__(self) -> None:
        self._timers: Dict[str, TimerStat] = {}
        self._counters: Dict[str, float] = {}

    # ------------------------------------------------------------- recording

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (reentrant, nestable)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.add(elapsed)

    def record(self, name: str, elapsed: float) -> None:
        """Fold an externally measured duration (seconds) into ``name``."""
        if elapsed < 0:
            raise ValueError(f"negative duration {elapsed!r}")
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat()
        stat.add(elapsed)

    def count(self, name: str, amount: float = 1) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    # -------------------------------------------------------------- querying

    def timers(self) -> Dict[str, TimerStat]:
        """Snapshot of all timer statistics."""
        return dict(self._timers)

    def counters(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counters)

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0 when never timed)."""
        stat = self._timers.get(name)
        return stat.total if stat is not None else 0.0

    def snapshot(self) -> PerfSnapshot:
        """A deep, picklable copy of the current timers and counters."""
        return PerfSnapshot(
            timers={
                name: TimerStat(
                    calls=stat.calls,
                    total=stat.total,
                    minimum=stat.minimum,
                    maximum=stat.maximum,
                )
                for name, stat in self._timers.items()
            },
            counters=dict(self._counters),
        )

    def merge(self, snapshot: PerfSnapshot) -> None:
        """Fold a snapshot (typically from a worker process) into this
        registry: timer stats combine call counts / totals / extrema,
        counters add."""
        for name, stat in snapshot.timers.items():
            mine = self._timers.get(name)
            if mine is None:
                mine = self._timers[name] = TimerStat()
            mine.combine(stat)
        for name, value in snapshot.counters.items():
            self._counters[name] = self._counters.get(name, 0) + value

    def __bool__(self) -> bool:
        return bool(self._timers or self._counters)

    # ------------------------------------------------------------- reporting

    def report(
        self, title: Optional[str] = None, sim_seconds: Optional[float] = None
    ) -> str:
        """A fixed-width text table of timers (by total, descending) and
        counters (alphabetical).

        ``sim_seconds`` — the simulated span the samples cover — adds a
        ``calls/simh`` column (calls per simulated hour), turning raw
        call counts into a rate that is comparable across presets: the
        hot-path profile of a tiny 8-day campus and the paper campus
        line up once normalized by simulated time.
        """
        lines: List[str] = []
        if title:
            lines.append(title)
        with_rate = sim_seconds is not None and sim_seconds > 0
        if self._timers:
            rows = sorted(
                self._timers.items(), key=lambda item: -item[1].total
            )
            width = max(len(name) for name, _ in rows)
            header = (
                f"{'timer'.ljust(width)}  {'calls':>7}  {'total':>10}  "
                f"{'mean':>10}  {'min':>10}  {'max':>10}"
            )
            if with_rate:
                header += f"  {'calls/simh':>11}"
            lines.append(header)
            for name, stat in rows:
                # A zero-call stat still carries the inf sentinel in
                # ``minimum``; render 0 so the table stays finite.
                minimum = stat.minimum if stat.calls else 0.0
                row = (
                    f"{name.ljust(width)}  {stat.calls:>7d}  "
                    f"{stat.total:>9.3f}s  {stat.mean:>9.4f}s  "
                    f"{minimum:>9.4f}s  {stat.maximum:>9.4f}s"
                )
                if with_rate:
                    assert sim_seconds is not None
                    rate = stat.calls * 3600.0 / sim_seconds
                    row += f"  {rate:>11.2f}"
                lines.append(row)
        if self._counters:
            rows = sorted(self._counters.items())
            width = max(len(name) for name, _ in rows)
            lines.append(f"{'counter'.ljust(width)}  {'value':>12}")
            for name, value in rows:
                rendered = f"{int(value)}" if value == int(value) else f"{value:.3f}"
                lines.append(f"{name.ljust(width)}  {rendered:>12}")
        if not lines:
            lines.append("(no perf samples recorded)")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every timer and counter."""
        self._timers.clear()
        self._counters.clear()


#: The process-global registry the pipeline records into.
PERF = PerfRegistry()


def timer(name: str) -> ContextManager[None]:
    """``with perf.timer(name):`` against the global registry."""
    return PERF.timer(name)


def record(name: str, elapsed: float) -> None:
    """Record a duration against the global registry."""
    PERF.record(name, elapsed)


def count(name: str, amount: float = 1) -> None:
    """Increment a counter on the global registry."""
    PERF.count(name, amount)


def snapshot() -> PerfSnapshot:
    """Snapshot the global registry (for shipping across processes)."""
    return PERF.snapshot()


def merge(snap: PerfSnapshot) -> None:
    """Fold a worker snapshot into the global registry."""
    PERF.merge(snap)


def report(
    title: Optional[str] = None, sim_seconds: Optional[float] = None
) -> str:
    """Render the global registry."""
    return PERF.report(title, sim_seconds=sim_seconds)


def reset() -> None:
    """Clear the global registry."""
    PERF.reset()


def wall_seconds() -> float:
    """A monotonic wall-clock reading (seconds, arbitrary epoch).

    The sanctioned funnel for code outside :mod:`repro.perf` /
    :mod:`repro.prototype` that must measure real elapsed time — the
    service admission layer times decision latency with it.  Keeping the
    ``perf_counter`` call here keeps the **no-wallclock** lint rule's
    allowlist honest: callers depend on wall time only through an
    interface whose results are already quarantined as host-scoped
    (never allowed into run-scoped journal data).
    """
    return time.perf_counter()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process tree, in bytes.

    Covers both the parent and its reaped pool workers (``RUSAGE_SELF``
    vs ``RUSAGE_CHILDREN``, whichever peaked higher) — the number the
    runtime benchmark reports next to speedup, so a transport that
    trades wall-clock for duplicated memory shows up.  ``ru_maxrss`` is
    kilobytes on Linux and bytes on macOS; normalized here.
    Deliberately *not* part of :class:`PerfSnapshot`: it is a one-shot
    host measurement, not a mergeable per-task statistic.
    """
    import resource
    import sys

    scale = 1 if sys.platform == "darwin" else 1024
    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    return int(peak) * scale
