"""The WLAN-controller daemon of the prototype.

Holds the pluggable selection strategy (S³ or a baseline) and answers
steering queries from its APs: gather the current AP states (association
tables are authoritative at the controller; loads come from the last
LoadReport, mirroring the measured-load semantics of the replay engine),
run the strategy, and direct the station to the chosen AP.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.selection import APState
from repro.obs.records import DecisionRecord, candidates_from_states
from repro.obs.tracer import get_tracer
from repro.prototype.ap_daemon import APDaemon
from repro.prototype.messages import (
    Frame,
    LoadReport,
    RedirectDirective,
    SteeringQuery,
)
from repro.prototype.transport import MessageBus
from repro.wlan.strategies import SelectionStrategy


class ControllerDaemon:
    """One controller endpoint commanding a set of AP daemons."""

    def __init__(
        self,
        controller_id: str,
        aps: List[APDaemon],
        strategy: SelectionStrategy,
        bus: MessageBus,
    ) -> None:
        if not aps:
            raise ValueError(f"controller {controller_id} has no APs")
        self.controller_id = controller_id
        self.strategy = strategy
        self.bus = bus
        self.aps: Dict[str, APDaemon] = {ap.info.ap_id: ap for ap in aps}
        self._measured_loads: Dict[str, float] = {ap_id: 0.0 for ap_id in self.aps}
        self.decisions = 0
        bus.register(self.endpoint, self.handle)

    @property
    def endpoint(self) -> str:
        """This daemon's bus address."""
        return f"ctrl:{self.controller_id}"

    # ------------------------------------------------------------- handlers

    def handle(self, frame: Frame) -> None:
        """Dispatch one incoming frame."""
        if isinstance(frame, SteeringQuery):
            self._on_query(frame)
        elif isinstance(frame, LoadReport):
            self._measured_loads[frame.ap_id] = frame.load
        else:
            raise TypeError(
                f"controller {self.controller_id}: unexpected frame {frame!r}"
            )

    def _on_query(self, frame: SteeringQuery) -> None:
        states = self.snapshot_states()
        rssi = dict(frame.rssi_report) if frame.rssi_report else None
        target = self.strategy.select(frame.station_id, states, rssi=rssi)
        if target not in self.aps:
            raise RuntimeError(
                f"strategy {self.strategy.name} chose unknown AP {target!r}"
            )
        self.decisions += 1
        tracer = get_tracer()
        if tracer.enabled:
            # Same provenance as the replay engine, but the prototype runs
            # in wall time: sim_time is null and the batch id counts
            # steering queries.
            scores = self.strategy.score_candidates(
                frame.station_id, states, rssi=rssi
            )
            tracer.decision(
                DecisionRecord(
                    user_id=frame.station_id,
                    strategy=self.strategy.name,
                    controller_id=self.controller_id,
                    batch_id=f"query#{self.decisions}",
                    sim_time=None,
                    chosen=target,
                    candidates=candidates_from_states(states, scores),
                    mode="query",
                )
            )
        self.bus.send(
            RedirectDirective(
                src=self.endpoint,
                dst=f"ap:{frame.via_ap}",
                station_id=frame.station_id,
                target_ap=target,
            )
        )

    # -------------------------------------------------------------- helpers

    def snapshot_states(self) -> List[APState]:
        """AP states as the controller knows them: fresh association
        tables, last-reported loads."""
        states = []
        for ap_id in sorted(self.aps):
            daemon = self.aps[ap_id]
            states.append(
                APState(
                    ap_id=ap_id,
                    bandwidth=daemon.info.bandwidth,
                    load=self._measured_loads[ap_id],
                    users=tuple(sorted(daemon.associations)),
                )
            )
        return states

    def poll_loads(self) -> None:
        """Trigger a load report from every AP (the measurement cycle)."""
        for ap_id in sorted(self.aps):
            self.aps[ap_id].report_load()
