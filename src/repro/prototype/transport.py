"""In-memory message bus with simulated delivery latency.

Endpoints register a handler under a unique name; ``send`` schedules the
handler invocation on the shared :class:`~repro.sim.kernel.Simulator`
after a per-link latency.  Broadcast domains (a station's radio range) are
expressed by the caller sending one frame per receiver — the bus stays a
dumb, reliable, ordered channel, which is all the control-plane emulation
needs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.prototype.messages import Frame
from repro.sim.kernel import Simulator

Handler = Callable[[Frame], None]

#: Default one-way delivery latency, seconds (a LAN/radio hop).
DEFAULT_LATENCY = 0.002


class MessageBus:
    """Reliable, ordered, latency-delayed frame delivery."""

    def __init__(self, sim: Simulator, latency: float = DEFAULT_LATENCY) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self.sim = sim
        self.latency = latency
        self._endpoints: Dict[str, Handler] = {}
        self.frames_delivered = 0
        #: Optional transcript of (time, frame) pairs for debugging/tests.
        self.transcript: List[Tuple[float, Frame]] = []
        self.record_transcript = False

    def register(self, name: str, handler: Handler) -> None:
        """Attach an endpoint; names must be unique."""
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already registered")
        self._endpoints[name] = handler

    def unregister(self, name: str) -> None:
        """Detach an endpoint; in-flight frames to it are dropped."""
        if name not in self._endpoints:
            raise KeyError(f"endpoint {name!r} not registered")
        del self._endpoints[name]

    def is_registered(self, name: str) -> bool:
        """True when the endpoint is attached."""
        return name in self._endpoints

    def send(self, frame: Frame, latency: Optional[float] = None) -> None:
        """Schedule delivery of ``frame`` to ``frame.dst``.

        Sending to an unregistered endpoint raises immediately — a typo'd
        destination is a bug, not a lost packet.
        """
        if frame.dst not in self._endpoints:
            raise KeyError(f"no endpoint {frame.dst!r} on the bus")
        delay = self.latency if latency is None else latency

        def deliver() -> None:
            # The endpoint may have deregistered between send and delivery
            # (station left); that is a legitimate race, drop silently.
            handler = self._endpoints.get(frame.dst)
            if handler is None:
                return
            self.frames_delivered += 1
            if self.record_transcript:
                self.transcript.append((self.sim.now, frame))
            handler(frame)

        self.sim.schedule_after(delay, deliver, name=f"deliver-{type(frame).__name__}")
