"""In-memory message bus with simulated delivery latency.

Endpoints register a handler under a unique name; ``send`` schedules the
handler invocation on the shared :class:`~repro.sim.kernel.Simulator`
after a per-link latency.  Broadcast domains (a station's radio range) are
expressed by the caller sending one frame per receiver — the bus stays a
dumb, ordered channel, which is all the control-plane emulation needs.

The channel is reliable by default.  Handing the bus a
:class:`LinkPolicy` makes it lossy on purpose: the policy decides, per
frame, whether it is dropped, delayed beyond the base latency, or
duplicated.  :class:`FaultyLink` is the stock policy — it interprets the
``frame-loss`` / ``frame-delay`` / ``frame-duplicate`` windows of a
:class:`~repro.faults.model.FaultPlan` with draws from a caller-supplied
generator, so two runs with the same plan, seed and frame sequence
misbehave identically.  Every non-delivery is counted, never silent:
``frames_dropped`` (policy drops), ``drops_unregistered`` (endpoint left
between send and delivery) and ``drops_unknown_destination`` (send to a
never-registered endpoint under a fault plan; without a policy that stays
an immediate ``KeyError``, because a typo'd destination is a bug).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.faults.model import (
    LINK_KINDS,
    FaultEvent,
    FaultPlan,
    FrameDelay,
    FrameDuplicate,
    FrameLoss,
    event_sort_key,
)
from repro.prototype.messages import Frame
from repro.sim.kernel import Simulator

Handler = Callable[[Frame], None]

#: The fault-event kinds a link policy interprets (all carry a window).
LinkEvent = Union[FrameLoss, FrameDelay, FrameDuplicate]

#: Default one-way delivery latency, seconds (a LAN/radio hop).
DEFAULT_LATENCY = 0.002


class LinkPolicy:
    """Per-frame verdicts for a deliberately unreliable link.

    :meth:`decide` returns the extra delays (seconds beyond the bus
    latency) of every copy to deliver: ``[]`` drops the frame, ``[0.0]``
    is normal delivery, and each further element is a duplicate copy.
    Implementations must be deterministic for a fixed frame sequence —
    draw only from generators handed in by the caller.
    """

    def decide(self, frame: Frame, now: float) -> List[float]:
        """Extra delivery delays for ``frame`` sent at ``now``."""
        raise NotImplementedError


class FaultyLink(LinkPolicy):
    """The stock policy: a fault plan's link windows, seeded draws.

    Only the plan's ``frame-loss`` / ``frame-delay`` / ``frame-duplicate``
    events apply; a window is active while ``time <= now < time +
    duration``.  For each active window, in plan order, one uniform draw
    decides whether it fires: a firing loss window drops the frame (no
    further draws), firing delay windows add their ``delay``, and each
    firing duplicate window adds one extra copy.  The generator should be
    a dedicated fault stream (``streams.child("faults").get("link")``) so
    link draws never perturb workload draws.
    """

    def __init__(self, events: Iterable[FaultEvent], rng: Any) -> None:
        ordered: List[LinkEvent] = []
        for event in sorted(events, key=event_sort_key):
            if not isinstance(event, (FrameLoss, FrameDelay, FrameDuplicate)):
                raise ValueError(
                    f"{event.kind!r} is not a link fault; FaultyLink takes "
                    f"only {sorted(LINK_KINDS)}"
                )
            ordered.append(event)
        self.events: Tuple[LinkEvent, ...] = tuple(ordered)
        self.rng = rng

    @classmethod
    def from_plan(cls, plan: FaultPlan, rng: Any) -> "FaultyLink":
        """Build the policy from a plan's link-kind events."""
        return cls(plan.of_kinds(LINK_KINDS), rng)

    def _active(self, now: float) -> Tuple[LinkEvent, ...]:
        return tuple(
            event
            for event in self.events
            if event.time <= now < event.time + event.duration
        )

    def decide(self, frame: Frame, now: float) -> List[float]:
        """See :class:`LinkPolicy`; one draw per active window."""
        extra = 0.0
        copies = 1
        for event in self._active(now):
            draw = float(self.rng.random())
            if isinstance(event, FrameLoss):
                if draw < event.probability:
                    return []
            elif isinstance(event, FrameDelay):
                if draw < event.probability:
                    extra += event.delay
            elif isinstance(event, FrameDuplicate):
                if draw < event.probability:
                    copies += 1
        return [extra] * copies


class MessageBus:
    """Ordered, latency-delayed frame delivery (reliable unless told not
    to be)."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = DEFAULT_LATENCY,
        link_policy: Optional[LinkPolicy] = None,
    ) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self.sim = sim
        self.latency = latency
        self.link_policy = link_policy
        self._endpoints: Dict[str, Handler] = {}
        self.frames_delivered = 0
        #: Frames the link policy dropped outright.
        self.frames_dropped = 0
        #: Frames whose primary copy arrived later than the base latency.
        self.frames_delayed = 0
        #: Extra copies delivered beyond each frame's primary copy.
        self.frames_duplicated = 0
        #: Frames lost to the send/delivery deregistration race.
        self.drops_unregistered = 0
        #: Sends to a never-registered endpoint, absorbed under a policy.
        self.drops_unknown_destination = 0
        #: Optional transcript of (time, frame) pairs for debugging/tests.
        self.transcript: List[Tuple[float, Frame]] = []
        self.record_transcript = False

    def register(self, name: str, handler: Handler) -> None:
        """Attach an endpoint; names must be unique."""
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already registered")
        self._endpoints[name] = handler

    def unregister(self, name: str) -> None:
        """Detach an endpoint; in-flight frames to it become counted
        ``drops_unregistered``."""
        if name not in self._endpoints:
            raise KeyError(f"endpoint {name!r} not registered")
        del self._endpoints[name]

    def is_registered(self, name: str) -> bool:
        """True when the endpoint is attached."""
        return name in self._endpoints

    def send(self, frame: Frame, latency: Optional[float] = None) -> None:
        """Schedule delivery of ``frame`` to ``frame.dst``.

        Without a link policy, sending to an unregistered endpoint raises
        immediately — a typo'd destination is a bug, not a lost packet.
        Under a policy (a fault plan is in force, endpoints may genuinely
        be gone) it becomes a counted ``drops_unknown_destination``.
        """
        if frame.dst not in self._endpoints:
            if self.link_policy is None:
                raise KeyError(f"no endpoint {frame.dst!r} on the bus")
            self.drops_unknown_destination += 1
            return
        delay = self.latency if latency is None else latency
        extras = (
            [0.0]
            if self.link_policy is None
            else self.link_policy.decide(frame, self.sim.now)
        )
        if not extras:
            self.frames_dropped += 1
            return
        if extras[0] > 0:
            self.frames_delayed += 1
        self.frames_duplicated += len(extras) - 1

        def deliver() -> None:
            # The endpoint may have deregistered between send and delivery
            # (station left); that is a legitimate race, counted not raised.
            handler = self._endpoints.get(frame.dst)
            if handler is None:
                self.drops_unregistered += 1
                return
            self.frames_delivered += 1
            if self.record_transcript:
                self.transcript.append((self.sim.now, frame))
            handler(frame)

        for extra in extras:
            self.sim.schedule_after(
                delay + extra, deliver, name=f"deliver-{type(frame).__name__}"
            )
