"""Typed frames of the prototype's control plane.

The frame set mirrors the 802.11 management exchange a lightweight-AP
deployment uses, plus the AP <-> controller steering messages (CAPWAP-like)
that let the controller direct a station to the AP the selection strategy
chose.  Frames are immutable dataclasses; the bus delivers them verbatim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

_SEQ = itertools.count(1)


def next_frame_id() -> int:
    """Allocate the next globally unique frame id."""
    return next(_SEQ)


@dataclass(frozen=True)
class Frame:
    """Base class: source/destination endpoint names plus a unique id."""

    src: str
    dst: str
    frame_id: int = field(default_factory=next_frame_id)


# ----------------------------------------------------------- station <-> AP


@dataclass(frozen=True)
class ProbeRequest(Frame):
    """Station scanning: broadcast to every AP in radio range."""

    station_id: str = ""


@dataclass(frozen=True)
class ProbeResponse(Frame):
    """AP's beacon answer, carrying the signal strength the station sees."""

    ap_id: str = ""
    rssi_dbm: float = 0.0


@dataclass(frozen=True)
class AuthRequest(Frame):
    """Open-system authentication request."""
    station_id: str = ""


@dataclass(frozen=True)
class AuthResponse(Frame):
    """Authentication verdict from the AP."""
    ap_id: str = ""
    success: bool = True


@dataclass(frozen=True)
class AssocRequest(Frame):
    """Association request; the AP relays it to its controller."""

    station_id: str = ""
    #: RSSI map the station gathered while scanning, forwarded so the
    #: controller can steer signal-aware strategies.
    rssi_report: Tuple[Tuple[str, float], ...] = ()


@dataclass(frozen=True)
class AssocResponse(Frame):
    """Final answer to the station.

    ``accepted`` with ``ap_id == the asked AP`` completes association
    there; ``redirect_to`` names the AP the controller's strategy chose
    instead (the station then re-associates with that AP).
    """

    ap_id: str = ""
    accepted: bool = True
    redirect_to: Optional[str] = None


@dataclass(frozen=True)
class Disassociation(Frame):
    """Station leaving its AP."""
    station_id: str = ""


# ------------------------------------------------------- AP <-> controller


@dataclass(frozen=True)
class SteeringQuery(Frame):
    """AP asks the controller where an associating station belongs."""

    station_id: str = ""
    via_ap: str = ""
    rssi_report: Tuple[Tuple[str, float], ...] = ()


@dataclass(frozen=True)
class RedirectDirective(Frame):
    """Controller's verdict for a steering query."""

    station_id: str = ""
    target_ap: str = ""


@dataclass(frozen=True)
class LoadReport(Frame):
    """Periodic AP load report (the measured-load poll of the replay
    engine, as an explicit message here)."""

    ap_id: str = ""
    load: float = 0.0
    user_count: int = 0
