"""The assembled prototype testbed and the feasibility demo.

:class:`Testbed` wires one controller domain — APs, controller with a
selection strategy, a message bus on a shared simulation kernel — and
offers station lifecycle helpers.  :func:`run_feasibility_demo` is the
paper's Section-V prototype experiment in miniature: a wave of stations
joins (with the S³ strategy steering them), traffic flows, a social group
leaves together, and the report verifies that

* every station completed the handshake (feasibility),
* the controller made one decision per association,
* redirects stayed within protocol bounds, and
* the post-co-leave balance stayed high (the design goal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.balance import normalized_balance_index
from repro.prototype.ap_daemon import APDaemon
from repro.prototype.controller_daemon import ControllerDaemon
from repro.prototype.station import Station
from repro.prototype.transport import LinkPolicy, MessageBus
from repro.sim.kernel import Simulator
from repro.trace.social import CampusLayout
from repro.wlan.radio import sample_position
from repro.wlan.strategies import SelectionStrategy


class Testbed:
    """One controller domain as live daemons on a message bus."""

    # Not a pytest test class, despite the name (pytest collects Test*).
    __test__ = False

    def __init__(
        self,
        layout: CampusLayout,
        building_id: str,
        strategy: SelectionStrategy,
        latency: float = 0.002,
        link_policy: Optional[LinkPolicy] = None,
    ) -> None:
        self.layout = layout
        self.building_id = building_id
        self.sim = Simulator()
        self.bus = MessageBus(self.sim, latency=latency, link_policy=link_policy)
        building = layout.buildings[building_id]
        self.aps: List[APDaemon] = [
            APDaemon(info, self.bus, controller_endpoint=f"ctrl:{building.controller_id}")
            for info in layout.aps_of_building(building_id)
        ]
        self.controller = ControllerDaemon(
            building.controller_id, self.aps, strategy, self.bus
        )
        self.stations: Dict[str, Station] = {}

    def add_station(
        self, station_id: str, rng: Optional[np.random.Generator] = None
    ) -> Station:
        """Create a station at a random position in the building."""
        rng = rng if rng is not None else np.random.default_rng(0)
        position = sample_position(self.layout.buildings[self.building_id], rng)
        station = Station(
            station_id,
            position,
            self.layout.aps_of_building(self.building_id),
            self.bus,
        )
        self.stations[station_id] = station
        return station

    def join_at(self, station_id: str, time: float) -> None:
        """Schedule the station's scan (and thus join) at ``time``."""
        station = self.stations[station_id]
        self.sim.schedule(time, station.scan, name=f"scan-{station_id}")

    def leave_at(self, station_id: str, time: float) -> None:
        """Schedule the station's disassociation at the given time."""
        station = self.stations[station_id]
        self.sim.schedule(time, station.leave, name=f"leave-{station_id}")

    def poll_loads_every(self, interval: float) -> None:
        """Schedule periodic AP load reports to the controller."""
        self.sim.every(interval, self.controller.poll_loads, name="load-poll")

    def run(self, until: float) -> None:
        """Drive the simulation until the given time."""
        self.sim.run(until=until)

    # -------------------------------------------------------------- queries

    def association_counts(self) -> Dict[str, int]:
        """Current station count per AP."""
        return {ap.info.ap_id: ap.user_count for ap in self.aps}

    def balance_of_counts(self) -> float:
        """Normalized balance index of the association counts."""
        return normalized_balance_index(
            [ap.user_count for ap in self.aps]
        )


@dataclass
class TestbedReport:
    """Outcome of the feasibility demo."""

    __test__ = False  # pytest: not a test class despite the Test* name

    stations_joined: int
    stations_total: int
    decisions: int
    redirects: int
    frames_delivered: int
    association_counts_before_leave: Dict[str, int]
    association_counts_after_leave: Dict[str, int]
    balance_after_leave: float

    @property
    def all_joined(self) -> bool:
        """True when every station completed association."""
        return self.stations_joined == self.stations_total

    def render(self) -> str:
        """Human-readable multi-line report."""
        return "\n".join(
            [
                "Prototype feasibility report",
                f"  stations joined: {self.stations_joined}/{self.stations_total}",
                f"  controller decisions: {self.decisions}",
                f"  redirects: {self.redirects}",
                f"  frames on the bus: {self.frames_delivered}",
                f"  association counts before group leave: "
                f"{self.association_counts_before_leave}",
                f"  association counts after group leave: "
                f"{self.association_counts_after_leave}",
                f"  user-count balance after co-leave: "
                f"{self.balance_after_leave:.3f}",
            ]
        )


def run_feasibility_demo(
    strategy: SelectionStrategy,
    n_background: int = 12,
    group_size: int = 8,
    n_aps: int = 4,
    seed: int = 7,
) -> TestbedReport:
    """The Section-V prototype scenario on the message-level testbed."""
    layout = CampusLayout.grid(1, n_aps)
    building_id = sorted(layout.buildings)[0]
    testbed = Testbed(layout, building_id, strategy)
    rng = np.random.default_rng(seed)

    background = [f"bg{i:02d}" for i in range(n_background)]
    group = [f"grp{i:02d}" for i in range(group_size)]
    for i, station_id in enumerate(background):
        testbed.add_station(station_id, rng)
        testbed.join_at(station_id, 1.0 + 2.0 * i)
    for i, station_id in enumerate(group):
        testbed.add_station(station_id, rng)
        testbed.join_at(station_id, 40.0 + 1.5 * i)
    testbed.poll_loads_every(10.0)

    # Let everyone join, then snapshot, then the group co-leaves.
    testbed.run(until=100.0)
    counts_before = testbed.association_counts()
    for i, station_id in enumerate(group):
        testbed.leave_at(station_id, 100.5 + 0.1 * i)
    testbed.run(until=130.0)
    counts_after = testbed.association_counts()

    joined = sum(
        1
        for station in testbed.stations.values()
        if station.log.count("associated:") > 0
    )
    redirects = sum(
        station.log.count("redirected:") for station in testbed.stations.values()
    )
    return TestbedReport(
        stations_joined=joined,
        stations_total=len(testbed.stations),
        decisions=testbed.controller.decisions,
        redirects=redirects,
        frames_delivered=testbed.bus.frames_delivered,
        association_counts_before_leave=counts_before,
        association_counts_after_leave=counts_after,
        balance_after_leave=testbed.balance_of_counts(),
    )
