"""The lightweight-AP daemon of the prototype.

Responsibilities, matching a thin-AP architecture:

* answer probe requests with a probe response carrying the RSSI the
  station would see (computed from the radio model);
* answer authentication requests (always open-auth success here);
* relay association requests to the WLAN controller as a steering query
  and translate the controller's directive into the association response
  (accept here, or redirect to the AP the strategy chose);
* maintain the local association table and report it on demand.

Degradation contract: the controller is allowed to be slow, lossy or
gone.  Every steering query arms a simulation-clock timeout; an
unanswered query is retried up to ``max_query_retries`` times with
exponential backoff (``query_timeout * 2**attempt`` — pure clock
arithmetic, no random draws, so two same-seed runs degrade identically).
When the retries are exhausted the AP answers the station *locally* from
the RSSI report it already holds — strongest signal wins, the vendor
default S³ would replace — and counts the event in ``local_fallbacks``.
A controller endpoint that is not even on the bus (daemon crashed, no
link policy to absorb the send) is counted in ``controller_unreachable``
instead of raising out of the handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.prototype.messages import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Disassociation,
    Frame,
    LoadReport,
    ProbeRequest,
    ProbeResponse,
    RedirectDirective,
    SteeringQuery,
)
from repro.prototype.transport import MessageBus
from repro.sim.kernel import Event
from repro.trace.social import AccessPointInfo
from repro.wlan.radio import path_loss_rssi


@dataclass
class _PendingQuery:
    """One station's unanswered steering query."""

    rssi_report: Tuple[Tuple[str, float], ...]
    attempt: int
    timer: Optional[Event]


class APDaemon:
    """One AP endpoint on the bus."""

    def __init__(
        self,
        info: AccessPointInfo,
        bus: MessageBus,
        controller_endpoint: str,
        query_timeout: float = 0.5,
        max_query_retries: int = 2,
    ) -> None:
        if query_timeout <= 0:
            raise ValueError(f"query_timeout must be positive: {query_timeout!r}")
        if max_query_retries < 0:
            raise ValueError(
                f"max_query_retries must be >= 0: {max_query_retries!r}"
            )
        self.info = info
        self.bus = bus
        self.controller_endpoint = controller_endpoint
        self.query_timeout = query_timeout
        self.max_query_retries = max_query_retries
        #: station id -> offered rate (bytes/s); rate is set on association.
        self.associations: Dict[str, float] = {}
        #: station id -> in-flight steering query while the controller decides.
        self._pending: Dict[str, _PendingQuery] = {}
        #: Associations answered locally after the controller went silent.
        self.local_fallbacks = 0
        #: Steering queries re-sent after a timeout.
        self.query_retries = 0
        #: Sends that found no controller endpoint on the bus at all.
        self.controller_unreachable = 0
        bus.register(self.endpoint, self.handle)

    @property
    def endpoint(self) -> str:
        """This daemon's bus address."""
        return f"ap:{self.info.ap_id}"

    @property
    def load(self) -> float:
        """Aggregate offered load of associated stations (bytes/second)."""
        return sum(self.associations.values())

    @property
    def user_count(self) -> int:
        """Number of associated stations."""
        return len(self.associations)

    # ------------------------------------------------------------- handlers

    def handle(self, frame: Frame) -> None:
        """Dispatch one incoming frame."""
        if isinstance(frame, ProbeRequest):
            self._on_probe(frame)
        elif isinstance(frame, AuthRequest):
            self._on_auth(frame)
        elif isinstance(frame, AssocRequest):
            self._on_assoc(frame)
        elif isinstance(frame, RedirectDirective):
            self._on_directive(frame)
        elif isinstance(frame, Disassociation):
            self._on_disassociation(frame)
        else:
            raise TypeError(f"AP {self.info.ap_id}: unexpected frame {frame!r}")

    def _on_probe(self, frame: ProbeRequest) -> None:
        # Station position is encoded in the probe's src endpoint by the
        # Station object; the station computes its own RSSI when receiving
        # the response, so the AP just answers with its identity and a
        # nominal signal (stations overwrite it with the radio model).
        self.bus.send(
            ProbeResponse(
                src=self.endpoint,
                dst=frame.src,
                ap_id=self.info.ap_id,
                rssi_dbm=path_loss_rssi(1.0),
            )
        )

    def _on_auth(self, frame: AuthRequest) -> None:
        self.bus.send(
            AuthResponse(
                src=self.endpoint,
                dst=frame.src,
                ap_id=self.info.ap_id,
                success=True,
            )
        )

    def _on_assoc(self, frame: AssocRequest) -> None:
        # Thin AP: the controller decides.  Remember who asked so the
        # directive can be answered back to the right station.  A
        # retransmitted request (the station's own timeout fired while
        # this AP is still querying) must not reset the retry ladder.
        if frame.station_id in self._pending:
            return
        self._pending[frame.station_id] = _PendingQuery(
            rssi_report=frame.rssi_report, attempt=0, timer=None
        )
        self._send_query(frame.station_id)

    def _send_query(self, station_id: str) -> None:
        pending = self._pending[station_id]
        self._send_to_controller(
            SteeringQuery(
                src=self.endpoint,
                dst=self.controller_endpoint,
                station_id=station_id,
                via_ap=self.info.ap_id,
                rssi_report=pending.rssi_report,
            )
        )
        backoff = self.query_timeout * (2.0 ** pending.attempt)
        pending.timer = self.bus.sim.schedule_after(
            backoff,
            lambda: self._on_query_timeout(station_id),
            name=f"steer-timeout-{self.info.ap_id}-{station_id}",
        )

    def _on_query_timeout(self, station_id: str) -> None:
        pending = self._pending.get(station_id)
        if pending is None:
            return  # the directive arrived; stale timer
        pending.timer = None
        if pending.attempt < self.max_query_retries:
            pending.attempt += 1
            self.query_retries += 1
            self._send_query(station_id)
            return
        # Retries exhausted: answer locally.  Strongest signal from the
        # station's own scan report wins; this AP accepts when it is the
        # strongest (or the report is empty) and redirects otherwise, so
        # a whole building of silent-controller APs converges on plain
        # strongest-signal association.
        del self._pending[station_id]
        self.local_fallbacks += 1
        target = self._strongest_from_report(pending.rssi_report)
        self._answer_station(station_id, target)

    def _strongest_from_report(
        self, report: Tuple[Tuple[str, float], ...]
    ) -> str:
        if not report:
            return self.info.ap_id
        return max(report, key=lambda item: (item[1], item[0]))[0]

    def _answer_station(self, station_id: str, target_ap: str) -> None:
        station_endpoint = f"sta:{station_id}"
        if target_ap == self.info.ap_id:
            self.associations[station_id] = 0.0
            self.bus.send(
                AssocResponse(
                    src=self.endpoint,
                    dst=station_endpoint,
                    ap_id=self.info.ap_id,
                    accepted=True,
                )
            )
        else:
            self.bus.send(
                AssocResponse(
                    src=self.endpoint,
                    dst=station_endpoint,
                    ap_id=self.info.ap_id,
                    accepted=False,
                    redirect_to=target_ap,
                )
            )

    def _send_to_controller(self, frame: Frame) -> bool:
        """Send ``frame`` to the controller; False when it is off the bus."""
        try:
            self.bus.send(frame)
        except KeyError:
            self.controller_unreachable += 1
            return False
        return True

    def _on_directive(self, frame: RedirectDirective) -> None:
        pending = self._pending.pop(frame.station_id, None)
        if pending is None:
            return  # station gave up (or we already fell back) meanwhile
        if pending.timer is not None and not pending.timer.cancelled:
            pending.timer.cancel()
        self._answer_station(frame.station_id, frame.target_ap)

    def _on_disassociation(self, frame: Disassociation) -> None:
        self.associations.pop(frame.station_id, None)

    # --------------------------------------------------------------- extras

    def set_station_rate(self, station_id: str, rate: float) -> None:
        """Record the station's offered rate once traffic starts flowing."""
        if station_id not in self.associations:
            raise KeyError(
                f"station {station_id} not associated to {self.info.ap_id}"
            )
        if rate < 0:
            raise ValueError(f"negative rate {rate!r}")
        self.associations[station_id] = rate

    def report_load(self) -> LoadReport:
        """The periodic CAPWAP-style load report to the controller."""
        report = LoadReport(
            src=self.endpoint,
            dst=self.controller_endpoint,
            ap_id=self.info.ap_id,
            load=self.load,
            user_count=self.user_count,
        )
        self._send_to_controller(report)
        return report
