"""The lightweight-AP daemon of the prototype.

Responsibilities, matching a thin-AP architecture:

* answer probe requests with a probe response carrying the RSSI the
  station would see (computed from the radio model);
* answer authentication requests (always open-auth success here);
* relay association requests to the WLAN controller as a steering query
  and translate the controller's directive into the association response
  (accept here, or redirect to the AP the strategy chose);
* maintain the local association table and report it on demand.
"""

from __future__ import annotations

from typing import Dict

from repro.prototype.messages import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Disassociation,
    Frame,
    LoadReport,
    ProbeRequest,
    ProbeResponse,
    RedirectDirective,
    SteeringQuery,
)
from repro.prototype.transport import MessageBus
from repro.trace.social import AccessPointInfo
from repro.wlan.radio import path_loss_rssi

import numpy as np


class APDaemon:
    """One AP endpoint on the bus."""

    def __init__(
        self,
        info: AccessPointInfo,
        bus: MessageBus,
        controller_endpoint: str,
    ) -> None:
        self.info = info
        self.bus = bus
        self.controller_endpoint = controller_endpoint
        #: station id -> offered rate (bytes/s); rate is set on association.
        self.associations: Dict[str, float] = {}
        #: station id -> pending rate while the controller decides.
        self._pending: Dict[str, float] = {}
        bus.register(self.endpoint, self.handle)

    @property
    def endpoint(self) -> str:
        """This daemon's bus address."""
        return f"ap:{self.info.ap_id}"

    @property
    def load(self) -> float:
        """Aggregate offered load of associated stations (bytes/second)."""
        return sum(self.associations.values())

    @property
    def user_count(self) -> int:
        """Number of associated stations."""
        return len(self.associations)

    # ------------------------------------------------------------- handlers

    def handle(self, frame: Frame) -> None:
        """Dispatch one incoming frame."""
        if isinstance(frame, ProbeRequest):
            self._on_probe(frame)
        elif isinstance(frame, AuthRequest):
            self._on_auth(frame)
        elif isinstance(frame, AssocRequest):
            self._on_assoc(frame)
        elif isinstance(frame, RedirectDirective):
            self._on_directive(frame)
        elif isinstance(frame, Disassociation):
            self._on_disassociation(frame)
        else:
            raise TypeError(f"AP {self.info.ap_id}: unexpected frame {frame!r}")

    def _on_probe(self, frame: ProbeRequest) -> None:
        # Station position is encoded in the probe's src endpoint by the
        # Station object; the station computes its own RSSI when receiving
        # the response, so the AP just answers with its identity and a
        # nominal signal (stations overwrite it with the radio model).
        self.bus.send(
            ProbeResponse(
                src=self.endpoint,
                dst=frame.src,
                ap_id=self.info.ap_id,
                rssi_dbm=path_loss_rssi(1.0),
            )
        )

    def _on_auth(self, frame: AuthRequest) -> None:
        self.bus.send(
            AuthResponse(
                src=self.endpoint,
                dst=frame.src,
                ap_id=self.info.ap_id,
                success=True,
            )
        )

    def _on_assoc(self, frame: AssocRequest) -> None:
        # Thin AP: the controller decides.  Remember who asked so the
        # directive can be answered back to the right station.
        self._pending[frame.station_id] = 0.0
        self.bus.send(
            SteeringQuery(
                src=self.endpoint,
                dst=self.controller_endpoint,
                station_id=frame.station_id,
                via_ap=self.info.ap_id,
                rssi_report=frame.rssi_report,
            )
        )

    def _on_directive(self, frame: RedirectDirective) -> None:
        if frame.station_id not in self._pending:
            return  # station gave up in the meantime
        del self._pending[frame.station_id]
        station_endpoint = f"sta:{frame.station_id}"
        if frame.target_ap == self.info.ap_id:
            self.associations[frame.station_id] = 0.0
            self.bus.send(
                AssocResponse(
                    src=self.endpoint,
                    dst=station_endpoint,
                    ap_id=self.info.ap_id,
                    accepted=True,
                )
            )
        else:
            self.bus.send(
                AssocResponse(
                    src=self.endpoint,
                    dst=station_endpoint,
                    ap_id=self.info.ap_id,
                    accepted=False,
                    redirect_to=frame.target_ap,
                )
            )

    def _on_disassociation(self, frame: Disassociation) -> None:
        self.associations.pop(frame.station_id, None)

    # --------------------------------------------------------------- extras

    def set_station_rate(self, station_id: str, rate: float) -> None:
        """Record the station's offered rate once traffic starts flowing."""
        if station_id not in self.associations:
            raise KeyError(
                f"station {station_id} not associated to {self.info.ap_id}"
            )
        if rate < 0:
            raise ValueError(f"negative rate {rate!r}")
        self.associations[station_id] = rate

    def report_load(self) -> LoadReport:
        """The periodic CAPWAP-style load report to the controller."""
        report = LoadReport(
            src=self.endpoint,
            dst=self.controller_endpoint,
            ap_id=self.info.ap_id,
            load=self.load,
            user_count=self.user_count,
        )
        self.bus.send(report)
        return report
