"""Message-level feasibility prototype (Section V of the paper).

The paper validates S³ with "a small-scale prototype" — stations, APs and
a controller running the real association protocol with the S³ decision
logic in the controller.  The hardware testbed is replaced here by an
in-process, event-driven emulation of the same *control path*:

* stations broadcast probe requests and collect probe responses (with
  RSSI) from the APs of their building;
* the chosen AP relays the association request to its WLAN controller;
* the controller runs the pluggable selection strategy (S³ or a baseline)
  over live AP states and either accepts the association or *redirects*
  the station to the AP the strategy picked — exactly the controller-side
  steering a lightweight-AP architecture performs;
* the station completes authentication/association against the directed
  AP and later disassociates.

All messages are typed frames over an in-memory bus with simulated
latency, driven by the :mod:`repro.sim` kernel, so the prototype also
serves as an integration test of kernel + strategy + entities.
"""

from repro.prototype.messages import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Disassociation,
    Frame,
    ProbeRequest,
    ProbeResponse,
    RedirectDirective,
)
from repro.prototype.transport import FaultyLink, LinkPolicy, MessageBus
from repro.prototype.ap_daemon import APDaemon
from repro.prototype.controller_daemon import ControllerDaemon
from repro.prototype.station import Station, StationLog
from repro.prototype.testbed import Testbed, TestbedReport, run_feasibility_demo

__all__ = [
    "AssocRequest",
    "AssocResponse",
    "AuthRequest",
    "AuthResponse",
    "Disassociation",
    "Frame",
    "ProbeRequest",
    "ProbeResponse",
    "RedirectDirective",
    "FaultyLink",
    "LinkPolicy",
    "MessageBus",
    "APDaemon",
    "ControllerDaemon",
    "Station",
    "StationLog",
    "Testbed",
    "TestbedReport",
    "run_feasibility_demo",
]
