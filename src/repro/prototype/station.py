"""The station (client) side of the prototype handshake.

A station walks the full join sequence:

1. **scan** — probe every AP in its building, collect probe responses and
   compute the RSSI it would see via the radio model (the AP cannot know
   the station's path loss; the receiver measures it);
2. **join** — authenticate and associate against the strongest AP; if the
   controller redirects, re-run auth/assoc against the directed AP
   (at most ``max_redirects`` hops);
3. **leave** — disassociate.

Every state transition is recorded in :class:`StationLog`, which the
feasibility report inspects (e.g. "every station associated within N
frames and one redirect").

Degradation contract: an association request may be lost (link policy
drops it, or the AP never answers).  Each request arms a
simulation-clock timeout and is re-sent up to ``max_assoc_retries``
times with exponential backoff (``assoc_timeout * 2**attempt``); only
after the last retry expires does the station log
``association-failed``.  The backoff is pure clock arithmetic — no
random draws — so two same-seed runs retry at identical instants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.prototype.messages import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Disassociation,
    Frame,
    ProbeRequest,
    ProbeResponse,
)
from repro.prototype.transport import MessageBus
from repro.sim.kernel import Event
from repro.wlan.radio import rssi_map
from repro.trace.social import AccessPointInfo


@dataclass
class StationLog:
    """Chronological record of one station's protocol life."""

    events: List[Tuple[float, str]] = field(default_factory=list)

    def add(self, time: float, event: str) -> None:
        """Append one timestamped event."""
        self.events.append((time, event))

    def count(self, prefix: str) -> int:
        """Number of events whose label starts with the prefix."""
        return sum(1 for _, event in self.events if event.startswith(prefix))

    def last(self) -> Optional[str]:
        """The most recent event label, or None."""
        return self.events[-1][1] if self.events else None


class Station:
    """One client device."""

    def __init__(
        self,
        station_id: str,
        position: Tuple[float, float],
        visible_aps: List[AccessPointInfo],
        bus: MessageBus,
        max_redirects: int = 3,
        assoc_timeout: float = 2.0,
        max_assoc_retries: int = 2,
    ) -> None:
        if not visible_aps:
            raise ValueError(f"station {station_id} sees no APs")
        if assoc_timeout <= 0:
            raise ValueError(f"assoc_timeout must be positive: {assoc_timeout!r}")
        if max_assoc_retries < 0:
            raise ValueError(
                f"max_assoc_retries must be >= 0: {max_assoc_retries!r}"
            )
        self.station_id = station_id
        self.position = position
        self.visible_aps = {ap.ap_id: ap for ap in visible_aps}
        self.bus = bus
        self.max_redirects = max_redirects
        self.assoc_timeout = assoc_timeout
        self.max_assoc_retries = max_assoc_retries
        self.log = StationLog()
        self.rssi: Dict[str, float] = {}
        self.associated_ap: Optional[str] = None
        #: Association requests re-sent after a timeout.
        self.assoc_retries = 0
        self._redirects_left = max_redirects
        self._probing = False
        self._assoc_timer: Optional[Event] = None
        self._assoc_attempt = 0
        bus.register(self.endpoint, self.handle)

    @property
    def endpoint(self) -> str:
        """This station's bus address."""
        return f"sta:{self.station_id}"

    # --------------------------------------------------------------- states

    def handle(self, frame: Frame) -> None:
        """Dispatch one incoming frame."""
        if isinstance(frame, ProbeResponse):
            self._on_probe_response(frame)
        elif isinstance(frame, AuthResponse):
            self._on_auth_response(frame)
        elif isinstance(frame, AssocResponse):
            self._on_assoc_response(frame)
        else:
            raise TypeError(f"station {self.station_id}: unexpected {frame!r}")

    def scan(self) -> None:
        """Broadcast probes to every visible AP."""
        self._probing = True
        self.rssi = {}
        self.log.add(self.bus.sim.now, "scan")
        for ap_id in sorted(self.visible_aps):
            self.bus.send(
                ProbeRequest(
                    src=self.endpoint,
                    dst=f"ap:{ap_id}",
                    station_id=self.station_id,
                )
            )

    def _on_probe_response(self, frame: ProbeResponse) -> None:
        if not self._probing:
            return
        # Receiver-side RSSI: the station measures the signal of the
        # responding AP from its own position via the radio model.
        ap = self.visible_aps[frame.ap_id]
        measured = rssi_map(self.position, [ap])
        if frame.ap_id in measured:
            self.rssi[frame.ap_id] = measured[frame.ap_id]
        self.log.add(self.bus.sim.now, f"probe-response:{frame.ap_id}")
        if len(self.rssi) == len(self.visible_aps):
            self._probing = False
            self._begin_join(self._strongest_ap())

    def _strongest_ap(self) -> str:
        if not self.rssi:
            return sorted(self.visible_aps)[0]
        return max(self.rssi.items(), key=lambda item: (item[1], item[0]))[0]

    def _begin_join(self, ap_id: str) -> None:
        self.log.add(self.bus.sim.now, f"auth-request:{ap_id}")
        self.bus.send(
            AuthRequest(
                src=self.endpoint,
                dst=f"ap:{ap_id}",
                station_id=self.station_id,
            )
        )

    def _on_auth_response(self, frame: AuthResponse) -> None:
        if not frame.success:
            self.log.add(self.bus.sim.now, f"auth-failed:{frame.ap_id}")
            return
        self._assoc_attempt = 0
        self._send_assoc(frame.ap_id)

    def _send_assoc(self, ap_id: str) -> None:
        label = "assoc-request" if self._assoc_attempt == 0 else "assoc-resend"
        self.log.add(self.bus.sim.now, f"{label}:{ap_id}")
        self.bus.send(
            AssocRequest(
                src=self.endpoint,
                dst=f"ap:{ap_id}",
                station_id=self.station_id,
                rssi_report=tuple(sorted(self.rssi.items())),
            )
        )
        backoff = self.assoc_timeout * (2.0 ** self._assoc_attempt)
        self._assoc_timer = self.bus.sim.schedule_after(
            backoff,
            lambda: self._on_assoc_timeout(ap_id),
            name=f"assoc-timeout-{self.station_id}",
        )

    def _on_assoc_timeout(self, ap_id: str) -> None:
        self._assoc_timer = None
        if self.associated_ap is not None:
            return  # answered meanwhile; stale timer
        if self._assoc_attempt < self.max_assoc_retries:
            self._assoc_attempt += 1
            self.assoc_retries += 1
            self._send_assoc(ap_id)
            return
        self.log.add(self.bus.sim.now, "association-failed")

    def _cancel_assoc_timer(self) -> None:
        if self._assoc_timer is not None and not self._assoc_timer.cancelled:
            self._assoc_timer.cancel()
        self._assoc_timer = None

    def _on_assoc_response(self, frame: AssocResponse) -> None:
        self._cancel_assoc_timer()
        if frame.accepted:
            self.associated_ap = frame.ap_id
            self.log.add(self.bus.sim.now, f"associated:{frame.ap_id}")
            return
        if frame.redirect_to and self._redirects_left > 0:
            self._redirects_left -= 1
            self.log.add(
                self.bus.sim.now, f"redirected:{frame.ap_id}->{frame.redirect_to}"
            )
            self._begin_join(frame.redirect_to)
        else:
            self.log.add(self.bus.sim.now, "association-failed")

    def leave(self) -> None:
        """Disassociate from the current AP (no-op when not associated)."""
        if self.associated_ap is None:
            return
        self.log.add(self.bus.sim.now, f"disassociate:{self.associated_ap}")
        self.bus.send(
            Disassociation(
                src=self.endpoint,
                dst=f"ap:{self.associated_ap}",
                station_id=self.station_id,
            )
        )
        self.associated_ap = None
        self._redirects_left = self.max_redirects
