"""Synthetic campus-trace generation.

Turns a :class:`~repro.trace.social.SocialWorld` into the demand side of a
trace: who is on the WLAN, where, when, and with what per-realm traffic.
The generator reproduces the statistical phenomena the paper measures:

* **co-arrival / co-leaving** — members of a group attend the same slot;
  arrivals are loosely jittered, departures tightly jittered, so the bulk
  of a group disconnects within the paper's co-leaving windows;
* **diurnal load** — slot templates and the solo-session diurnal mixture
  put throughput peaks at mid-morning / mid-afternoon and departure peaks
  at 12-13, 16-17:50 and 21-22, matching Section III / V;
* **type-conditioned profiles** — a user's per-realm volumes follow their
  personal interest vector (a perturbation of their planted type), with
  day-to-day "mood" noise so that profile NMI *increases* with history
  (Fig. 6) instead of being trivially 1;
* **independent churn** — solo sessions arrive by a Poisson process and
  end independently, providing the non-social background.

The generator emits :class:`DemandSession` and :class:`FlowRecord` objects
only.  The *collected* :class:`SessionRecord` log additionally depends on
the AP-selection strategy in force; it is produced by replaying demands
through :mod:`repro.wlan.replay` (under LLF, to mirror the production
trace the paper collects).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.tracer import get_tracer
from repro.sim.rng import RandomStreams
from repro.sim.timeline import DAY, HOUR, MINUTE, weekday
from repro.trace.apps import (
    AppRealm,
    N_REALMS,
    REALMS,
    TrafficModel,
    applications_for_realm,
)
from repro.trace.records import DemandSession, FlowRecord, TraceBundle
from repro.trace.social import SocialWorld, WorldConfig, build_world


@dataclass
class GeneratorConfig:
    """All knobs of the synthetic trace generator."""

    world: WorldConfig = field(default_factory=WorldConfig)
    n_days: int = 28
    seed: int = 20120704  # the paper's trace starts 2012-07-04
    #: Multiplier on solo-session rate during weekends.
    weekend_factor: float = 0.45
    #: Mean solo-session duration (seconds) and lognormal sigma.
    solo_duration_mean: float = 75 * MINUTE
    solo_duration_sigma: float = 0.6
    #: Diurnal mixture for solo-session start times: (hour, weight, std-hours).
    solo_diurnal: Tuple[Tuple[float, float, float], ...] = (
        (9.5, 0.25, 1.2),
        (14.5, 0.30, 1.5),
        (20.0, 0.45, 1.8),
    )
    #: Dirichlet concentration of the per-day mood perturbation of a user's
    #: interest vector (lower = noisier daily profiles, lower single-day NMI).
    mood_concentration: float = 14.0
    #: Maximum flows emitted per (session, realm).
    max_flows_per_realm: int = 2
    #: Probability that a user skips campus entirely on a given day.
    absent_probability: float = 0.08

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        if not 0 <= self.absent_probability < 1:
            raise ValueError("absent_probability must be in [0, 1)")


class TraceGenerator:
    """Generates demand sessions + flow records for a social world."""

    def __init__(
        self,
        world: SocialWorld,
        config: GeneratorConfig,
        streams: Optional[RandomStreams] = None,
        traffic_model: Optional[TrafficModel] = None,
    ) -> None:
        self.world = world
        self.config = config
        self.streams = streams if streams is not None else RandomStreams(config.seed)
        self.traffic = traffic_model if traffic_model is not None else TrafficModel()
        self._flow_counter = itertools.count()

    # ----------------------------------------------------------- public API

    def generate(self) -> TraceBundle:
        """Generate the full trace for ``config.n_days`` days."""
        demands: List[DemandSession] = []
        flows: List[FlowRecord] = []
        with get_tracer().span(
            "trace.generate",
            sim_time=0.0,
            days=self.config.n_days,
            users=self.config.world.n_users,
        ) as span:
            for day in range(self.config.n_days):
                day_demands = self.generate_day(day)
                demands.extend(day_demands)
                for demand in day_demands:
                    flows.extend(self._flows_for(demand))
            span.sim_end = self.config.n_days * DAY
            span.set(demands=len(demands), flows=len(flows))
        return TraceBundle(demands=demands, flows=flows)

    def generate_day(self, day: int) -> List[DemandSession]:
        """Generate all demand sessions for calendar day ``day``."""
        rng = self.streams.get(f"day-{day}")
        dow = day % 7
        moods = self._daily_moods(day)
        absent = {
            uid
            for uid in self.world.users
            if rng.random() < self.config.absent_probability
        }
        demands: List[DemandSession] = []
        busy: Dict[str, List[Tuple[float, float]]] = {uid: [] for uid in self.world.users}

        # Group activities (workday slots) — the social demand.
        for group_id in sorted(self.world.groups):
            group = self.world.groups[group_id]
            for slot in group.slots:
                if slot.weekday != dow:
                    continue
                start = day * DAY + slot.start
                end = start + slot.duration
                for user_id in group.member_ids:
                    user = self.world.users[user_id]
                    if user_id in absent or rng.random() > user.attendance:
                        continue
                    arrival = start + abs(rng.normal(0.0, group.arrival_jitter))
                    departure = end + rng.normal(0.0, group.departure_jitter)
                    departure = max(departure, arrival + MINUTE)
                    if self._overlaps(busy[user_id], arrival, departure):
                        continue
                    busy[user_id].append((arrival, departure))
                    demands.append(
                        self._demand(
                            rng,
                            user_id,
                            group.building_id,
                            arrival,
                            departure,
                            moods[user_id],
                            group_id=group_id,
                        )
                    )

        # Solo sessions — the asocial background churn.
        rate_factor = 1.0 if dow < 5 else self.config.weekend_factor
        for user_id in sorted(self.world.users):
            if user_id in absent:
                continue
            user = self.world.users[user_id]
            count = rng.poisson(user.solo_rate * rate_factor)
            for _ in range(count):
                arrival = day * DAY + self._solo_start(rng)
                duration = rng.lognormal(
                    np.log(self.config.solo_duration_mean),
                    self.config.solo_duration_sigma,
                )
                departure = min(arrival + duration, (day + 1) * DAY - 1.0)
                if departure <= arrival:
                    continue
                if self._overlaps(busy[user_id], arrival, departure):
                    continue
                busy[user_id].append((arrival, departure))
                building = self._solo_building(rng, user.home_building)
                demands.append(
                    self._demand(
                        rng,
                        user_id,
                        building,
                        arrival,
                        departure,
                        moods[user_id],
                        group_id=None,
                    )
                )
        demands.sort(key=lambda d: (d.arrival, d.user_id))
        return demands

    # ------------------------------------------------------------ internals

    def _daily_moods(self, day: int) -> Dict[str, np.ndarray]:
        """Per-user interest vectors for the day (type interest x mood noise)."""
        rng = self.streams.get(f"mood-{day}")
        moods: Dict[str, np.ndarray] = {}
        for user_id in sorted(self.world.users):
            base = self.world.users[user_id].interest_vector()
            noisy = rng.dirichlet(self.config.mood_concentration * base + 0.05)
            moods[user_id] = noisy
        return moods

    @staticmethod
    def _overlaps(intervals: List[Tuple[float, float]], lo: float, hi: float) -> bool:
        return any(lo < b and hi > a for a, b in intervals)

    def _solo_start(self, rng: np.random.Generator) -> float:
        """Draw a seconds-since-midnight start from the diurnal mixture."""
        hours, weights, stds = zip(*self.config.solo_diurnal)
        weights = np.asarray(weights) / sum(weights)
        component = rng.choice(len(hours), p=weights)
        start = rng.normal(hours[component], stds[component]) * HOUR
        return float(np.clip(start, 6 * HOUR, 23.5 * HOUR))

    def _solo_building(self, rng: np.random.Generator, home: str) -> str:
        """Solo sessions happen mostly in the user's home building."""
        if rng.random() < 0.8:
            return home
        buildings = sorted(self.world.layout.buildings)
        return buildings[int(rng.integers(len(buildings)))]

    def _demand(
        self,
        rng: np.random.Generator,
        user_id: str,
        building_id: str,
        arrival: float,
        departure: float,
        mood: np.ndarray,
        group_id: Optional[str],
    ) -> DemandSession:
        volumes = self.traffic.sample_session_volumes(
            rng, mood, duration_seconds=departure - arrival
        )
        return DemandSession(
            user_id=user_id,
            building_id=building_id,
            arrival=float(arrival),
            departure=float(departure),
            realm_bytes=tuple(float(v) for v in volumes),
            group_id=group_id,
        )

    def _flows_for(self, demand: DemandSession) -> List[FlowRecord]:
        """Split a demand session's realm volumes into port-bearing flows."""
        rng = self.streams.get("flows")
        flows: List[FlowRecord] = []
        src_ip = _user_ip(demand.user_id)
        for realm in REALMS:
            volume = demand.realm_bytes[realm]
            if volume <= 0:
                continue
            apps = applications_for_realm(realm)
            n_flows = int(rng.integers(1, self.config.max_flows_per_realm + 1))
            shares = rng.dirichlet(np.ones(n_flows))
            for share in shares:
                app = apps[int(rng.integers(len(apps)))]
                dst_port = int(app.ports[int(rng.integers(len(app.ports)))])
                span = demand.duration
                if rng.random() < 0.85:
                    # Long-lived connection: spans essentially the whole
                    # session (streaming, P2P, persistent HTTP).  These are
                    # why a fixed user population shows a near-constant
                    # balance index (the paper's Fig. 3).
                    f_start = demand.arrival + rng.random() * 0.02 * span
                    f_end = demand.departure - rng.random() * 0.02 * span
                else:
                    # Bursty short flow somewhere inside the session.
                    f_start = demand.arrival + rng.random() * 0.5 * span
                    f_end = f_start + max(
                        1.0, rng.random() * (demand.departure - f_start)
                    )
                flows.append(
                    FlowRecord(
                        user_id=demand.user_id,
                        start=float(f_start),
                        end=float(min(f_end, demand.departure)),
                        src_ip=src_ip,
                        dst_ip=_server_ip(rng),
                        protocol=app.protocol,
                        src_port=int(rng.integers(32768, 61000)),
                        dst_port=dst_port,
                        bytes_total=float(volume * share),
                    )
                )
        return flows


def _user_ip(user_id: str) -> str:
    """A stable campus-subnet IP derived from the user id."""
    number = int(user_id.lstrip("u") or "0")
    return f"10.{(number >> 16) & 255}.{(number >> 8) & 255}.{number & 255}"


def _server_ip(rng: np.random.Generator) -> str:
    return (
        f"{int(rng.integers(11, 223))}.{int(rng.integers(0, 255))}."
        f"{int(rng.integers(0, 255))}.{int(rng.integers(1, 254))}"
    )


def generate_trace(
    config: Optional[GeneratorConfig] = None,
) -> Tuple[SocialWorld, TraceBundle]:
    """One-call convenience: build a world and generate its demand trace.

    The returned bundle carries demands and flows; to obtain the *collected*
    session log, replay the demands under a strategy with
    :func:`repro.wlan.replay.collect_trace`.
    """
    config = config if config is not None else GeneratorConfig()
    streams = RandomStreams(config.seed)
    world = build_world(config.world, streams)
    generator = TraceGenerator(world, config, streams=streams)
    return world, generator.generate()
