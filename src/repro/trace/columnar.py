"""Columnar session storage: the substrate of the numpy fast paths.

The paper mines pairwise social events from a 3-month, 12,374-user trace;
at that scale the per-record Python objects of
:class:`~repro.trace.records.SessionRecord` are the wrong shape for the
inner loops.  :class:`SessionArrays` transposes a session log once into
parallel numpy columns — integer user / AP codes plus float64
connect / disconnect timestamps — and caches the two sort orders every
churn consumer needs:

* ``by_ap_connect``      stable (ap, connect) order — the encounter sweep;
* ``by_ap_disconnect``   (ap, disconnect, user) order — co-leaving windows
  and per-user departure statistics (``by_ap_connect_user`` is the
  symmetric co-coming order).

Codes are assigned in sorted-id order, so comparing codes is exactly
comparing the original string ids — the fast paths canonicalize pairs
with integer comparisons and still produce the reference implementation's
``(smaller-id, larger-id)`` tuples.

Build the arrays once per trace (``TraceBundle.columns()`` memoizes) and
share them between ``extract_churn``, ``coleaving_fraction_per_user`` and
any future vectorized consumer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.records import SessionRecord

#: ``(order, starts, ends)`` — a permutation of the session indices plus
#: the half-open ``[starts[g], ends[g])`` slice of each AP group inside it.
GroupedOrder = Tuple[np.ndarray, np.ndarray, np.ndarray]


class SessionArrays:
    """An immutable columnar view of one session log."""

    __slots__ = (
        "user_ids",
        "ap_ids",
        "user",
        "ap",
        "connect",
        "disconnect",
        "_orders",
    )

    def __init__(
        self,
        user_ids: Sequence[str],
        ap_ids: Sequence[str],
        user: np.ndarray,
        ap: np.ndarray,
        connect: np.ndarray,
        disconnect: np.ndarray,
    ) -> None:
        self.user_ids: List[str] = list(user_ids)
        self.ap_ids: List[str] = list(ap_ids)
        self.user = np.asarray(user, dtype=np.intp)
        self.ap = np.asarray(ap, dtype=np.intp)
        self.connect = np.asarray(connect, dtype=np.float64)
        self.disconnect = np.asarray(disconnect, dtype=np.float64)
        n = self.user.shape[0]
        if not (
            self.ap.shape[0] == self.connect.shape[0]
            == self.disconnect.shape[0] == n
        ):
            raise ValueError("column lengths disagree")
        self._orders: Dict[str, GroupedOrder] = {}

    # ----------------------------------------------------------- construction

    @classmethod
    def from_sessions(cls, sessions: Sequence[SessionRecord]) -> "SessionArrays":
        """Transpose a session log into columns (one pass, O(n log n))."""
        n = len(sessions)
        user_table: Dict[str, int] = {}
        ap_table: Dict[str, int] = {}
        user = np.empty(n, dtype=np.intp)
        ap = np.empty(n, dtype=np.intp)
        connect = np.empty(n, dtype=np.float64)
        disconnect = np.empty(n, dtype=np.float64)
        for i, record in enumerate(sessions):
            code = user_table.get(record.user_id)
            if code is None:
                code = user_table[record.user_id] = len(user_table)
            user[i] = code
            code = ap_table.get(record.ap_id)
            if code is None:
                code = ap_table[record.ap_id] = len(ap_table)
            ap[i] = code
            connect[i] = record.connect
            disconnect[i] = record.disconnect
        # Re-code so code order == lexicographic id order; integer
        # comparisons on codes then match string comparisons on ids.
        user_ids = sorted(user_table)
        ap_ids = sorted(ap_table)
        user_remap = np.empty(len(user_table), dtype=np.intp)
        for rank, uid in enumerate(user_ids):
            user_remap[user_table[uid]] = rank
        ap_remap = np.empty(len(ap_table), dtype=np.intp)
        for rank, aid in enumerate(ap_ids):
            ap_remap[ap_table[aid]] = rank
        if n:
            user = user_remap[user]
            ap = ap_remap[ap]
        return cls(user_ids, ap_ids, user, ap, connect, disconnect)

    # -------------------------------------------------------------- basic API

    @property
    def n_sessions(self) -> int:
        """Number of session rows."""
        return int(self.user.shape[0])

    @property
    def n_users(self) -> int:
        """Number of distinct users."""
        return len(self.user_ids)

    @property
    def n_aps(self) -> int:
        """Number of distinct APs."""
        return len(self.ap_ids)

    def __len__(self) -> int:
        return self.n_sessions

    def __repr__(self) -> str:
        return (
            f"SessionArrays(sessions={self.n_sessions}, "
            f"users={self.n_users}, aps={self.n_aps})"
        )

    # ------------------------------------------------------------ sort orders

    def _grouped(self, keys: Tuple[np.ndarray, ...], cache_key: str) -> GroupedOrder:
        """Stable lexsort by ``(ap, *keys)`` plus per-AP group boundaries.

        ``np.lexsort`` is a chain of stable sorts, so rows with fully equal
        keys keep their original relative order — matching ``sorted`` /
        ``list.sort`` on the record objects.
        """
        cached = self._orders.get(cache_key)
        if cached is not None:
            return cached
        order = np.lexsort(tuple(reversed(keys)) + (self.ap,))
        ap_sorted = self.ap[order]
        if ap_sorted.size:
            boundaries = np.flatnonzero(np.diff(ap_sorted)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [ap_sorted.size]))
        else:
            starts = np.empty(0, dtype=np.intp)
            ends = np.empty(0, dtype=np.intp)
        grouped = (order, starts, ends)
        self._orders[cache_key] = grouped
        return grouped

    def by_ap_connect(self) -> GroupedOrder:
        """Stable (ap, connect) order — the encounter sweep's input order."""
        return self._grouped((self.connect,), "ap-connect")

    def by_ap_connect_user(self) -> GroupedOrder:
        """(ap, connect, user) order — co-coming windows."""
        return self._grouped((self.connect, self.user), "ap-connect-user")

    def by_ap_disconnect_user(self) -> GroupedOrder:
        """(ap, disconnect, user) order — co-leaving windows."""
        return self._grouped((self.disconnect, self.user), "ap-disconnect-user")

    # -------------------------------------------------------------- group AP

    def group_ap_ids(self, starts: np.ndarray, order: np.ndarray) -> List[str]:
        """The AP id of each group in a :data:`GroupedOrder`."""
        return [self.ap_ids[int(self.ap[order[s]])] for s in starts]


def as_session_arrays(
    sessions: "Sequence[SessionRecord] | SessionArrays",
    arrays: Optional[SessionArrays] = None,
) -> SessionArrays:
    """Coerce a record sequence (or pass through an existing columnar view)."""
    if arrays is not None:
        return arrays
    if isinstance(sessions, SessionArrays):
        return sessions
    return SessionArrays.from_sessions(sessions)
