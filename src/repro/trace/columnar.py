"""Columnar session storage: the substrate of the numpy fast paths.

The paper mines pairwise social events from a 3-month, 12,374-user trace;
at that scale the per-record Python objects of
:class:`~repro.trace.records.SessionRecord` are the wrong shape for the
inner loops.  :class:`SessionArrays` transposes a session log once into
parallel numpy columns — integer user / AP codes plus float64
connect / disconnect timestamps — and caches the two sort orders every
churn consumer needs:

* ``by_ap_connect``      stable (ap, connect) order — the encounter sweep;
* ``by_ap_disconnect``   (ap, disconnect, user) order — co-leaving windows
  and per-user departure statistics (``by_ap_connect_user`` is the
  symmetric co-coming order).

Codes are assigned in sorted-id order, so comparing codes is exactly
comparing the original string ids — the fast paths canonicalize pairs
with integer comparisons and still produce the reference implementation's
``(smaller-id, larger-id)`` tuples.

Build the arrays once per trace (``TraceBundle.columns()`` memoizes) and
share them between ``extract_churn``, ``coleaving_fraction_per_user`` and
any future vectorized consumer.

:class:`DemandArrays` and :class:`FlowArrays` are the matching columnar
transposes of the other two record families.  They exist for transport:
the sharded runtime (:mod:`repro.runtime.shm`) publishes a run's demand
stream into shared memory once as flat columns, and each worker slices
its controller-domain rows by index range (:meth:`DemandArrays.slice_rows`)
instead of unpickling a list of record objects.  Both round-trip exactly
— ``to_demands()`` / ``to_flows()`` reproduce the original records, field
for field (float64 round-trips through numpy losslessly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.trace.records import DemandSession, FlowRecord, SessionRecord

#: Row selectors accepted by the ``slice_rows`` helpers: a ``slice``, an
#: integer index array, or a boolean mask.
RowSelector = Union[slice, np.ndarray]


def _encode_table(values: Sequence[str]) -> Tuple[List[str], Dict[str, int]]:
    """A sorted id table plus the id -> code lookup for it."""
    table = sorted(set(values))
    return table, {value: code for code, value in enumerate(table)}

#: ``(order, starts, ends)`` — a permutation of the session indices plus
#: the half-open ``[starts[g], ends[g])`` slice of each AP group inside it.
GroupedOrder = Tuple[np.ndarray, np.ndarray, np.ndarray]


class SessionArrays:
    """An immutable columnar view of one session log."""

    __slots__ = (
        "user_ids",
        "ap_ids",
        "user",
        "ap",
        "connect",
        "disconnect",
        "_orders",
    )

    def __init__(
        self,
        user_ids: Sequence[str],
        ap_ids: Sequence[str],
        user: np.ndarray,
        ap: np.ndarray,
        connect: np.ndarray,
        disconnect: np.ndarray,
    ) -> None:
        self.user_ids: List[str] = list(user_ids)
        self.ap_ids: List[str] = list(ap_ids)
        self.user = np.asarray(user, dtype=np.intp)
        self.ap = np.asarray(ap, dtype=np.intp)
        self.connect = np.asarray(connect, dtype=np.float64)
        self.disconnect = np.asarray(disconnect, dtype=np.float64)
        n = self.user.shape[0]
        if not (
            self.ap.shape[0] == self.connect.shape[0]
            == self.disconnect.shape[0] == n
        ):
            raise ValueError("column lengths disagree")
        self._orders: Dict[str, GroupedOrder] = {}

    # ----------------------------------------------------------- construction

    @classmethod
    def from_sessions(cls, sessions: Sequence[SessionRecord]) -> "SessionArrays":
        """Transpose a session log into columns (one pass, O(n log n))."""
        n = len(sessions)
        user_table: Dict[str, int] = {}
        ap_table: Dict[str, int] = {}
        user = np.empty(n, dtype=np.intp)
        ap = np.empty(n, dtype=np.intp)
        connect = np.empty(n, dtype=np.float64)
        disconnect = np.empty(n, dtype=np.float64)
        for i, record in enumerate(sessions):
            code = user_table.get(record.user_id)
            if code is None:
                code = user_table[record.user_id] = len(user_table)
            user[i] = code
            code = ap_table.get(record.ap_id)
            if code is None:
                code = ap_table[record.ap_id] = len(ap_table)
            ap[i] = code
            connect[i] = record.connect
            disconnect[i] = record.disconnect
        # Re-code so code order == lexicographic id order; integer
        # comparisons on codes then match string comparisons on ids.
        user_ids = sorted(user_table)
        ap_ids = sorted(ap_table)
        user_remap = np.empty(len(user_table), dtype=np.intp)
        for rank, uid in enumerate(user_ids):
            user_remap[user_table[uid]] = rank
        ap_remap = np.empty(len(ap_table), dtype=np.intp)
        for rank, aid in enumerate(ap_ids):
            ap_remap[ap_table[aid]] = rank
        if n:
            user = user_remap[user]
            ap = ap_remap[ap]
        return cls(user_ids, ap_ids, user, ap, connect, disconnect)

    # -------------------------------------------------------------- basic API

    @property
    def n_sessions(self) -> int:
        """Number of session rows."""
        return int(self.user.shape[0])

    @property
    def n_users(self) -> int:
        """Number of distinct users."""
        return len(self.user_ids)

    @property
    def n_aps(self) -> int:
        """Number of distinct APs."""
        return len(self.ap_ids)

    def __len__(self) -> int:
        return self.n_sessions

    def __repr__(self) -> str:
        return (
            f"SessionArrays(sessions={self.n_sessions}, "
            f"users={self.n_users}, aps={self.n_aps})"
        )

    # ------------------------------------------------------------ sort orders

    def _grouped(self, keys: Tuple[np.ndarray, ...], cache_key: str) -> GroupedOrder:
        """Stable lexsort by ``(ap, *keys)`` plus per-AP group boundaries.

        ``np.lexsort`` is a chain of stable sorts, so rows with fully equal
        keys keep their original relative order — matching ``sorted`` /
        ``list.sort`` on the record objects.
        """
        cached = self._orders.get(cache_key)
        if cached is not None:
            return cached
        order = np.lexsort(tuple(reversed(keys)) + (self.ap,))
        ap_sorted = self.ap[order]
        if ap_sorted.size:
            boundaries = np.flatnonzero(np.diff(ap_sorted)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [ap_sorted.size]))
        else:
            starts = np.empty(0, dtype=np.intp)
            ends = np.empty(0, dtype=np.intp)
        grouped = (order, starts, ends)
        self._orders[cache_key] = grouped
        return grouped

    def by_ap_connect(self) -> GroupedOrder:
        """Stable (ap, connect) order — the encounter sweep's input order."""
        return self._grouped((self.connect,), "ap-connect")

    def by_ap_connect_user(self) -> GroupedOrder:
        """(ap, connect, user) order — co-coming windows."""
        return self._grouped((self.connect, self.user), "ap-connect-user")

    def by_ap_disconnect_user(self) -> GroupedOrder:
        """(ap, disconnect, user) order — co-leaving windows."""
        return self._grouped((self.disconnect, self.user), "ap-disconnect-user")

    # -------------------------------------------------------------- group AP

    def group_ap_ids(self, starts: np.ndarray, order: np.ndarray) -> List[str]:
        """The AP id of each group in a :data:`GroupedOrder`."""
        # One fancy-index per level instead of a Python loop over groups.
        codes = self.ap[order[np.asarray(starts, dtype=np.intp)]]
        table = np.asarray(self.ap_ids, dtype=object)
        return list(table[codes])

    # ---------------------------------------------------------------- slicing

    def slice_rows(self, rows: RowSelector) -> "SessionArrays":
        """A row-subset view sharing this instance's id tables.

        ``rows`` is a ``slice`` (a zero-copy view of the columns), an
        integer index array or a boolean mask.  Codes keep referring to
        the full tables, so sliced views compare and join consistently
        with the parent.
        """
        return SessionArrays(
            self.user_ids,
            self.ap_ids,
            self.user[rows],
            self.ap[rows],
            self.connect[rows],
            self.disconnect[rows],
        )


class DemandArrays:
    """A columnar transpose of a demand stream, built for transport.

    Codes are ``int64`` against sorted id tables (like
    :class:`SessionArrays`); ``group`` uses ``-1`` for demands without a
    ground-truth group.  ``realm_bytes`` is an ``(n, N_REALMS)`` float64
    matrix in :class:`~repro.trace.apps.AppRealm` order.
    ``to_demands()`` reproduces the original records field for field.
    """

    __slots__ = (
        "user_ids",
        "building_ids",
        "group_ids",
        "user",
        "building",
        "group",
        "arrival",
        "departure",
        "realm_bytes",
    )

    def __init__(
        self,
        user_ids: Sequence[str],
        building_ids: Sequence[str],
        group_ids: Sequence[str],
        user: np.ndarray,
        building: np.ndarray,
        group: np.ndarray,
        arrival: np.ndarray,
        departure: np.ndarray,
        realm_bytes: np.ndarray,
    ) -> None:
        self.user_ids: List[str] = list(user_ids)
        self.building_ids: List[str] = list(building_ids)
        self.group_ids: List[str] = list(group_ids)
        self.user = np.asarray(user, dtype=np.int64)
        self.building = np.asarray(building, dtype=np.int64)
        self.group = np.asarray(group, dtype=np.int64)
        self.arrival = np.asarray(arrival, dtype=np.float64)
        self.departure = np.asarray(departure, dtype=np.float64)
        self.realm_bytes = np.asarray(realm_bytes, dtype=np.float64)
        n = self.user.shape[0]
        if not (
            self.building.shape[0] == self.group.shape[0]
            == self.arrival.shape[0] == self.departure.shape[0]
            == self.realm_bytes.shape[0] == n
        ):
            raise ValueError("column lengths disagree")
        if self.realm_bytes.ndim != 2:
            raise ValueError("realm_bytes must be a 2-d matrix")

    # ----------------------------------------------------------- construction

    @classmethod
    def from_demands(cls, demands: Sequence[DemandSession]) -> "DemandArrays":
        """Transpose a demand stream into columns."""
        from repro.trace.apps import N_REALMS

        n = len(demands)
        user_ids, user_code = _encode_table([d.user_id for d in demands])
        building_ids, building_code = _encode_table(
            [d.building_id for d in demands]
        )
        group_ids, group_code = _encode_table(
            [d.group_id for d in demands if d.group_id is not None]
        )
        # Encode column-at-a-time: one list comprehension per column
        # plus a single C-level ``np.array`` conversion beats per-row
        # scattered stores (``realm_bytes[i] = ...`` pays a numpy
        # assignment per demand).  This runs on the publish path of
        # every sharded replay.
        user = np.array([user_code[d.user_id] for d in demands], dtype=np.int64)
        building = np.array(
            [building_code[d.building_id] for d in demands], dtype=np.int64
        )
        group = np.array(
            [
                -1 if d.group_id is None else group_code[d.group_id]
                for d in demands
            ],
            dtype=np.int64,
        )
        arrival = np.array([d.arrival for d in demands], dtype=np.float64)
        departure = np.array([d.departure for d in demands], dtype=np.float64)
        if n:
            realm_bytes = np.array(
                [d.realm_bytes for d in demands], dtype=np.float64
            )
        else:
            realm_bytes = np.empty((0, N_REALMS), dtype=np.float64)
        return cls(
            user_ids, building_ids, group_ids,
            user, building, group, arrival, departure, realm_bytes,
        )

    # -------------------------------------------------------------- basic API

    @property
    def n_rows(self) -> int:
        """Number of demand rows."""
        return int(self.user.shape[0])

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"DemandArrays(demands={self.n_rows}, users={len(self.user_ids)}, "
            f"buildings={len(self.building_ids)})"
        )

    # ---------------------------------------------------------------- slicing

    def slice_rows(self, rows: RowSelector) -> "DemandArrays":
        """A row subset sharing this instance's id tables."""
        return DemandArrays(
            self.user_ids,
            self.building_ids,
            self.group_ids,
            self.user[rows],
            self.building[rows],
            self.group[rows],
            self.arrival[rows],
            self.departure[rows],
            self.realm_bytes[rows],
        )

    def copy(self) -> "DemandArrays":
        """An owned deep copy (fresh arrays, no shared buffers).

        The worker attach path slices its rows out of a shared-memory
        segment and copies them, so the segment can be closed while the
        demand columns stay alive.  ``ndarray.copy()`` is unconditional —
        ``ascontiguousarray`` would pass a contiguous view through and
        leave it dangling once the segment unmaps.
        """
        return DemandArrays(
            list(self.user_ids),
            list(self.building_ids),
            list(self.group_ids),
            self.user.copy(),
            self.building.copy(),
            self.group.copy(),
            self.arrival.copy(),
            self.departure.copy(),
            self.realm_bytes.copy(),
        )

    # --------------------------------------------------------------- decoding

    def to_demands(self) -> List[DemandSession]:
        """Materialize the rows back into :class:`DemandSession` records.

        This is the worker-side hot path of the shared-memory transport
        (every shard materializes its row range once per run), so the
        decode is batched — ``tolist()`` converts each column to plain
        Python values in one C call — and records are built by direct
        ``__dict__`` assignment.  Skipping the frozen dataclass
        ``__init__`` also skips ``__post_init__`` validation, which is
        sound here: the columns came from records that were validated
        when they were first constructed.
        """
        user_ids = self.user_ids
        building_ids = self.building_ids
        group_ids = self.group_ids
        users = self.user.tolist()
        buildings = self.building.tolist()
        groups = self.group.tolist()
        arrivals = self.arrival.tolist()
        departures = self.departure.tolist()
        realms = self.realm_bytes.tolist()
        new = DemandSession.__new__
        out: List[DemandSession] = []
        append = out.append
        for i in range(self.n_rows):
            g = groups[i]
            record = new(DemandSession)
            record.__dict__.update({
                "user_id": user_ids[users[i]],
                "building_id": building_ids[buildings[i]],
                "arrival": arrivals[i],
                "departure": departures[i],
                "realm_bytes": tuple(realms[i]),
                "group_id": None if g < 0 else group_ids[g],
            })
            append(record)
        return out


#: protocol codes used by :class:`FlowArrays` (index == code).
FLOW_PROTOCOLS: Tuple[str, ...] = ("tcp", "udp")


class FlowArrays:
    """A columnar transpose of a flow log, built for transport.

    String ids (user, endpoint IPs) become ``int64`` codes against sorted
    tables; ``protocol`` is ``uint8`` against :data:`FLOW_PROTOCOLS`.
    ``to_flows()`` reproduces the original records field for field.
    """

    __slots__ = (
        "user_ids",
        "src_ips",
        "dst_ips",
        "user",
        "src_ip",
        "dst_ip",
        "protocol",
        "src_port",
        "dst_port",
        "start",
        "end",
        "bytes_total",
    )

    def __init__(
        self,
        user_ids: Sequence[str],
        src_ips: Sequence[str],
        dst_ips: Sequence[str],
        user: np.ndarray,
        src_ip: np.ndarray,
        dst_ip: np.ndarray,
        protocol: np.ndarray,
        src_port: np.ndarray,
        dst_port: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        bytes_total: np.ndarray,
    ) -> None:
        self.user_ids: List[str] = list(user_ids)
        self.src_ips: List[str] = list(src_ips)
        self.dst_ips: List[str] = list(dst_ips)
        self.user = np.asarray(user, dtype=np.int64)
        self.src_ip = np.asarray(src_ip, dtype=np.int64)
        self.dst_ip = np.asarray(dst_ip, dtype=np.int64)
        self.protocol = np.asarray(protocol, dtype=np.uint8)
        self.src_port = np.asarray(src_port, dtype=np.int64)
        self.dst_port = np.asarray(dst_port, dtype=np.int64)
        self.start = np.asarray(start, dtype=np.float64)
        self.end = np.asarray(end, dtype=np.float64)
        self.bytes_total = np.asarray(bytes_total, dtype=np.float64)
        n = self.user.shape[0]
        columns = (
            self.src_ip, self.dst_ip, self.protocol, self.src_port,
            self.dst_port, self.start, self.end, self.bytes_total,
        )
        if any(col.shape[0] != n for col in columns):
            raise ValueError("column lengths disagree")

    # ----------------------------------------------------------- construction

    @classmethod
    def from_flows(cls, flows: Sequence[FlowRecord]) -> "FlowArrays":
        """Transpose a flow log into columns."""
        n = len(flows)
        user_ids, user_code = _encode_table([f.user_id for f in flows])
        src_ips, src_code = _encode_table([f.src_ip for f in flows])
        dst_ips, dst_code = _encode_table([f.dst_ip for f in flows])
        user = np.empty(n, dtype=np.int64)
        src_ip = np.empty(n, dtype=np.int64)
        dst_ip = np.empty(n, dtype=np.int64)
        protocol = np.empty(n, dtype=np.uint8)
        src_port = np.empty(n, dtype=np.int64)
        dst_port = np.empty(n, dtype=np.int64)
        start = np.empty(n, dtype=np.float64)
        end = np.empty(n, dtype=np.float64)
        bytes_total = np.empty(n, dtype=np.float64)
        for i, flow in enumerate(flows):
            user[i] = user_code[flow.user_id]
            src_ip[i] = src_code[flow.src_ip]
            dst_ip[i] = dst_code[flow.dst_ip]
            protocol[i] = FLOW_PROTOCOLS.index(flow.protocol)
            src_port[i] = flow.src_port
            dst_port[i] = flow.dst_port
            start[i] = flow.start
            end[i] = flow.end
            bytes_total[i] = flow.bytes_total
        return cls(
            user_ids, src_ips, dst_ips,
            user, src_ip, dst_ip, protocol, src_port, dst_port,
            start, end, bytes_total,
        )

    # -------------------------------------------------------------- basic API

    @property
    def n_rows(self) -> int:
        """Number of flow rows."""
        return int(self.user.shape[0])

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return f"FlowArrays(flows={self.n_rows}, users={len(self.user_ids)})"

    # ---------------------------------------------------------------- slicing

    def slice_rows(self, rows: RowSelector) -> "FlowArrays":
        """A row subset sharing this instance's id tables."""
        return FlowArrays(
            self.user_ids,
            self.src_ips,
            self.dst_ips,
            self.user[rows],
            self.src_ip[rows],
            self.dst_ip[rows],
            self.protocol[rows],
            self.src_port[rows],
            self.dst_port[rows],
            self.start[rows],
            self.end[rows],
            self.bytes_total[rows],
        )

    # --------------------------------------------------------------- decoding

    def to_flows(self) -> List[FlowRecord]:
        """Materialize the rows back into :class:`FlowRecord` records."""
        out: List[FlowRecord] = []
        for i in range(self.n_rows):
            out.append(
                FlowRecord(
                    user_id=self.user_ids[int(self.user[i])],
                    start=float(self.start[i]),
                    end=float(self.end[i]),
                    src_ip=self.src_ips[int(self.src_ip[i])],
                    dst_ip=self.dst_ips[int(self.dst_ip[i])],
                    protocol=FLOW_PROTOCOLS[int(self.protocol[i])],
                    src_port=int(self.src_port[i]),
                    dst_port=int(self.dst_port[i]),
                    bytes_total=float(self.bytes_total[i]),
                )
            )
        return out


def as_session_arrays(
    sessions: "Sequence[SessionRecord] | SessionArrays",
    arrays: Optional[SessionArrays] = None,
) -> SessionArrays:
    """Coerce a record sequence (or pass through an existing columnar view)."""
    if arrays is not None:
        return arrays
    if isinstance(sessions, SessionArrays):
        return sessions
    return SessionArrays.from_sessions(sessions)
