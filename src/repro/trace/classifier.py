"""Port-combination heuristic application classifier.

Section III.A: "By analyzing the port combination using certain heuristics
[1], concrete applications can be accurately identified."  The classifier
here follows that approach: an exact (protocol, server-port) lookup built
from the shared application table, plus two fallback heuristics for flows
whose server port is not in the table:

* ephemeral-pair heuristic — both endpoints on high ports (>= 10000) with a
  symmetric port pattern is characteristic of P2P swarms;
* web fallback — tcp flows to low registered ports default to web-browsing,
  the realm that absorbs miscellaneous HTTP-tunnelled traffic.

Flows that match nothing are left unclassified (``None``); the analysis
layer drops them, matching the paper's "top 30 applications constitute the
vast majority" argument.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.trace.apps import AppRealm, N_REALMS, port_table
from repro.trace.records import FlowRecord


class PortClassifier:
    """Classify flows into the six application realms by port heuristics."""

    #: Ports >= this value are considered ephemeral / unregistered.
    EPHEMERAL_FLOOR = 10000

    def __init__(self, table: Optional[Mapping[Tuple[str, int], AppRealm]] = None) -> None:
        self._table: Dict[Tuple[str, int], AppRealm] = dict(
            table if table is not None else port_table()
        )

    def classify_ports(
        self, protocol: str, src_port: int, dst_port: int
    ) -> Optional[AppRealm]:
        """Realm for a (protocol, src, dst) port combination, or ``None``.

        The server-side (destination) port is authoritative; the source
        port is consulted only by the fallback heuristics.
        """
        realm = self._table.get((protocol, dst_port))
        if realm is not None:
            return realm
        # Heuristic 1: symmetric high-port pairs look like P2P swarm traffic.
        if src_port >= self.EPHEMERAL_FLOOR and dst_port >= self.EPHEMERAL_FLOOR:
            return AppRealm.P2P
        # Heuristic 2: tcp to a low registered port we do not know defaults
        # to web-browsing (HTTP-tunnelled long tail).
        if protocol == "tcp" and dst_port < 1024:
            return AppRealm.WEB
        return None

    def classify(self, flow: FlowRecord) -> Optional[AppRealm]:
        """Realm of one flow record, or ``None`` when unidentifiable."""
        return self.classify_ports(flow.protocol, flow.src_port, flow.dst_port)

    def classify_all(
        self, flows: Iterable[FlowRecord]
    ) -> List[Tuple[FlowRecord, Optional[AppRealm]]]:
        """Classify a batch, preserving order."""
        return [(flow, self.classify(flow)) for flow in flows]

    def realm_volumes(self, flows: Iterable[FlowRecord]) -> np.ndarray:
        """Total classified bytes per realm over ``flows`` (6-vector).

        Unclassified flows contribute nothing, mirroring the paper's
        restriction to the identified top applications.
        """
        volumes = np.zeros(N_REALMS)
        for flow in flows:
            realm = self.classify(flow)
            if realm is not None:
                volumes[realm] += flow.bytes_total
        return volumes

    def coverage(self, flows: Iterable[FlowRecord]) -> float:
        """Fraction of bytes the classifier can attribute to a realm.

        A sanity metric: on synthetic traces this should be close to 1.0
        because the generator emits ports from the shared table.
        """
        classified = 0.0
        total = 0.0
        for flow in flows:
            total += flow.bytes_total
            if self.classify(flow) is not None:
                classified += flow.bytes_total
        if total <= 0:
            return 1.0
        return classified / total
