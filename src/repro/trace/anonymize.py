"""SHA-based pseudonymization of user identifiers.

Section III.A: "all user identifiers are processed with hash functions
(e.g., SHA) to remove privacy concerns."  The same treatment is applied
here: a keyed SHA-256 digest replaces each user id, truncated to 16 hex
characters (collision probability negligible at campus scale), applied
consistently across every record family of a bundle so joins still work.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Dict, Iterable

from repro.trace.records import TraceBundle


def anonymize_user_id(user_id: str, salt: str = "s3-repro") -> str:
    """Deterministic pseudonym for one user id."""
    digest = hashlib.sha256(f"{salt}:{user_id}".encode("utf-8")).hexdigest()
    return digest[:16]


def build_pseudonym_table(user_ids: Iterable[str], salt: str = "s3-repro") -> Dict[str, str]:
    """Pseudonym mapping for a set of ids; raises on (astronomically
    unlikely) truncated-digest collisions rather than silently merging
    users."""
    table: Dict[str, str] = {}
    seen: Dict[str, str] = {}
    for user_id in user_ids:
        pseudonym = anonymize_user_id(user_id, salt=salt)
        if pseudonym in seen and seen[pseudonym] != user_id:
            raise ValueError(
                f"pseudonym collision between {user_id!r} and {seen[pseudonym]!r}"
            )
        seen[pseudonym] = user_id
        table[user_id] = pseudonym
    return table


def pseudonymize_bundle(bundle: TraceBundle, salt: str = "s3-repro") -> TraceBundle:
    """A new bundle with every user id replaced by its pseudonym."""
    table = build_pseudonym_table(bundle.user_ids, salt=salt)
    sessions = [replace(r, user_id=table[r.user_id]) for r in bundle.sessions]
    flows = [replace(r, user_id=table[r.user_id]) for r in bundle.flows]
    demands = [replace(r, user_id=table[r.user_id]) for r in bundle.demands]
    return TraceBundle(sessions=sessions, flows=flows, demands=demands)
