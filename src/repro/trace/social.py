"""The ground-truth social world behind the synthetic campus trace.

The paper's key empirical findings are *social*: users attend shared
activities (classes, meetings), arrive and — crucially — leave together,
and users of the same application-usage type co-leave far more often than
cross-type pairs (Table I).  This module models exactly that ground truth:

* :class:`CampusLayout` — buildings, one WLAN controller per building,
  several APs per building, with 2-D positions for the radio model;
* :class:`UserTypeProfile` — the four planted usage types whose centroids
  Fig. 8 recovers (web/IM, P2P, video, music/e-mail mixes);
* :class:`UserInfo` — a user: type, per-user interest vector (a Dirichlet
  perturbation of the type profile), home building, sociality level;
* :class:`SocialGroup` — a recurring activity group: members, venue
  building, weekly schedule slots, arrival / departure jitter (small
  departure jitter is what produces co-leaving events);
* :class:`SocialWorld` — the assembled world plus the
  :func:`build_world` constructor that wires users into groups with
  controllable type homogeneity.

None of the ground truth here is visible to the S³ pipeline: the algorithm
sees only logged records.  The ground truth exists so tests can verify that
the measurement toolkit *recovers* it (clusters ≈ planted types, affinity
matrix ≈ diagonal-dominant, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.rng import RandomStreams
from repro.sim.timeline import HOUR, MINUTE
from repro.trace.apps import N_REALMS


# --------------------------------------------------------------------- layout


@dataclass(frozen=True)
class AccessPointInfo:
    """One light-weight AP: identity, home building, position, capacity."""

    ap_id: str
    building_id: str
    controller_id: str
    position: Tuple[float, float]
    #: Nominal backhaul bandwidth in bytes/second (802.11n-era ~ 20 MB/s).
    bandwidth: float = 20e6


@dataclass(frozen=True)
class BuildingInfo:
    """One campus building: a controller domain with several APs."""

    building_id: str
    controller_id: str
    position: Tuple[float, float]
    ap_ids: Tuple[str, ...]


class CampusLayout:
    """The physical campus: buildings, controllers and APs.

    Mirrors Fig. 1 of the paper: light-weight APs grouped under WLAN
    controllers (one controller per building here), reporting to a central
    data center.
    """

    def __init__(self, buildings: Sequence[BuildingInfo], aps: Sequence[AccessPointInfo]):
        self.buildings: Dict[str, BuildingInfo] = {b.building_id: b for b in buildings}
        self.aps: Dict[str, AccessPointInfo] = {a.ap_id: a for a in aps}
        for ap in aps:
            if ap.building_id not in self.buildings:
                raise ValueError(f"AP {ap.ap_id} references unknown building")
        for building in buildings:
            for ap_id in building.ap_ids:
                if ap_id not in self.aps:
                    raise ValueError(f"building {building.building_id} lists unknown AP")

    @property
    def controller_ids(self) -> List[str]:
        """All controller ids, sorted."""
        return sorted({b.controller_id for b in self.buildings.values()})

    def aps_of_building(self, building_id: str) -> List[AccessPointInfo]:
        """The APs installed in one building."""
        building = self.buildings[building_id]
        return [self.aps[ap_id] for ap_id in building.ap_ids]

    def aps_of_controller(self, controller_id: str) -> List[AccessPointInfo]:
        """The APs of one controller domain, sorted by id."""
        return sorted(
            (a for a in self.aps.values() if a.controller_id == controller_id),
            key=lambda a: a.ap_id,
        )

    def controller_of_ap(self, ap_id: str) -> str:
        """The controller responsible for an AP."""
        return self.aps[ap_id].controller_id

    @staticmethod
    def grid(
        n_buildings: int,
        aps_per_building: int,
        spacing: float = 200.0,
        ap_bandwidth: float = 20e6,
    ) -> "CampusLayout":
        """A regular campus: buildings on a grid, APs on a ring inside each."""
        if n_buildings <= 0 or aps_per_building <= 0:
            raise ValueError("need at least one building and one AP per building")
        buildings: List[BuildingInfo] = []
        aps: List[AccessPointInfo] = []
        cols = int(np.ceil(np.sqrt(n_buildings)))
        for b in range(n_buildings):
            building_id = f"B{b:02d}"
            controller_id = f"ctrl-{building_id}"
            bx = (b % cols) * spacing
            by = (b // cols) * spacing
            ap_ids = []
            for a in range(aps_per_building):
                ap_id = f"ap-{building_id}-{a:02d}"
                angle = 2 * np.pi * a / aps_per_building
                pos = (bx + 30.0 * np.cos(angle), by + 30.0 * np.sin(angle))
                aps.append(
                    AccessPointInfo(
                        ap_id=ap_id,
                        building_id=building_id,
                        controller_id=controller_id,
                        position=pos,
                        bandwidth=ap_bandwidth,
                    )
                )
                ap_ids.append(ap_id)
            buildings.append(
                BuildingInfo(
                    building_id=building_id,
                    controller_id=controller_id,
                    position=(bx, by),
                    ap_ids=tuple(ap_ids),
                )
            )
        return CampusLayout(buildings, aps)


# ---------------------------------------------------------------------- types


@dataclass(frozen=True)
class UserTypeProfile:
    """A planted usage type: a name and a realm-interest mix.

    ``interests`` sums to 1; a user of this type draws a personal interest
    vector from ``Dirichlet(concentration * interests)``, so higher
    ``concentration`` means users hew closer to their type centroid.
    """

    name: str
    interests: Tuple[float, ...]
    concentration: float = 150.0

    def __post_init__(self) -> None:
        if len(self.interests) != N_REALMS:
            raise ValueError(f"expected {N_REALMS} interests, got {len(self.interests)}")
        total = sum(self.interests)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"interests must sum to 1, got {total}")
        if self.concentration <= 0:
            raise ValueError("concentration must be positive")

    def sample_interest(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one user's personal interest vector."""
        alpha = self.concentration * np.asarray(self.interests)
        # Dirichlet with small floor so no realm is exactly zero (keeps
        # entropies finite in the NMI analysis).
        return rng.dirichlet(alpha + 0.2)


#: The four planted types (Fig. 8 shape: each centroid dominated by a
#: distinct realm mix).  Order: IM, P2P, music, email, video, browsing.
DEFAULT_TYPE_PROFILES: Tuple[UserTypeProfile, ...] = (
    UserTypeProfile("chatty-browser", (0.28, 0.04, 0.07, 0.10, 0.13, 0.38)),
    UserTypeProfile("p2p-downloader", (0.05, 0.50, 0.06, 0.04, 0.18, 0.17)),
    UserTypeProfile("video-streamer", (0.06, 0.09, 0.07, 0.04, 0.54, 0.20)),
    UserTypeProfile("study-mailer", (0.10, 0.04, 0.33, 0.28, 0.05, 0.20)),
)


# ---------------------------------------------------------------------- users


@dataclass(frozen=True)
class UserInfo:
    """One campus user with ground-truth attributes."""

    user_id: str
    type_index: int
    home_building: str
    interest: Tuple[float, ...]
    #: Probability of attending any given scheduled group activity.
    attendance: float = 0.85
    #: Expected number of solo (non-group) sessions per workday.
    solo_rate: float = 0.8

    def interest_vector(self) -> np.ndarray:
        """The user's realm-interest distribution as a numpy vector."""
        return np.asarray(self.interest, dtype=float)


# --------------------------------------------------------------------- groups


@dataclass(frozen=True)
class ScheduleSlot:
    """One weekly recurring activity: weekday + start + duration."""

    weekday: int  # 0 = Monday ... 6 = Sunday
    start: float  # seconds since midnight
    duration: float  # seconds

    def __post_init__(self) -> None:
        if not 0 <= self.weekday <= 6:
            raise ValueError(f"weekday out of range: {self.weekday}")
        if not 0 <= self.start < 24 * HOUR:
            raise ValueError(f"start out of range: {self.start}")
        if self.duration <= 0:
            raise ValueError(f"non-positive duration: {self.duration}")


@dataclass(frozen=True)
class SocialGroup:
    """A recurring activity group (a class, lab meeting, club, ...).

    ``departure_jitter`` is deliberately much smaller than
    ``arrival_jitter``: people trickle in but the activity *ends* for
    everyone at once — that asymmetry is what creates the co-leaving
    events the paper observes.
    """

    group_id: str
    member_ids: Tuple[str, ...]
    building_id: str
    slots: Tuple[ScheduleSlot, ...]
    arrival_jitter: float = 4 * MINUTE
    departure_jitter: float = 75.0  # seconds

    def __post_init__(self) -> None:
        if not self.member_ids:
            raise ValueError(f"group {self.group_id} has no members")
        if not self.slots:
            raise ValueError(f"group {self.group_id} has no schedule")


#: Standard campus slot templates.  End times are aligned with the paper's
#: departure peaks (12:00-13:00, 16:00-17:50, 21:00-22:00) so the synthetic
#: trace exhibits bulk departures where the paper reports them.
CLASS_SLOT_TEMPLATES: Tuple[Tuple[float, float], ...] = (
    (8 * HOUR, 2 * HOUR),  # 08:00-10:00
    (10 * HOUR, 2 * HOUR),  # 10:00-12:00 -> ends in the 12-13 departure peak
    (13 * HOUR, 2 * HOUR),  # 13:00-15:00
    (15 * HOUR + 30 * MINUTE, 1.75 * HOUR),  # 15:30-17:15 -> 16:00-17:50 peak
    (19 * HOUR, 2.5 * HOUR),  # 19:00-21:30 -> 21-22 departure peak
)


# ---------------------------------------------------------------------- world


@dataclass
class SocialWorld:
    """The assembled ground truth: layout, users, types and groups."""

    layout: CampusLayout
    type_profiles: Tuple[UserTypeProfile, ...]
    users: Dict[str, UserInfo]
    groups: Dict[str, SocialGroup]

    def groups_of_user(self, user_id: str) -> List[SocialGroup]:
        """Every group the user belongs to."""
        return [g for g in self.groups.values() if user_id in g.member_ids]

    def type_of(self, user_id: str) -> int:
        """Ground-truth planted type of a user (validation only)."""
        return self.users[user_id].type_index

    def ground_truth_types(self) -> Dict[str, int]:
        """user id -> planted type index, for validation only."""
        return {uid: u.type_index for uid, u in self.users.items()}

    def summary(self) -> str:
        """One-line description of the world's scale."""
        return (
            f"SocialWorld(buildings={len(self.layout.buildings)}, "
            f"aps={len(self.layout.aps)}, users={len(self.users)}, "
            f"groups={len(self.groups)}, types={len(self.type_profiles)})"
        )


@dataclass
class WorldConfig:
    """Knobs for :func:`build_world`."""

    n_buildings: int = 6
    aps_per_building: int = 6
    n_users: int = 240
    n_groups: int = 36
    group_size_mean: float = 9.0
    group_size_min: int = 3
    group_size_max: int = 24
    #: Probability a group member shares the group's dominant type; the
    #: source of Table I's diagonal dominance.
    type_homogeneity: float = 0.85
    #: Fraction of groups with *loose* arrivals: members drift in over tens
    #: of minutes (study rooms, labs) yet still leave together when the
    #: activity ends.  Tight groups (classes) co-arrive within minutes.
    #: Loose groups are where arrival-based balancing fails hardest: the
    #: controller places each member against an unrelated load snapshot,
    #: so the group lands unevenly — and departs in unison.
    loose_group_fraction: float = 0.5
    #: Arrival jitter (std, seconds) for tight and loose groups.
    tight_arrival_jitter: float = 4 * 60.0
    loose_arrival_jitter: float = 28 * 60.0
    slots_per_group: int = 3
    ap_bandwidth: float = 20e6
    attendance: float = 0.85
    solo_rate: float = 0.8

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_groups <= 0:
            raise ValueError("need at least one user and one group")
        if not 0.0 <= self.type_homogeneity <= 1.0:
            raise ValueError("type_homogeneity must be a probability")
        if self.group_size_min < 2:
            raise ValueError("groups need at least two members to be social")


def build_world(
    config: WorldConfig,
    streams: RandomStreams,
    type_profiles: Sequence[UserTypeProfile] = DEFAULT_TYPE_PROFILES,
) -> SocialWorld:
    """Construct a random but reproducible social world.

    Users get a planted type and a personal interest vector; groups get a
    dominant type, members drawn mostly from that type (``type_homogeneity``)
    and a weekly schedule of campus slots in the group's home building.
    """
    rng = streams.get("world")
    layout = CampusLayout.grid(
        config.n_buildings, config.aps_per_building, ap_bandwidth=config.ap_bandwidth
    )
    building_ids = sorted(layout.buildings)
    n_types = len(type_profiles)

    users: Dict[str, UserInfo] = {}
    users_by_type: Dict[int, List[str]] = {t: [] for t in range(n_types)}
    for i in range(config.n_users):
        user_id = f"u{i:05d}"
        type_index = int(rng.integers(n_types))
        profile = type_profiles[type_index]
        interest = tuple(float(x) for x in profile.sample_interest(rng))
        home = building_ids[int(rng.integers(len(building_ids)))]
        users[user_id] = UserInfo(
            user_id=user_id,
            type_index=type_index,
            home_building=home,
            interest=interest,
            attendance=config.attendance,
            solo_rate=config.solo_rate,
        )
        users_by_type[type_index].append(user_id)

    groups: Dict[str, SocialGroup] = {}
    all_ids = sorted(users)
    for g in range(config.n_groups):
        group_id = f"g{g:04d}"
        dominant = int(rng.integers(n_types))
        size = int(
            np.clip(
                rng.poisson(config.group_size_mean),
                config.group_size_min,
                config.group_size_max,
            )
        )
        members: List[str] = []
        pool = users_by_type[dominant]
        for _ in range(size):
            if rng.random() < config.type_homogeneity and pool:
                candidate = pool[int(rng.integers(len(pool)))]
            else:
                candidate = all_ids[int(rng.integers(len(all_ids)))]
            if candidate not in members:
                members.append(candidate)
        if len(members) < 2:
            # Degenerate draw; force two distinct members.
            members = list(rng.choice(all_ids, size=2, replace=False))
        building = building_ids[int(rng.integers(len(building_ids)))]
        slot_count = max(1, int(rng.poisson(config.slots_per_group)))
        # Groups are staggered: a per-group offset (up to +/- half an hour,
        # five-minute granularity) shifts every slot, and durations vary by
        # +/-20%.  Without the stagger all groups would depart campus-wide
        # at the same instants and their per-AP craters would cancel out —
        # real timetables do not synchronize like that.
        group_offset = 5 * MINUTE * int(rng.integers(-6, 7))
        slots: List[ScheduleSlot] = []
        seen: set = set()
        for _ in range(slot_count):
            weekday = int(rng.integers(5))  # group activities on workdays
            template = CLASS_SLOT_TEMPLATES[int(rng.integers(len(CLASS_SLOT_TEMPLATES)))]
            key = (weekday, template[0])
            if key in seen:
                continue
            seen.add(key)
            start = float(np.clip(template[0] + group_offset, 7 * HOUR, 22 * HOUR))
            duration = float(template[1] * rng.uniform(0.8, 1.2))
            slots.append(
                ScheduleSlot(weekday=weekday, start=start, duration=duration)
            )
        if not slots:
            slots.append(ScheduleSlot(weekday=0, start=10 * HOUR, duration=2 * HOUR))
        loose = rng.random() < config.loose_group_fraction
        groups[group_id] = SocialGroup(
            group_id=group_id,
            member_ids=tuple(members),
            building_id=building,
            slots=tuple(slots),
            arrival_jitter=(
                config.loose_arrival_jitter if loose else config.tight_arrival_jitter
            ),
        )

    return SocialWorld(
        layout=layout,
        type_profiles=tuple(type_profiles),
        users=users,
        groups=groups,
    )
