"""The six application realms of the paper and their traffic models.

Section III.A of the paper examines the top-30 applications by traffic
volume and folds them into six realms: IM, P2P, music, e-mail, video and
web-browsing.  Applications are identified from core-router flow logs "by
analyzing the port combination using certain heuristics" (paper ref [1]).

This module defines:

* :class:`AppRealm` — the six realms, in the paper's order (Fig. 8 x-axis);
* the canonical application → (protocol, port) tables used both by the
  synthetic flow generator and by the :class:`~repro.trace.classifier.
  PortClassifier` that re-identifies realms from ports (the generator and
  the classifier must agree for the analysis pipeline to be end-to-end);
* :class:`TrafficModel` — lognormal per-session volume models per realm,
  used by the generator to size flows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np


class AppRealm(enum.IntEnum):
    """The paper's six application categories, in Fig. 8 order."""

    IM = 0
    P2P = 1
    MUSIC = 2
    EMAIL = 3
    VIDEO = 4
    WEB = 5

    @property
    def label(self) -> str:
        """Human-readable realm name (Fig. 8 axis label)."""
        return _LABELS[self]


_LABELS: Dict[AppRealm, str] = {
    AppRealm.IM: "IM",
    AppRealm.P2P: "P2P",
    AppRealm.MUSIC: "music",
    AppRealm.EMAIL: "email",
    AppRealm.VIDEO: "video",
    AppRealm.WEB: "browsing",
}

#: All realms in canonical order.
REALMS: Tuple[AppRealm, ...] = tuple(AppRealm)

#: Number of realms (the dimensionality of application-profile vectors).
N_REALMS: int = len(REALMS)


@dataclass(frozen=True)
class ApplicationSpec:
    """One concrete application: a name plus its identifying ports."""

    name: str
    realm: AppRealm
    protocol: str  # "tcp" or "udp"
    ports: Tuple[int, ...]


#: The concrete applications the synthetic campus runs.  Port numbers follow
#: the real-world services each application name suggests; what matters for
#: the reproduction is that the table is the *shared ground truth* between
#: flow generation and port-heuristic classification.
APPLICATIONS: Tuple[ApplicationSpec, ...] = (
    # IM
    ApplicationSpec("qq", AppRealm.IM, "udp", (8000, 4000)),
    ApplicationSpec("msn", AppRealm.IM, "tcp", (1863,)),
    ApplicationSpec("xmpp-chat", AppRealm.IM, "tcp", (5222, 5223)),
    ApplicationSpec("irc", AppRealm.IM, "tcp", (6667,)),
    # P2P
    ApplicationSpec("bittorrent", AppRealm.P2P, "tcp", (6881, 6882, 6883, 6889)),
    ApplicationSpec("emule", AppRealm.P2P, "tcp", (4662,)),
    ApplicationSpec("emule-kad", AppRealm.P2P, "udp", (4672,)),
    ApplicationSpec("xunlei", AppRealm.P2P, "tcp", (15000,)),
    # music
    ApplicationSpec("music-stream", AppRealm.MUSIC, "tcp", (8087,)),
    ApplicationSpec("shoutcast", AppRealm.MUSIC, "tcp", (8001,)),
    ApplicationSpec("daap", AppRealm.MUSIC, "tcp", (3689,)),
    # email
    ApplicationSpec("smtp", AppRealm.EMAIL, "tcp", (25, 587)),
    ApplicationSpec("pop3", AppRealm.EMAIL, "tcp", (110, 995)),
    ApplicationSpec("imap", AppRealm.EMAIL, "tcp", (143, 993)),
    # video
    ApplicationSpec("rtsp", AppRealm.VIDEO, "tcp", (554,)),
    ApplicationSpec("rtmp", AppRealm.VIDEO, "tcp", (1935,)),
    ApplicationSpec("pplive", AppRealm.VIDEO, "udp", (3951,)),
    ApplicationSpec("mms-stream", AppRealm.VIDEO, "tcp", (1755,)),
    # web-browsing
    ApplicationSpec("http", AppRealm.WEB, "tcp", (80, 8080)),
    ApplicationSpec("https", AppRealm.WEB, "tcp", (443,)),
)


def applications_for_realm(realm: AppRealm) -> List[ApplicationSpec]:
    """All concrete applications belonging to ``realm``."""
    return [app for app in APPLICATIONS if app.realm == realm]


def port_table() -> Dict[Tuple[str, int], AppRealm]:
    """The (protocol, port) → realm ground-truth mapping."""
    table: Dict[Tuple[str, int], AppRealm] = {}
    for app in APPLICATIONS:
        for port in app.ports:
            key = (app.protocol, port)
            if key in table and table[key] != app.realm:
                raise ValueError(f"port {key} claimed by two realms")
            table[key] = app.realm
    return table


@dataclass(frozen=True)
class VolumeModel:
    """Lognormal model of per-session bytes for one realm.

    ``median_bytes`` is the median per-hour volume a session of this realm
    generates; ``sigma`` the lognormal shape (heavier tail for P2P/video).
    """

    median_bytes: float
    sigma: float

    def sample(self, rng: np.random.Generator, hours: float, n: int = 1) -> np.ndarray:
        """Draw ``n`` session volumes for a session lasting ``hours``."""
        if hours < 0:
            raise ValueError(f"negative duration {hours!r}")
        mu = np.log(self.median_bytes * max(hours, 1e-6))
        return rng.lognormal(mean=mu, sigma=self.sigma, size=n)


class TrafficModel:
    """Per-realm session-volume models for the synthetic campus.

    Medians are loosely calibrated to 2012-era campus traffic: video and
    P2P carry the most bytes, IM and e-mail the fewest.  The spread is kept
    within one order of magnitude on purpose — with a larger gap the heavy
    realms would dominate every user's *normalized* profile and erase the
    per-type interest differences the paper's clustering (Fig. 7/8)
    recovers.
    """

    DEFAULT_VOLUMES: Mapping[AppRealm, VolumeModel] = {
        AppRealm.IM: VolumeModel(median_bytes=10e6, sigma=0.7),
        AppRealm.P2P: VolumeModel(median_bytes=45e6, sigma=0.9),
        AppRealm.MUSIC: VolumeModel(median_bytes=25e6, sigma=0.7),
        AppRealm.EMAIL: VolumeModel(median_bytes=10e6, sigma=0.7),
        AppRealm.VIDEO: VolumeModel(median_bytes=50e6, sigma=0.8),
        AppRealm.WEB: VolumeModel(median_bytes=28e6, sigma=0.7),
    }

    def __init__(self, volumes: Mapping[AppRealm, VolumeModel] = None) -> None:
        self._volumes = dict(volumes if volumes is not None else self.DEFAULT_VOLUMES)
        missing = [realm for realm in REALMS if realm not in self._volumes]
        if missing:
            raise ValueError(f"traffic model missing realms: {missing}")

    def volume(self, realm: AppRealm) -> VolumeModel:
        """The volume model of one realm."""
        return self._volumes[realm]

    def sample_session_volumes(
        self,
        rng: np.random.Generator,
        realm_weights: Sequence[float],
        duration_seconds: float,
    ) -> np.ndarray:
        """Sample per-realm byte volumes for one session.

        ``realm_weights`` is the user's (possibly unnormalized) interest
        vector over the six realms; a realm's volume is its model draw
        scaled by the user's relative interest, so users of different types
        produce visibly different traffic mixes.
        """
        weights = np.asarray(realm_weights, dtype=float)
        if weights.shape != (N_REALMS,):
            raise ValueError(f"expected {N_REALMS} realm weights, got {weights.shape}")
        if np.any(weights < 0):
            raise ValueError("realm weights must be non-negative")
        hours = duration_seconds / 3600.0
        volumes = np.zeros(N_REALMS)
        for realm in REALMS:
            weight = weights[realm]
            if weight <= 0:
                continue
            base = self._volumes[realm].sample(rng, hours, n=1)[0]
            volumes[realm] = base * weight
        return volumes
