"""CSV persistence for trace records.

The paper's data pipeline stores login records and router flow logs in a
back-end data center; this module provides the equivalent flat-file
round-trip so generated traces can be saved, shared and re-analyzed without
re-running the generator.  One CSV file per record family, with explicit
headers; floats are written with full repr precision so round-trips are
exact.

Damaged rows (bit rot, a truncated copy, or a fault plan's
``corrupt-trace-record`` events applied via
:func:`repro.faults.model.apply_trace_corruption`) follow the reader's
``on_error`` policy: ``"strict"`` (default) raises a :class:`ValueError`
naming the file and data row, ``"skip"`` drops the row, logs it, and
logs a final per-file skip count — so a chaos run degrades to a smaller
trace instead of dying, and never loses rows silently.
"""

from __future__ import annotations

import csv
import json
import logging
import os
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

logger = logging.getLogger(__name__)

from repro.trace.records import DemandSession, FlowRecord, SessionRecord, TraceBundle
from repro.trace.social import AccessPointInfo, BuildingInfo, CampusLayout

PathLike = Union[str, os.PathLike]

SESSION_FIELDS = [
    "user_id",
    "ap_id",
    "controller_id",
    "connect",
    "disconnect",
    "bytes_total",
]
FLOW_FIELDS = [
    "user_id",
    "start",
    "end",
    "src_ip",
    "dst_ip",
    "protocol",
    "src_port",
    "dst_port",
    "bytes_total",
]
DEMAND_FIELDS = [
    "user_id",
    "building_id",
    "arrival",
    "departure",
    "group_id",
    "realm_bytes",
]

#: Accepted ``on_error`` reader policies.
READ_POLICIES = ("strict", "skip")

#: What a damaged CSV row raises while being parsed: non-numeric text
#: (ValueError), a short row padded with None (TypeError), a missing
#: column (KeyError).
_ROW_ERRORS = (ValueError, TypeError, KeyError)


def _read_rows(
    path: PathLike,
    fields: List[str],
    parse: Callable[[Dict[str, Any]], Any],
    on_error: str,
) -> List[Any]:
    """Shared reader loop applying the ``on_error`` row policy."""
    if on_error not in READ_POLICIES:
        raise ValueError(
            f"unknown on_error policy {on_error!r}; choose from {READ_POLICIES}"
        )
    records: List[Any] = []
    skipped = 0
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require_fields(reader.fieldnames, fields, path)
        for index, row in enumerate(reader):
            try:
                records.append(parse(row))
            except _ROW_ERRORS as exc:
                if on_error == "strict":
                    raise ValueError(
                        f"{path}: corrupt data row {index}: {exc}"
                    ) from exc
                skipped += 1
                logger.warning("%s: skipping corrupt data row %d: %s", path, index, exc)
    if skipped:
        logger.warning("%s: skipped %d corrupt row(s)", path, skipped)
    return records


def write_sessions(path: PathLike, sessions: Iterable[SessionRecord]) -> int:
    """Write session records to CSV; returns the record count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SESSION_FIELDS)
        for record in sessions:
            writer.writerow(
                [
                    record.user_id,
                    record.ap_id,
                    record.controller_id,
                    repr(record.connect),
                    repr(record.disconnect),
                    repr(record.bytes_total),
                ]
            )
            count += 1
    return count


def read_sessions(
    path: PathLike, on_error: str = "strict"
) -> List[SessionRecord]:
    """Read session records from CSV written by :func:`write_sessions`."""

    def parse(row: Dict[str, Any]) -> SessionRecord:
        return SessionRecord(
            user_id=row["user_id"],
            ap_id=row["ap_id"],
            controller_id=row["controller_id"],
            connect=float(row["connect"]),
            disconnect=float(row["disconnect"]),
            bytes_total=float(row["bytes_total"]),
        )

    return _read_rows(path, SESSION_FIELDS, parse, on_error)


def write_flows(path: PathLike, flows: Iterable[FlowRecord]) -> int:
    """Write flow records to CSV; returns the record count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(FLOW_FIELDS)
        for record in flows:
            writer.writerow(
                [
                    record.user_id,
                    repr(record.start),
                    repr(record.end),
                    record.src_ip,
                    record.dst_ip,
                    record.protocol,
                    record.src_port,
                    record.dst_port,
                    repr(record.bytes_total),
                ]
            )
            count += 1
    return count


def read_flows(path: PathLike, on_error: str = "strict") -> List[FlowRecord]:
    """Read flow records written by :func:`write_flows`."""

    def parse(row: Dict[str, Any]) -> FlowRecord:
        return FlowRecord(
            user_id=row["user_id"],
            start=float(row["start"]),
            end=float(row["end"]),
            src_ip=row["src_ip"],
            dst_ip=row["dst_ip"],
            protocol=row["protocol"],
            src_port=int(row["src_port"]),
            dst_port=int(row["dst_port"]),
            bytes_total=float(row["bytes_total"]),
        )

    return _read_rows(path, FLOW_FIELDS, parse, on_error)


def write_demands(path: PathLike, demands: Iterable[DemandSession]) -> int:
    """Write demand sessions to CSV; returns the record count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(DEMAND_FIELDS)
        for record in demands:
            writer.writerow(
                [
                    record.user_id,
                    record.building_id,
                    repr(record.arrival),
                    repr(record.departure),
                    record.group_id or "",
                    "|".join(repr(v) for v in record.realm_bytes),
                ]
            )
            count += 1
    return count


def read_demands(
    path: PathLike, on_error: str = "strict"
) -> List[DemandSession]:
    """Read demand sessions written by :func:`write_demands`."""

    def parse(row: Dict[str, Any]) -> DemandSession:
        return DemandSession(
            user_id=row["user_id"],
            building_id=row["building_id"],
            arrival=float(row["arrival"]),
            departure=float(row["departure"]),
            group_id=row["group_id"] or None,
            realm_bytes=tuple(
                float(v) for v in row["realm_bytes"].split("|")
            ),
        )

    return _read_rows(path, DEMAND_FIELDS, parse, on_error)


def save_bundle(directory: PathLike, bundle: TraceBundle) -> None:
    """Write a bundle as ``sessions.csv`` / ``flows.csv`` / ``demands.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_sessions(directory / "sessions.csv", bundle.sessions)
    write_flows(directory / "flows.csv", bundle.flows)
    write_demands(directory / "demands.csv", bundle.demands)


def load_bundle(directory: PathLike, on_error: str = "strict") -> TraceBundle:
    """Load a bundle previously written by :func:`save_bundle`.

    Missing files are treated as empty record families, so a demands-only
    directory loads fine.  ``on_error`` is forwarded to every family
    reader (see the module docstring).
    """
    directory = Path(directory)
    sessions_path = directory / "sessions.csv"
    flows_path = directory / "flows.csv"
    demands_path = directory / "demands.csv"
    return TraceBundle(
        sessions=read_sessions(sessions_path, on_error=on_error)
        if sessions_path.exists()
        else [],
        flows=read_flows(flows_path, on_error=on_error)
        if flows_path.exists()
        else [],
        demands=read_demands(demands_path, on_error=on_error)
        if demands_path.exists()
        else [],
    )


def write_layout(path: PathLike, layout: CampusLayout) -> None:
    """Serialize a campus layout as JSON (buildings + APs)."""
    payload = {
        "buildings": [
            {
                "building_id": b.building_id,
                "controller_id": b.controller_id,
                "position": list(b.position),
                "ap_ids": list(b.ap_ids),
            }
            for b in sorted(layout.buildings.values(), key=lambda b: b.building_id)
        ],
        "aps": [
            {
                "ap_id": a.ap_id,
                "building_id": a.building_id,
                "controller_id": a.controller_id,
                "position": list(a.position),
                "bandwidth": a.bandwidth,
            }
            for a in sorted(layout.aps.values(), key=lambda a: a.ap_id)
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def read_layout(path: PathLike) -> CampusLayout:
    """Load a campus layout written by :func:`write_layout`."""
    with open(path) as handle:
        payload = json.load(handle)
    buildings = [
        BuildingInfo(
            building_id=entry["building_id"],
            controller_id=entry["controller_id"],
            position=tuple(entry["position"]),
            ap_ids=tuple(entry["ap_ids"]),
        )
        for entry in payload["buildings"]
    ]
    aps = [
        AccessPointInfo(
            ap_id=entry["ap_id"],
            building_id=entry["building_id"],
            controller_id=entry["controller_id"],
            position=tuple(entry["position"]),
            bandwidth=entry["bandwidth"],
        )
        for entry in payload["aps"]
    ]
    return CampusLayout(buildings, aps)


def _require_fields(found: Optional[List[str]], expected: List[str], path: PathLike) -> None:
    if found is None or list(found) != expected:
        raise ValueError(
            f"{path}: unexpected header {found!r}, expected {expected!r}"
        )
