"""Typed trace records and the :class:`TraceBundle` container.

Three record families mirror the paper's data sources (Section III.A):

* :class:`SessionRecord` — what the back-end data center logs: user
  identifier, connected / disconnected time stamps, accessed AP, and the
  served traffic amount of the connection.
* :class:`FlowRecord` — what the core-network routers log: source /
  destination IP addresses, transport protocol and ports, byte counts.
  Application realms are *not* stored on the record; they are recovered by
  the port-heuristic classifier, exactly as in the paper.
* :class:`DemandSession` — the *replayable demand* underlying a session:
  who wanted to be online, where, when, and with which per-realm traffic.
  This is the input to trace-driven simulation (Section V methodology);
  the AP actually chosen is a property of the strategy under test, not of
  the demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (columnar imports us)
    from repro.trace.columnar import DemandArrays, FlowArrays, SessionArrays

import numpy as np

from repro.trace.apps import N_REALMS, AppRealm


@dataclass(frozen=True)
class SessionRecord:
    """One logged WLAN association, as recorded by the data center."""

    user_id: str
    ap_id: str
    controller_id: str
    connect: float
    disconnect: float
    bytes_total: float

    def __post_init__(self) -> None:
        if self.disconnect < self.connect:
            raise ValueError(
                f"session for {self.user_id} disconnects at {self.disconnect} "
                f"before connecting at {self.connect}"
            )
        if self.bytes_total < 0:
            raise ValueError(f"negative traffic {self.bytes_total!r}")

    @property
    def duration(self) -> float:
        """Session length in seconds."""
        return self.disconnect - self.connect

    @property
    def mean_rate(self) -> float:
        """Mean throughput in bytes/second (0 for zero-length sessions)."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_total / self.duration

    def overlap(self, lo: float, hi: float) -> float:
        """Seconds of this session inside the window ``[lo, hi)``."""
        return max(0.0, min(self.disconnect, hi) - max(self.connect, lo))

    def bytes_in(self, lo: float, hi: float) -> float:
        """Traffic attributed to ``[lo, hi)`` assuming a uniform rate."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_total * self.overlap(lo, hi) / self.duration


@dataclass(frozen=True)
class FlowRecord:
    """One logged core-router flow.

    ``dst_port`` is the server-side port; the classifier keys on
    ``(protocol, dst_port)``.  ``user_id`` stands in for the IP-to-user join
    the paper performs against DHCP/auth logs.
    """

    user_id: str
    start: float
    end: float
    src_ip: str
    dst_ip: str
    protocol: str
    src_port: int
    dst_port: int
    bytes_total: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"flow ends at {self.end} before start {self.start}")
        if self.protocol not in ("tcp", "udp"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.bytes_total < 0:
            raise ValueError(f"negative flow bytes {self.bytes_total!r}")
        if not (0 < self.dst_port < 65536) or not (0 < self.src_port < 65536):
            raise ValueError(
                f"port out of range: src={self.src_port}, dst={self.dst_port}"
            )


@dataclass(frozen=True)
class DemandSession:
    """The strategy-independent demand behind one session.

    ``realm_bytes`` is the ground-truth per-realm traffic (a 6-tuple in
    :class:`~repro.trace.apps.AppRealm` order).  ``group_id`` is the
    generator's ground-truth social group, carried for validation only —
    the S³ pipeline never reads it.
    """

    user_id: str
    building_id: str
    arrival: float
    departure: float
    realm_bytes: Tuple[float, ...]
    group_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.departure < self.arrival:
            raise ValueError(
                f"demand for {self.user_id} departs at {self.departure} "
                f"before arriving at {self.arrival}"
            )
        if len(self.realm_bytes) != N_REALMS:
            raise ValueError(
                f"expected {N_REALMS} realm volumes, got {len(self.realm_bytes)}"
            )
        if any(b < 0 for b in self.realm_bytes):
            raise ValueError("negative realm volume")

    @property
    def duration(self) -> float:
        """Demanded online time in seconds."""
        return self.departure - self.arrival

    @property
    def bytes_total(self) -> float:
        """Total demanded bytes across all realms."""
        return float(sum(self.realm_bytes))

    @property
    def mean_rate(self) -> float:
        """Mean demanded throughput in bytes/second."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_total / self.duration

    def realm_vector(self) -> np.ndarray:
        """The per-realm volumes as a numpy vector."""
        return np.asarray(self.realm_bytes, dtype=float)


class TraceBundle:
    """An immutable-ish container for one synthetic (or loaded) trace.

    Holds the three record families plus the id universe, with the indexed
    accessors the analysis toolkit needs.  Records are stored sorted by
    start time; accessors build lazy per-user / per-AP indices.
    """

    def __init__(
        self,
        sessions: Iterable[SessionRecord] = (),
        flows: Iterable[FlowRecord] = (),
        demands: Iterable[DemandSession] = (),
    ) -> None:
        self.sessions: List[SessionRecord] = sorted(
            sessions, key=lambda r: (r.connect, r.user_id, r.ap_id)
        )
        self.flows: List[FlowRecord] = sorted(
            flows, key=lambda r: (r.start, r.user_id, r.dst_port)
        )
        self.demands: List[DemandSession] = sorted(
            demands, key=lambda r: (r.arrival, r.user_id)
        )
        self._sessions_by_user: Optional[Dict[str, List[SessionRecord]]] = None
        self._sessions_by_ap: Optional[Dict[str, List[SessionRecord]]] = None
        self._flows_by_user: Optional[Dict[str, List[FlowRecord]]] = None
        self._columns: Optional["SessionArrays"] = None
        self._demand_columns: Optional["DemandArrays"] = None
        self._flow_columns: Optional["FlowArrays"] = None

    # ------------------------------------------------------------------ ids

    @property
    def user_ids(self) -> List[str]:
        """All user ids seen anywhere in the bundle, sorted."""
        ids = {r.user_id for r in self.sessions}
        ids.update(r.user_id for r in self.flows)
        ids.update(r.user_id for r in self.demands)
        return sorted(ids)

    @property
    def ap_ids(self) -> List[str]:
        """All AP ids seen in the session log, sorted."""
        return sorted({r.ap_id for r in self.sessions})

    @property
    def controller_ids(self) -> List[str]:
        """All controller ids seen in the session log, sorted."""
        return sorted({r.controller_id for r in self.sessions})

    # -------------------------------------------------------------- indexing

    def sessions_by_user(self) -> Dict[str, List[SessionRecord]]:
        """user id -> that user's sessions (built lazily)."""
        if self._sessions_by_user is None:
            index: Dict[str, List[SessionRecord]] = {}
            for record in self.sessions:
                index.setdefault(record.user_id, []).append(record)
            self._sessions_by_user = index
        return self._sessions_by_user

    def sessions_by_ap(self) -> Dict[str, List[SessionRecord]]:
        """ap id -> its sessions (built lazily)."""
        if self._sessions_by_ap is None:
            index: Dict[str, List[SessionRecord]] = {}
            for record in self.sessions:
                index.setdefault(record.ap_id, []).append(record)
            self._sessions_by_ap = index
        return self._sessions_by_ap

    def columns(self) -> "SessionArrays":
        """The session log as cached :class:`~repro.trace.columnar.SessionArrays`.

        Built on first use and shared by every numpy consumer (churn
        extraction, co-leaving sweeps), so one trace pays the transpose
        once.  The bundle's session list never mutates, so the cache never
        invalidates.
        """
        if self._columns is None:
            from repro.trace.columnar import SessionArrays

            self._columns = SessionArrays.from_sessions(self.sessions)
        return self._columns

    def demand_columns(self) -> "DemandArrays":
        """The demand stream as cached :class:`~repro.trace.columnar.DemandArrays`.

        This is the transport form the sharded runtime publishes into
        shared memory; like :meth:`columns` it is built once and shared.
        """
        if self._demand_columns is None:
            from repro.trace.columnar import DemandArrays

            self._demand_columns = DemandArrays.from_demands(self.demands)
        return self._demand_columns

    def flow_columns(self) -> "FlowArrays":
        """The flow log as cached :class:`~repro.trace.columnar.FlowArrays`."""
        if self._flow_columns is None:
            from repro.trace.columnar import FlowArrays

            self._flow_columns = FlowArrays.from_flows(self.flows)
        return self._flow_columns

    def flows_by_user(self) -> Dict[str, List[FlowRecord]]:
        """user id -> that user's flows (built lazily)."""
        if self._flows_by_user is None:
            index: Dict[str, List[FlowRecord]] = {}
            for record in self.flows:
                index.setdefault(record.user_id, []).append(record)
            self._flows_by_user = index
        return self._flows_by_user

    # -------------------------------------------------------------- slicing

    def sessions_in(self, lo: float, hi: float) -> List[SessionRecord]:
        """Sessions overlapping the half-open window ``[lo, hi)``."""
        return [r for r in self.sessions if r.connect < hi and r.disconnect > lo]

    def flows_in(self, lo: float, hi: float) -> List[FlowRecord]:
        """Flows overlapping the half-open window [lo, hi)."""
        return [r for r in self.flows if r.start < hi and r.end > lo]

    def demands_in(self, lo: float, hi: float) -> List[DemandSession]:
        """Demands overlapping the half-open window [lo, hi)."""
        return [r for r in self.demands if r.arrival < hi and r.departure > lo]

    def restrict(self, lo: float, hi: float) -> "TraceBundle":
        """A new bundle containing only records overlapping ``[lo, hi)``."""
        return TraceBundle(
            sessions=self.sessions_in(lo, hi),
            flows=self.flows_in(lo, hi),
            demands=self.demands_in(lo, hi),
        )

    # ------------------------------------------------------------- mutation

    def merged_with(self, other: "TraceBundle") -> "TraceBundle":
        """A new bundle with the union of both bundles' records."""
        return TraceBundle(
            sessions=self.sessions + other.sessions,
            flows=self.flows + other.flows,
            demands=self.demands + other.demands,
        )

    def __len__(self) -> int:
        return len(self.sessions)

    def __repr__(self) -> str:
        return (
            f"TraceBundle(sessions={len(self.sessions)}, "
            f"flows={len(self.flows)}, demands={len(self.demands)}, "
            f"users={len(self.user_ids)})"
        )
