"""Trace data model and synthetic campus-trace generator.

The paper works from a proprietary three-month WLAN trace of Shanghai Jiao
Tong University (12,374 users, 334 APs, 22 buildings).  That trace is not
available, so this package provides the substitution documented in
DESIGN.md §2: a *synthetic campus* whose logged records have exactly the
fields the paper describes (hashed user ids, connect/disconnect timestamps,
accessed AP, served traffic, and core-router flow records with transport /
application ports) and whose statistical structure reproduces the phenomena
the paper mines — diurnal load, co-arrivals and co-leavings driven by
social groups, and user-type-conditioned application profiles.

Layering:

``apps``        the six application realms and their port tables
``records``     typed record dataclasses + the :class:`TraceBundle`
``columnar``    :class:`SessionArrays`, the numpy fast paths' columnar store
``classifier``  the port-combination heuristic app classifier (paper ref [1])
``social``      the ground-truth social world (buildings, groups, schedules)
``generator``   social world -> demand trace -> logged records
``io``          CSV round-trip for all record types
``anonymize``   SHA-based pseudonymization of user identifiers
"""

from repro.trace.apps import AppRealm, REALMS, TrafficModel
from repro.trace.records import (
    DemandSession,
    FlowRecord,
    SessionRecord,
    TraceBundle,
)
from repro.trace.columnar import SessionArrays, as_session_arrays
from repro.trace.classifier import PortClassifier
from repro.trace.social import (
    AccessPointInfo,
    BuildingInfo,
    CampusLayout,
    SocialGroup,
    SocialWorld,
    UserInfo,
    UserTypeProfile,
    DEFAULT_TYPE_PROFILES,
)
from repro.trace.generator import GeneratorConfig, TraceGenerator, generate_trace
from repro.trace.anonymize import anonymize_user_id, pseudonymize_bundle

__all__ = [
    "AppRealm",
    "REALMS",
    "TrafficModel",
    "DemandSession",
    "FlowRecord",
    "SessionRecord",
    "TraceBundle",
    "SessionArrays",
    "as_session_arrays",
    "PortClassifier",
    "AccessPointInfo",
    "BuildingInfo",
    "CampusLayout",
    "SocialGroup",
    "SocialWorld",
    "UserInfo",
    "UserTypeProfile",
    "DEFAULT_TYPE_PROFILES",
    "GeneratorConfig",
    "TraceGenerator",
    "generate_trace",
    "anonymize_user_id",
    "pseudonymize_bundle",
]
