"""Fig. 6 — how much history captures a user's application interest.

Section III.D.2: for a target day x, compute the NMI between each user's
day-x application profile and the cumulative profile of days x-1 .. x-n,
and average over users.  The curve rises with n and plateaus around
n = 15: two weeks of history suffice, more neither helps nor hurts.  The
paper shows the curve for two target days (7/26 and 7/27); the
reproduction uses the last two workdays of the training stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.profiles import build_daily_profiles, nmi_history_curve
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_series
from repro.experiments.workload import build_workload
from repro.sim.timeline import is_workday, DAY


@dataclass
class Fig6Result:
    """Mean-NMI curves per target day."""

    curves: Dict[int, Tuple[np.ndarray, np.ndarray]]  # day -> (lookbacks, nmi)

    def plateau_ratio(self, day: int, knee: int = 15) -> float:
        """NMI at the knee relative to the curve's final value (~1 at plateau)."""
        lookbacks, nmi = self.curves[day]
        at_knee = nmi[np.searchsorted(lookbacks, min(knee, lookbacks[-1]))]
        return float(at_knee / nmi[-1]) if nmi[-1] > 0 else float("nan")

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        lines = ["Fig. 6 — mean NMI between day-x profile and n-day history"]
        for day, (lookbacks, nmi) in sorted(self.curves.items()):
            lines.append(
                format_series(
                    lookbacks, nmi, "history_days", "mean_NMI",
                    title=f"target day {day}",
                )
            )
        lines.append(
            "paper: NMI increases until n ~= 15 then plateaus "
            "(older history neither helps nor hurts)"
        )
        return "\n".join(lines)


def run(
    config: ExperimentConfig = PAPER,
    max_lookback: int = None,
) -> Fig6Result:
    """Execute the Fig. 6 measurement on the given preset."""
    workload = build_workload(config)
    store = build_daily_profiles(workload.collected.flows)
    if max_lookback is None:
        max_lookback = max(2, config.train_days - 2)

    # The last two workdays of the training stage (the paper's 7/26, 7/27).
    target_days = [
        day
        for day in range(config.train_days - 1, 0, -1)
        if is_workday(day * DAY)
    ][:2]
    curves: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for day in target_days:
        lookbacks, nmi = nmi_history_curve(
            store, target_day=day, max_lookback=min(max_lookback, day)
        )
        curves[day] = (lookbacks, nmi)
    return Fig6Result(curves=curves)
