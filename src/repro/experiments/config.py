"""Shared experiment configuration presets.

``PAPER`` is the calibrated synthetic campus every benchmark runs on.  It
was tuned (see DESIGN.md §2) so that the phenomena the paper measures are
present with realistic magnitudes: diagonal-dominant type affinity,
high per-user co-leaving fractions, and an LLF baseline that visibly
suffers from co-leaving craters and stale-load herding.  ``SMALL`` and
``TINY`` shrink the campus and the calendar for tests.

The train/test split mirrors Section V.A: the paper trains on four weeks
(July 4-24) and evaluates on the following three days (July 25-27); the
presets train on three weeks and evaluate on three days.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.pipeline import TrainingConfig
from repro.sim.timeline import DAY
from repro.trace.generator import GeneratorConfig
from repro.trace.social import WorldConfig
from repro.wlan.replay import ReplayConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment campaign: world, calendar, replay and training knobs."""

    name: str
    world: WorldConfig
    n_days: int
    train_days: int
    seed: int = 20120704
    replay: ReplayConfig = field(default_factory=lambda: ReplayConfig(batch_window=120.0))
    training: TrainingConfig = field(default_factory=TrainingConfig)

    def __post_init__(self) -> None:
        if not 0 < self.train_days < self.n_days:
            raise ValueError(
                f"train_days must be in (0, n_days); got {self.train_days}/{self.n_days}"
            )

    @property
    def split_time(self) -> float:
        """The instant separating the learning and evaluation stages."""
        return self.train_days * DAY

    @property
    def test_days(self) -> int:
        """Number of evaluation days after the split."""
        return self.n_days - self.train_days

    def generator_config(self) -> GeneratorConfig:
        """The trace-generator configuration for this campaign."""
        return GeneratorConfig(world=self.world, n_days=self.n_days, seed=self.seed)

    def with_world(self, **world_changes) -> "ExperimentConfig":
        """A copy with world knobs overridden (used by ablations)."""
        return replace(self, world=replace(self.world, **world_changes))


#: The calibrated campus for the benchmark harness: 4 controller domains of
#: 5 APs, 700 users, 70 social groups, 3 weeks of training + 3 evaluation
#: days.  See DESIGN.md for why each magnitude was chosen.
PAPER = ExperimentConfig(
    name="paper",
    world=WorldConfig(
        n_buildings=4,
        aps_per_building=5,
        n_users=700,
        n_groups=70,
        group_size_mean=14.0,
        solo_rate=0.5,
        loose_group_fraction=0.6,
    ),
    n_days=24,
    train_days=21,
)

#: A fast variant for integration tests (seconds, not minutes).
SMALL = ExperimentConfig(
    name="small",
    world=WorldConfig(
        n_buildings=2,
        aps_per_building=4,
        n_users=150,
        n_groups=18,
        group_size_mean=10.0,
        solo_rate=0.6,
        loose_group_fraction=0.6,
    ),
    n_days=12,
    train_days=9,
)

#: The smallest workload that still trains end-to-end (unit-test scale).
TINY = ExperimentConfig(
    name="tiny",
    world=WorldConfig(
        n_buildings=1,
        aps_per_building=3,
        n_users=48,
        n_groups=6,
        group_size_mean=8.0,
        solo_rate=0.6,
    ),
    n_days=8,
    train_days=6,
)
