"""Resilience — balance degradation and recovery under an AP outage.

The robustness companion to the steady-state comparisons: take the
busiest AP of the evaluation period off the air exactly at its peak
(a deterministic, worst-case fault — no random draws), replay the same
demands under LLF and S³, and measure from the run journals alone

* how far the balance index drops while the AP is down (the forced
  co-leaving burst re-herds its users elsewhere), and
* how long after the AP returns the balance needs to recover to 95 % of
  its pre-fault mean.

Everything is computed from :class:`~repro.obs.journal.Journal` records
(fault firings + balance samples), never from the in-memory replay
result — the same analysis works on a journal file from any past run,
which is the point of journaling faults in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.workload import Workload, build_workload, trained_model
from repro.faults.model import FaultPlan
from repro.faults.schedule import targeted_ap_outage
from repro.obs.journal import Journal, parse_journal, render_journal
from repro.obs.tracer import get_tracer
from repro.runtime.engine import replay_serial
from repro.trace.records import DemandSession
from repro.trace.social import CampusLayout
from repro.wlan.replay import ReplayConfig, window_for
from repro.wlan.strategies import LeastLoadedFirst, S3Strategy, SelectionStrategy

#: A post-restore sample at or above this fraction of the pre-fault mean
#: balance counts as recovered.
RECOVERY_FRACTION = 0.95


@dataclass
class StrategyResilience:
    """One strategy's journal-derived fault response."""

    strategy: str
    controller_id: str
    #: Users force-evicted by the ap-down event (the co-leaving burst).
    evicted: int
    #: Mean balance of the samples strictly before the fault fired.
    pre_fault_balance: float
    #: Worst balance sampled while the AP was down.
    min_balance_during: float
    #: Seconds after the ap-up event until balance first reached
    #: ``RECOVERY_FRACTION`` of the pre-fault mean; None = never did.
    recovery_time: Optional[float]

    @property
    def drop(self) -> float:
        """Absolute balance-index degradation at the worst sample."""
        return self.pre_fault_balance - self.min_balance_during


@dataclass
class ResilienceResult:
    """The LLF-vs-S³ fault response, plus the plan that caused it."""

    target_ap: str
    fault_start: float
    fault_duration: float
    by_strategy: Dict[str, StrategyResilience]

    def render(self) -> str:
        """The report text for the resilience comparison."""
        lines = [
            "Resilience — targeted AP outage, LLF vs S³",
            f"  target: {self.target_ap} down at t={self.fault_start:.0f} "
            f"for {self.fault_duration:.0f}s",
        ]
        for name in sorted(self.by_strategy):
            entry = self.by_strategy[name]
            recovered = (
                f"{entry.recovery_time:.0f}s"
                if entry.recovery_time is not None
                else "not within horizon"
            )
            lines.append(
                f"  {name}: evicted={entry.evicted} "
                f"pre-fault balance={entry.pre_fault_balance:.3f} "
                f"min during outage={entry.min_balance_during:.3f} "
                f"(drop {entry.drop:.3f}), recovery after restore: {recovered}"
            )
        lines.append(
            "paper: S³ places the forced co-leaving burst by social group, "
            "so it degrades less and re-converges at least as fast as LLF"
        )
        return "\n".join(lines)


def pick_target(
    layout: CampusLayout, demands: Sequence[DemandSession]
) -> Tuple[str, float]:
    """The worst-case outage target: first AP of the building with the
    highest peak concurrency, at the instant that peak is first reached.

    Pure arithmetic over the demand trace — no draws — so every run of a
    preset attacks the same AP at the same time.
    """
    if not demands:
        raise ValueError("cannot pick an outage target from zero demands")
    deltas: Dict[str, List[Tuple[float, int]]] = {}
    for demand in demands:
        deltas.setdefault(demand.building_id, []).append((demand.arrival, 1))
        deltas[demand.building_id].append((demand.departure, -1))
    best: Optional[Tuple[int, float, str]] = None
    for building_id in sorted(deltas):
        concurrency = 0
        peak = 0
        peak_time = 0.0
        # Departures before arrivals at the same instant, so touching
        # sessions do not overcount.
        for time, delta in sorted(deltas[building_id], key=lambda d: (d[0], d[1])):
            concurrency += delta
            if concurrency > peak:
                peak = concurrency
                peak_time = time
        candidate = (peak, -peak_time, building_id)
        if best is None or candidate > best:
            best = candidate
    assert best is not None  # demands is non-empty
    peak, neg_peak_time, building_id = best
    ap_id = sorted(layout.buildings[building_id].ap_ids)[0]
    return ap_id, -neg_peak_time


def outage_plan(
    layout: CampusLayout,
    demands: Sequence[DemandSession],
    replay_config: ReplayConfig,
) -> FaultPlan:
    """The experiment's deterministic one-AP outage plan."""
    ap_id, peak_time = pick_target(layout, demands)
    window = window_for(demands, replay_config)
    start = max(peak_time, window.start)
    remaining = window.horizon - start
    if remaining <= 0:
        raise ValueError(
            f"peak at t={peak_time:.0f} leaves no room before the horizon"
        )
    # Long enough to straddle several balance samples, short enough to
    # leave most of the remaining window for the recovery measurement.
    duration = min(2.0 * replay_config.sample_interval, remaining / 2.0)
    return targeted_ap_outage(ap_id, start, duration)


def journaled_replay(
    layout: CampusLayout,
    strategy: SelectionStrategy,
    demands: Sequence[DemandSession],
    replay_config: ReplayConfig,
    fault_plan: FaultPlan,
) -> Journal:
    """One serial fault-injected replay, returned as a parsed journal.

    When the global tracer is already enabled (``--journal`` runs) the
    records stay in the outer journal too; otherwise the tracer is
    enabled only for the duration of the replay and reset afterwards.
    """
    tracer = get_tracer()
    owned = not tracer.enabled
    if owned:
        obs.enable(reset=True)
    start = len(tracer.records)
    try:
        replay_serial(
            layout, strategy, list(demands), replay_config, fault_plan=fault_plan
        )
        text = render_journal(list(tracer.records[start:]))
    finally:
        if owned:
            obs.disable()
            tracer.reset()
    return parse_journal(text)


def analyze_journal(journal: Journal, strategy: str) -> StrategyResilience:
    """Fault response metrics from journal records alone."""
    downs = [f for f in journal.faults if f.kind == "ap-down"]
    ups = [f for f in journal.faults if f.kind == "ap-up"]
    if not downs or not ups:
        raise ValueError(
            f"journal holds no ap-down/ap-up pair (faults={len(journal.faults)})"
        )
    down, up = downs[0], ups[0]
    assert down.sim_time is not None and up.sim_time is not None
    controller_id = down.controller_id
    if controller_id is None:
        raise ValueError("ap-down record carries no controller id")
    samples = sorted(
        (s for s in journal.samples if s.controller_id == controller_id),
        key=lambda s: s.sim_time,
    )
    if not samples:
        raise ValueError(f"no balance samples for controller {controller_id}")
    pre = [s.balance for s in samples if s.sim_time < down.sim_time]
    pre_fault = sum(pre) / len(pre) if pre else samples[0].balance
    during = [
        s.balance
        for s in samples
        if down.sim_time <= s.sim_time < up.sim_time
    ]
    min_during = min(during) if during else pre_fault
    recovery: Optional[float] = None
    for sample in samples:
        if sample.sim_time < up.sim_time:
            continue
        if sample.balance >= RECOVERY_FRACTION * pre_fault:
            recovery = sample.sim_time - up.sim_time
            break
    return StrategyResilience(
        strategy=strategy,
        controller_id=controller_id,
        evicted=int(down.detail["evicted"]),
        pre_fault_balance=pre_fault,
        min_balance_during=min_during,
        recovery_time=recovery,
    )


def run(config: ExperimentConfig = PAPER) -> ResilienceResult:
    """Execute the resilience comparison on the given preset."""
    workload: Workload = build_workload(config)
    plan = outage_plan(
        workload.world.layout, workload.test_demands, config.replay
    )
    down = plan.events[0]
    up = plan.events[-1]
    strategies: Dict[str, SelectionStrategy] = {
        "llf": LeastLoadedFirst(),
        "s3": S3Strategy(trained_model(config).selector()),
    }
    by_strategy: Dict[str, StrategyResilience] = {}
    for name in sorted(strategies):
        journal = journaled_replay(
            workload.world.layout,
            strategies[name],
            workload.test_demands,
            config.replay,
            plan,
        )
        by_strategy[name] = analyze_journal(journal, name)
    return ResilienceResult(
        target_ap=down.target,
        fault_start=down.time,
        fault_duration=up.time - down.time,
        by_strategy=by_strategy,
    )
