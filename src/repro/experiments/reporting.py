"""Plain-text reporting helpers shared by the experiment runners.

The benchmark harness reproduces *tables and figure series* as text: every
experiment renders the rows/series the paper plots, plus the headline
statistics its prose quotes.  These helpers keep the formatting uniform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """An (x, y) series as a two-column table."""
    rows = [
        (round(float(x), precision), round(float(y), precision))
        for x, y in zip(xs, ys)
    ]
    return format_table([x_label, y_label], rows, title=title)


def format_cdf_summary(
    name: str, values: Sequence[float], thresholds: Sequence[float] = (0.5,)
) -> str:
    """One-line CDF summary: n, quantiles and threshold fractions."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return f"{name}: empty"
    parts = [
        f"{name}: n={data.size}",
        f"p25={np.percentile(data, 25):.3f}",
        f"median={np.percentile(data, 50):.3f}",
        f"p75={np.percentile(data, 75):.3f}",
    ]
    for threshold in thresholds:
        parts.append(f"frac<{threshold:g}={np.mean(data < threshold):.3f}")
    return "  ".join(parts)


def percent_gain(new: float, base: float) -> float:
    """Relative improvement of ``new`` over ``base`` in percent."""
    if base == 0:
        raise ValueError("percent gain against a zero baseline")
    return 100.0 * (new - base) / base


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """(mean, half-width) of the normal-approximation 95% CI."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("confidence interval of an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return mean, 0.0
    half = 1.96 * float(data.std(ddof=1)) / float(np.sqrt(data.size))
    return mean, half


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, (np.floating,)):
        return f"{float(value):.4f}"
    return str(value)
