"""Fig. 3 — application dynamics barely move the balance index.

Section III.C.1: hold the user population fixed (drop sessions that start
or end inside the analysis hour), split each hour into sub-periods of 5,
10 and 20 minutes, compute the balance index beta_i per sub-period, and
look at the distribution of the relative step
``S_i = (beta_i - beta_{i-1}) / beta_{i-1}``.  The paper finds more than
80% of steps below 0.02 at ten-minute sub-periods: with fixed users the
index is essentially static, so application-level traffic dynamics are not
what unbalances APs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.balance import (
    ap_throughputs,
    churn_filtered_sessions,
    normalized_balance_index,
    variation_series,
)
from repro.analysis.cdf import fraction_below
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_cdf_summary
from repro.experiments.workload import build_workload
from repro.sim.timeline import HOUR, MINUTE, Timeline, hour_of_day, is_workday

SUB_PERIODS = (5 * MINUTE, 10 * MINUTE, 20 * MINUTE)


@dataclass
class Fig3Result:
    """|S| samples per sub-period length."""

    variations: Dict[float, np.ndarray]

    def frac_below(self, sub_period: float, threshold: float = 0.02) -> float:
        """Fraction of |S| steps below the threshold for a sub-period width."""
        return fraction_below(self.variations[sub_period], threshold)

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        lines = [
            "Fig. 3 — variance of balance index S with fixed users",
        ]
        for width in sorted(self.variations):
            label = f"{width / MINUTE:.0f}-min sub-periods"
            lines.append(
                format_cdf_summary(label, self.variations[width], thresholds=(0.02, 0.05))
            )
        ten = self.frac_below(10 * MINUTE)
        lines.append(
            f"paper: >80% of |S| below 0.02 at 10-minute sub-periods; "
            f"measured: {ten:.0%}"
        )
        return "\n".join(lines)


def run(config: ExperimentConfig = PAPER) -> Fig3Result:
    """Flow-level measurement: per-AP load in a sub-period is the traffic of
    the *flows* of users pinned to that AP.

    Session records attribute bytes uniformly over the whole session, which
    would make the fixed-population index exactly constant; the paper's
    intra-hour dynamics come from applications starting and stopping, which
    lives at flow granularity in the router logs.  So the load of AP ``a``
    in sub-window ``w`` is the byte mass of flows owned by users whose
    (hour-spanning) session sits on ``a``, restricted to ``w``.
    """
    workload = build_workload(config)
    layout = workload.world.layout
    controller_ids = sorted(layout.controller_ids)
    sessions_by_controller = {cid: [] for cid in controller_ids}
    for session in workload.collected.sessions:
        sessions_by_controller[session.controller_id].append(session)
    ap_ids_by_controller = {
        cid: [ap.ap_id for ap in layout.aps_of_controller(cid)]
        for cid in controller_ids
    }
    flows_by_user = workload.collected.flows_by_user()

    variations: Dict[float, List[float]] = {width: [] for width in SUB_PERIODS}
    span = Timeline(0.0, config.train_days * 24 * HOUR)
    for day in span.days():
        if not is_workday(day.start):
            continue
        for hour_window in day.hours():
            if not 8 <= hour_of_day(hour_window.start) < 23:
                continue
            for controller_id in controller_ids:
                # The paper's churn filter: only sessions spanning the whole
                # hour contribute, so the population is fixed within it.
                fixed = churn_filtered_sessions(
                    sessions_by_controller[controller_id],
                    hour_window.start,
                    hour_window.end,
                )
                if len(fixed) < 2:
                    continue
                ap_of_user = {s.user_id: s.ap_id for s in fixed}
                relevant_flows = [
                    (flow, ap_of_user[user_id])
                    for user_id in ap_of_user
                    for flow in flows_by_user.get(user_id, ())
                    if flow.start < hour_window.end and flow.end > hour_window.start
                ]
                ap_ids = ap_ids_by_controller[controller_id]
                for width in SUB_PERIODS:
                    betas = []
                    for lo, hi in hour_window.windows(width):
                        loads = {ap_id: 0.0 for ap_id in ap_ids}
                        for flow, ap_id in relevant_flows:
                            duration = flow.end - flow.start
                            if duration <= 0:
                                continue
                            overlap = min(flow.end, hi) - max(flow.start, lo)
                            if overlap > 0:
                                loads[ap_id] += flow.bytes_total * overlap / duration
                        betas.append(normalized_balance_index(list(loads.values())))
                    variations[width].extend(variation_series(betas))

    return Fig3Result(
        variations={
            width: np.asarray(values) for width, values in variations.items()
        }
    )
