"""Fig. 12 — S³ versus LLF.

The paper's headline comparison (Section V.C): train on the learning
stage, replay the evaluation days under S³ and under LLF, and compare

* the mean normalized balance index per controller domain (the bar plot
  with 95% confidence error bars) — paper: ~41.2% average gain and ~72.1%
  error-bar (stability) reduction;
* the gain inside the departure peaks (12:00-13:00, 16:00-17:50,
  21:00-22:00) — paper: ~52.1%, because S³ specifically neutralizes
  co-leavings;
* the hour-of-day profile of both strategies.

The reproduction additionally reports the strongest-signal (RSSI) and
user-count-LLF baselines for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.evaluation import (
    daytime_samples,
    departure_peak_samples,
    hourly_means,
    mean_daytime_balance,
    per_controller_stats,
)
from repro.experiments.reporting import format_table, percent_gain
from repro.experiments.workload import build_workload, trained_model
from repro.wlan.replay import ReplayResult
from repro.wlan.strategies import (
    LeastLoadedFirst,
    S3Strategy,
    SelectionStrategy,
    StrongestSignal,
)


@dataclass
class StrategyOutcome:
    """Evaluation summary of one strategy."""
    name: str
    mean_balance: float
    peak_balance: float
    per_controller: Dict[str, Tuple[float, float]]  # mean, CI half-width
    hourly: Tuple[np.ndarray, np.ndarray]


@dataclass
class Fig12Result:
    """All strategy outcomes of the comparison."""
    outcomes: Dict[str, StrategyOutcome]

    @property
    def gain_percent(self) -> float:
        """S³ over LLF, mean daytime balance (paper: ~41.2%)."""
        return percent_gain(
            self.outcomes["s3"].mean_balance, self.outcomes["llf"].mean_balance
        )

    @property
    def peak_gain_percent(self) -> float:
        """S³ over LLF inside departure peaks (paper: ~52.1%)."""
        return percent_gain(
            self.outcomes["s3"].peak_balance, self.outcomes["llf"].peak_balance
        )

    @property
    def errorbar_reduction_percent(self) -> float:
        """Mean per-controller CI half-width reduction (paper: ~72.1%)."""
        llf = np.mean([ci for _, ci in self.outcomes["llf"].per_controller.values()])
        s3 = np.mean([ci for _, ci in self.outcomes["s3"].per_controller.values()])
        if llf <= 0:
            return 0.0
        return 100.0 * (llf - s3) / llf

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        lines = ["Fig. 12 — S3 vs LLF on the evaluation days"]
        rows = [
            (
                outcome.name,
                outcome.mean_balance,
                outcome.peak_balance,
            )
            for outcome in self.outcomes.values()
        ]
        lines.append(
            format_table(
                ["strategy", "mean_balance", "departure_peak_balance"], rows
            )
        )
        controller_rows = []
        for controller_id in sorted(self.outcomes["llf"].per_controller):
            llf_mean, llf_ci = self.outcomes["llf"].per_controller[controller_id]
            s3_mean, s3_ci = self.outcomes["s3"].per_controller[controller_id]
            controller_rows.append(
                (controller_id, llf_mean, llf_ci, s3_mean, s3_ci)
            )
        lines.append(
            format_table(
                ["controller", "LLF_mean", "LLF_ci95", "S3_mean", "S3_ci95"],
                controller_rows,
                title="per-controller means with 95% CI half-widths",
            )
        )
        hours, llf_hourly = self.outcomes["llf"].hourly
        _, s3_hourly = self.outcomes["s3"].hourly
        hour_rows = [
            (int(h), float(l), float(s))
            for h, l, s in zip(hours, llf_hourly, s3_hourly)
        ]
        lines.append(
            format_table(
                ["hour", "LLF", "S3"], hour_rows, title="hour-of-day means"
            )
        )
        lines.append(
            f"S3 gain over LLF: {self.gain_percent:.1f}% overall "
            f"(paper ~41.2%), {self.peak_gain_percent:.1f}% at departure "
            f"peaks (paper ~52.1%), error-bar reduction "
            f"{self.errorbar_reduction_percent:.1f}% (paper ~72.1%)"
        )
        return "\n".join(lines)


def _evaluate(name: str, result: ReplayResult) -> StrategyOutcome:
    peak = departure_peak_samples(result)
    return StrategyOutcome(
        name=name,
        mean_balance=mean_daytime_balance(result),
        peak_balance=float(peak.mean()) if peak.size else float("nan"),
        per_controller=per_controller_stats(result),
        hourly=hourly_means(result),
    )


def run(
    config: ExperimentConfig = PAPER,
    include_extra_baselines: bool = True,
) -> Fig12Result:
    """Execute the Fig. 12 comparison on the given preset."""
    workload = build_workload(config)
    model = trained_model(config)
    strategies: List[Tuple[str, SelectionStrategy]] = [
        ("llf", LeastLoadedFirst()),
        ("s3", S3Strategy(model.selector())),
    ]
    if include_extra_baselines:
        strategies.append(("llf-users", LeastLoadedFirst(metric="users")))
        strategies.append(("rssi", StrongestSignal()))
    outcomes: Dict[str, StrategyOutcome] = {}
    for name, strategy in strategies:
        result = workload.replay_test(strategy)
        outcomes[name] = _evaluate(name, result)
    return Fig12Result(outcomes=outcomes)
