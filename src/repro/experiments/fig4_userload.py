"""Fig. 4 — the user-count balance index tracks the traffic balance index.

Section III.C.2 plots, for one controller over one workday (8:00-24:00),
the normalized balance index of the *number of users* per AP next to the
index of *traffic* per AP, and observes that the two move together — when
the user index drops (bulk departures), the traffic index drops with it.
The reproduction renders both series and reports their correlation over
the active part of the day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.balance import balance_series, user_count_balance_series
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_series
from repro.experiments.workload import build_workload
from repro.sim.timeline import DAY, HOUR, MINUTE, Timeline, is_workday


@dataclass
class Fig4Result:
    """Paired index series over one workday for one controller."""

    controller_id: str
    day: int
    times: np.ndarray
    traffic_index: np.ndarray
    user_index: np.ndarray
    correlation: float

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        hours = (self.times % DAY) / HOUR
        lines = [
            f"Fig. 4 — balance of user counts vs traffic "
            f"({self.controller_id}, day {self.day}, 8:00-24:00)",
            format_series(
                hours, self.traffic_index, "hour", "traffic_index",
                title="traffic balance index",
            ),
            format_series(
                hours, self.user_index, "hour", "user_index",
                title="user-count balance index",
            ),
            f"correlation(traffic, users) = {self.correlation:.3f} "
            f"(paper: the two plots are 'very similar in layout')",
        ]
        return "\n".join(lines)


def run(
    config: ExperimentConfig = PAPER,
    controller_id: Optional[str] = None,
    day: Optional[int] = None,
    window: float = 30 * MINUTE,
) -> Fig4Result:
    """Execute the Fig. 4 measurement on the given preset."""
    workload = build_workload(config)
    layout = workload.world.layout
    if controller_id is None:
        controller_id = sorted(layout.controller_ids)[0]
    if day is None:
        # The last workday of the training stage: the campus is in steady
        # state and the collected trace is guaranteed to cover it.
        day = next(
            d for d in range(config.train_days - 1, -1, -1)
            if is_workday(d * DAY)
        )
    ap_ids = [ap.ap_id for ap in layout.aps_of_controller(controller_id)]
    sessions = [
        s for s in workload.collected.sessions if s.controller_id == controller_id
    ]
    timeline = Timeline(day * DAY + 8 * HOUR, day * DAY + 24 * HOUR)
    times, traffic = balance_series(sessions, ap_ids, timeline, window)
    _, users = user_count_balance_series(sessions, ap_ids, timeline, window)

    # Correlate only where the domain is active under both views; the
    # all-idle convention (index 1.0) would otherwise inflate agreement.
    active = (traffic < 1.0) | (users < 1.0)
    if active.sum() >= 3:
        correlation = float(np.corrcoef(traffic[active], users[active])[0, 1])
    else:
        correlation = float("nan")
    return Fig4Result(
        controller_id=controller_id,
        day=day,
        times=times,
        traffic_index=traffic,
        user_index=users,
        correlation=correlation,
    )
