"""Workload materialization and caching.

Every experiment needs the same expensive artifacts: the synthetic campus,
its demand trace, the *collected* training trace (training-period demands
replayed under LLF — the strategy the production network runs, exactly as
in the paper), and a trained S³ model.  This module builds them once per
:class:`~repro.experiments.config.ExperimentConfig` and caches them
in-process, so a benchmark session touching all twelve experiments pays
the generation cost once.

**Fork-safety contract.**  The caches are *per-process* and must never be
inherited across a fork: a forked worker sharing multi-hundred-megabyte
workload objects with its parent defeats copy-on-write the moment either
side touches them, and a cache populated before the fork hides the cost a
worker's first build would otherwise expose.  :mod:`repro.runtime` worker
initializers therefore call :func:`clear_caches` as their first act —
workers rebuild what they need (deterministically, from the config seed)
rather than inherit it.  Anything added to this module must stay safe to
drop and rebuild from its :class:`ExperimentConfig` key alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs, perf
from repro.core.pipeline import S3Model, TrainingConfig, train_s3
from repro.experiments.config import ExperimentConfig
from repro.trace.generator import TraceGenerator
from repro.trace.records import DemandSession, TraceBundle
from repro.trace.social import SocialWorld, build_world
from repro.sim.rng import RandomStreams
from repro.wlan.replay import ReplayConfig, ReplayEngine, ReplayResult, collect_trace
from repro.wlan.strategies import LeastLoadedFirst, SelectionStrategy


@dataclass
class Workload:
    """Everything an experiment consumes."""

    config: ExperimentConfig
    world: SocialWorld
    #: Full-period demands + flows (no sessions — those are strategy-made).
    bundle: TraceBundle
    #: Training-period sessions collected under LLF, plus the matching
    #: flows/demands: the paper's "real trace" stand-in.
    collected: TraceBundle
    #: Evaluation-period demands (the paper's July 25-27).
    test_demands: List[DemandSession]

    def replay_test(
        self,
        strategy: SelectionStrategy,
        config_override: Optional[ReplayConfig] = None,
    ) -> ReplayResult:
        """Replay the evaluation period under ``strategy``."""
        replay_config = (
            config_override if config_override is not None else self.config.replay
        )
        engine = ReplayEngine(self.world.layout, strategy, replay_config)
        return engine.run(self.test_demands)


_WORKLOADS: Dict[Tuple[str, int], Workload] = {}
_MODELS: Dict[Tuple[str, int, str], S3Model] = {}


def build_workload(config: ExperimentConfig) -> Workload:
    """Materialize (or fetch from cache) the workload for ``config``."""
    key = (config.name, config.seed)
    if key in _WORKLOADS:
        return _WORKLOADS[key]
    streams = RandomStreams(config.seed)
    world = build_world(config.world, streams)
    generator = TraceGenerator(world, config.generator_config(), streams=streams)
    with perf.timer("workload.generate"), obs.span(
        "workload.generate", preset=config.name, seed=config.seed
    ):
        bundle = generator.generate()
    split = config.split_time
    train_source = TraceBundle(
        demands=[d for d in bundle.demands if d.arrival < split],
        flows=[f for f in bundle.flows if f.start < split],
    )
    with perf.timer("workload.collect"), obs.span(
        "workload.collect", preset=config.name
    ):
        collected = collect_trace(
            world.layout, train_source, LeastLoadedFirst(), config=config.replay
        )
    test_demands = [d for d in bundle.demands if d.arrival >= split]
    workload = Workload(
        config=config,
        world=world,
        bundle=bundle,
        collected=collected,
        test_demands=test_demands,
    )
    _WORKLOADS[key] = workload
    return workload


def trained_model(
    config: ExperimentConfig,
    training: Optional[TrainingConfig] = None,
) -> S3Model:
    """Train (or fetch from cache) the S³ model for ``config``.

    A non-default ``training`` config bypasses the default-model cache but
    is cached under its own repr, so parameter sweeps that revisit a
    configuration do not retrain.
    """
    training = training if training is not None else config.training
    key = (config.name, config.seed, repr(training))
    if key in _MODELS:
        return _MODELS[key]
    workload = build_workload(config)
    with perf.timer("workload.train"), obs.span(
        "workload.train", preset=config.name
    ):
        model = train_s3(workload.collected, training)
    _MODELS[key] = model
    return model


def clear_caches() -> None:
    """Drop all cached workloads and models.

    Called by tests and — per the module's fork-safety contract — by
    every :mod:`repro.runtime` worker initializer, so worker processes
    rebuild workloads instead of inheriting the parent's cache."""
    _WORKLOADS.clear()
    _MODELS.clear()


def cache_sizes() -> Tuple[int, int]:
    """``(workloads, models)`` entry counts (test/diagnostic hook)."""
    return len(_WORKLOADS), len(_MODELS)
