"""Fig. 10 — balance vs the co-leaving extraction window and alpha.

Section V.B sweeps the co-leaving extraction window from one to twenty
minutes (and the type-prior weight alpha over {0.1, 0.3, 0.5}), retrains
the social relationships with each setting, and replays the evaluation
days under S³.  The paper finds an interior optimum at five minutes: a
tiny window collects too few co-leavings to learn from, a huge window
collects too many coincidences (fake relationships), and alpha = 0.3 with
the five-minute window is the operating point the rest of the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.evaluation import mean_daytime_balance, social_graph_quality
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_workload, trained_model
from repro.sim.timeline import MINUTE
from repro.wlan.strategies import S3Strategy

WINDOW_MINUTES = (1.0, 5.0, 10.0, 15.0, 20.0)
ALPHAS = (0.1, 0.3, 0.5)


@dataclass
class Fig10Result:
    """Mean balance by (window, alpha), plus social-graph quality by window.

    The balance surface is the paper's y-axis.  ``graph_quality`` (one row
    per window, measured at the paper's alpha = 0.3) exposes the
    *mechanism* behind the interior optimum: precision of the learned
    relations falls with the window while recall saturates, so F1 peaks at
    an intermediate window.  On the synthetic campus the balance surface
    itself is nearly flat — Algorithm 1's balance guard makes S³ fail-safe
    against a degraded social model — so the shape assertion lives on the
    graph-quality curve (see EXPERIMENTS.md).
    """

    windows: Tuple[float, ...]
    alphas: Tuple[float, ...]
    balance: np.ndarray  # (n_windows, n_alphas)
    graph_quality: List[Dict[str, float]]  # per window, at alpha = 0.3

    def best_window(self, alpha: float) -> float:
        """Window with the best mean balance for this alpha."""
        column = self.alphas.index(alpha)
        return self.windows[int(np.argmax(self.balance[:, column]))]

    def best_f1_window(self) -> float:
        """Window whose learned social graph has the best F1."""
        return self.windows[
            int(np.argmax([q["f1"] for q in self.graph_quality]))
        ]

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        headers = ["window_min"] + [f"alpha={a:g}" for a in self.alphas]
        rows = [
            [w] + [float(v) for v in self.balance[i]]
            for i, w in enumerate(self.windows)
        ]
        table = format_table(
            headers, rows,
            title="Fig. 10 — mean normalized balance vs co-leaving window",
        )
        quality_rows = [
            (w, q["edges"], q["precision"], q["recall"], q["f1"])
            for w, q in zip(self.windows, self.graph_quality)
        ]
        quality = format_table(
            ["window_min", "edges", "precision", "recall", "F1"],
            quality_rows,
            title="social-graph quality vs window (alpha = 0.3, ground truth)",
        )
        best = {a: self.best_window(a) for a in self.alphas}
        return (
            f"{table}\n{quality}\n"
            f"best balance window per alpha: {best}; best-F1 window: "
            f"{self.best_f1_window()} min (paper: optimum at 5 minutes, "
            f"alpha = 0.3 chosen)"
        )


def run(
    config: ExperimentConfig = PAPER,
    windows_minutes: Tuple[float, ...] = WINDOW_MINUTES,
    alphas: Tuple[float, ...] = ALPHAS,
) -> Fig10Result:
    """Execute the Fig. 10 sweep on the given preset."""
    workload = build_workload(config)
    balance = np.zeros((len(windows_minutes), len(alphas)))
    graph_quality: List[Dict[str, float]] = []
    for i, window in enumerate(windows_minutes):
        for j, alpha in enumerate(alphas):
            training = replace(
                config.training,
                coleave_window=window * MINUTE,
                alpha=alpha,
            )
            model = trained_model(config, training)
            result = workload.replay_test(S3Strategy(model.selector()))
            balance[i, j] = mean_daytime_balance(result)
            if alpha == 0.3:
                graph_quality.append(
                    social_graph_quality(model, workload.world)
                )
    if not graph_quality:
        # alpha = 0.3 not in the sweep: measure at the first alpha instead.
        for window in windows_minutes:
            training = replace(
                config.training,
                coleave_window=window * MINUTE,
                alpha=alphas[0],
            )
            model = trained_model(config, training)
            graph_quality.append(social_graph_quality(model, workload.world))
    return Fig10Result(
        windows=tuple(windows_minutes),
        alphas=tuple(alphas),
        balance=balance,
        graph_quality=graph_quality,
    )
