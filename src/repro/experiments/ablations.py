"""Ablation studies of the design choices DESIGN.md §5 calls out.

Each function retrains / re-replays the evaluation days with one design
element altered and reports mean daytime balance:

* :func:`run_terms` — knock out each term of the social relation index;
* :func:`run_batching` — clique-based batch distribution vs purely online
  selection with the same scoring;
* :func:`run_threshold` — sweep the 0.3 social-graph edge threshold;
* :func:`run_staleness` — sweep the controller's load-polling interval
  for LLF and S³ (the mechanism that makes arrival-based least-loaded
  selection herd, and the sharpest demonstration of why S³ is steady).

These back both the benchmark harness (``benchmarks/test_bench_ablation_
*.py``) and the command-line runner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import TrainingConfig
from repro.core.selection import APState, S3Selector, SelectionConfig
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.evaluation import mean_daytime_balance
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_workload, trained_model
from repro.sim.timeline import MINUTE
from repro.wlan.strategies import LeastLoadedFirst, S3Strategy, SelectionStrategy


@dataclass
class AblationResult:
    """A labeled set of mean-balance outcomes."""

    title: str
    rows: List[Tuple[object, ...]]
    headers: List[str]

    def as_dict(self) -> Dict[object, Tuple[object, ...]]:
        """Rows keyed by their first column."""
        return {row[0]: row[1:] for row in self.rows}

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        return format_table(self.headers, self.rows, title=self.title)


class OnlineOnlyS3(SelectionStrategy):
    """S³ scoring applied one user at a time — no clique batches.

    The engine's sequential fallback (triggered by ``assign_batch``
    returning ``None``) feeds arrivals through ``select`` with live state
    updates, which is exactly an online-only controller.
    """

    name = "s3-online-only"

    def __init__(self, selector: S3Selector) -> None:
        self.selector = selector

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """One-at-a-time S3 selection (no batch hook)."""
        return self.selector.select(user_id, aps)


def run_terms(config: ExperimentConfig = PAPER) -> AblationResult:
    """Social-index term knockout: full vs alpha=0 vs conditional-off."""
    workload = build_workload(config)

    def balance_for(training: TrainingConfig) -> float:
        model = trained_model(config, training)
        return mean_daytime_balance(
            workload.replay_test(S3Strategy(model.selector()))
        )

    base = config.training
    rows = [
        ("full", balance_for(base)),
        ("no-type-prior", balance_for(replace(base, alpha=0.0))),
        ("type-prior-only", balance_for(replace(base, min_encounters=10**9))),
        (
            "llf-baseline",
            mean_daytime_balance(workload.replay_test(LeastLoadedFirst())),
        ),
    ]
    return AblationResult(
        title="Ablation — social index terms",
        headers=["variant", "mean_balance"],
        rows=rows,
    )


def run_batching(config: ExperimentConfig = PAPER) -> AblationResult:
    """Clique-based batch distribution vs online-only selection."""
    workload = build_workload(config)
    model = trained_model(config)
    rows = [
        (
            "clique-batched",
            mean_daytime_balance(
                workload.replay_test(S3Strategy(model.selector()))
            ),
        ),
        (
            "online-only",
            mean_daytime_balance(
                workload.replay_test(OnlineOnlyS3(model.selector()))
            ),
        ),
    ]
    return AblationResult(
        title="Ablation — clique batching vs online-only",
        headers=["variant", "mean_balance"],
        rows=rows,
    )


def run_threshold(
    config: ExperimentConfig = PAPER,
    thresholds: Sequence[float] = (0.05, 0.3, 0.6, 1.5),
) -> AblationResult:
    """Sweep of the social-graph edge threshold (paper: 0.3)."""
    workload = build_workload(config)
    rows = []
    for threshold in thresholds:
        training = replace(
            config.training,
            selection=SelectionConfig(edge_threshold=threshold),
        )
        model = trained_model(config, training)
        rows.append(
            (
                threshold,
                mean_daytime_balance(
                    workload.replay_test(S3Strategy(model.selector()))
                ),
            )
        )
    return AblationResult(
        title="Ablation — social-graph edge threshold",
        headers=["edge_threshold", "mean_balance"],
        rows=rows,
    )


@dataclass
class AllAblations:
    """Every ablation, for the command-line runner."""

    results: List[AblationResult]

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        return "\n\n".join(result.render() for result in self.results)


def run(config: ExperimentConfig = PAPER) -> AllAblations:
    """Run all four ablations (the ``ablations`` runner entry)."""
    return AllAblations(
        results=[
            run_terms(config),
            run_batching(config),
            run_threshold(config),
            run_staleness(config),
        ]
    )


def run_staleness(
    config: ExperimentConfig = PAPER,
    poll_intervals: Sequence[float] = (1.0, 5 * MINUTE, 15 * MINUTE),
) -> AblationResult:
    """Load-measurement staleness sweep for LLF vs S³."""
    workload = build_workload(config)
    model = trained_model(config)
    rows = []
    for interval in poll_intervals:
        replay = replace(config.replay, load_measurement_interval=interval)
        llf = mean_daytime_balance(
            workload.replay_test(LeastLoadedFirst(), replay)
        )
        s3 = mean_daytime_balance(
            workload.replay_test(S3Strategy(model.selector()), replay)
        )
        rows.append((interval, llf, s3))
    return AblationResult(
        title="Ablation — load-measurement staleness",
        headers=["poll_interval_s", "llf_balance", "s3_balance"],
        rows=rows,
    )
