"""Ablation studies of the design choices DESIGN.md §5 calls out.

Each function retrains / re-replays the evaluation days with one design
element altered and reports mean daytime balance:

* :func:`run_terms` — knock out each term of the social relation index;
* :func:`run_batching` — clique-based batch distribution vs purely online
  selection with the same scoring;
* :func:`run_threshold` — sweep the 0.3 social-graph edge threshold;
* :func:`run_staleness` — sweep the controller's load-polling interval
  for LLF and S³ (the mechanism that makes arrival-based least-loaded
  selection herd, and the sharpest demonstration of why S³ is steady).

These back both the benchmark harness (``benchmarks/test_bench_ablation_
*.py``) and the command-line runner.

Each sweep is expressed as a :class:`~repro.runtime.SweepPlan` (one task
per variant, built by the ``plan_*`` twins) and executed through
:func:`repro.runtime.run_sweep`.  The default is the serial engine —
task-for-task the same call sequence as the original loops — while a
``runtime=RuntimeOptions(engine="process", ...)`` argument fans the
variants out over a process pool and/or checkpoints them to a run
directory for resume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.selection import APState, S3Selector, SelectionConfig
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.runtime.options import RuntimeOptions
from repro.runtime.sweep import SweepPlan, balance_task, make_task, run_sweep
from repro.sim.timeline import MINUTE
from repro.wlan.strategies import SelectionStrategy


@dataclass
class AblationResult:
    """A labeled set of mean-balance outcomes."""

    title: str
    rows: List[Tuple[object, ...]]
    headers: List[str]

    def as_dict(self) -> Dict[object, Tuple[object, ...]]:
        """Rows keyed by their first column."""
        return {row[0]: row[1:] for row in self.rows}

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        return format_table(self.headers, self.rows, title=self.title)


class OnlineOnlyS3(SelectionStrategy):
    """S³ scoring applied one user at a time — no clique batches.

    The engine's sequential fallback (triggered by ``assign_batch``
    returning ``None``) feeds arrivals through ``select`` with live state
    updates, which is exactly an online-only controller.
    """

    name = "s3-online-only"

    def __init__(self, selector: S3Selector) -> None:
        self.selector = selector

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """One-at-a-time S3 selection (no batch hook)."""
        return self.selector.select(user_id, aps)


def _execute(plan: SweepPlan, runtime: Optional[RuntimeOptions]) -> Dict[str, Any]:
    """Run ``plan`` under ``runtime`` (serial, in order, by default)."""
    options = runtime if runtime is not None else RuntimeOptions(engine="serial")
    return run_sweep(
        plan,
        engine=options.engine,
        workers=options.workers,
        run_dir=options.run_dir,
    )


_TERM_VARIANTS = ("full", "no-type-prior", "type-prior-only", "llf-baseline")


def plan_terms(config: ExperimentConfig = PAPER) -> SweepPlan:
    """The term-knockout sweep as an executable task graph."""
    base = config.training
    return SweepPlan(
        [
            make_task(
                "terms/full", balance_task, config=config, strategy="s3",
                training=base,
            ),
            make_task(
                "terms/no-type-prior", balance_task, config=config,
                strategy="s3", training=replace(base, alpha=0.0),
            ),
            make_task(
                "terms/type-prior-only", balance_task, config=config,
                strategy="s3", training=replace(base, min_encounters=10**9),
            ),
            make_task(
                "terms/llf-baseline", balance_task, config=config,
                strategy="llf",
            ),
        ]
    )


def run_terms(
    config: ExperimentConfig = PAPER,
    runtime: Optional[RuntimeOptions] = None,
) -> AblationResult:
    """Social-index term knockout: full vs alpha=0 vs conditional-off."""
    values = _execute(plan_terms(config), runtime)
    rows: List[Tuple[object, ...]] = [
        (label, values[f"terms/{label}"]) for label in _TERM_VARIANTS
    ]
    return AblationResult(
        title="Ablation — social index terms",
        headers=["variant", "mean_balance"],
        rows=rows,
    )


def plan_batching(config: ExperimentConfig = PAPER) -> SweepPlan:
    """The batching-vs-online sweep as an executable task graph."""
    return SweepPlan(
        [
            make_task(
                "batching/clique-batched", balance_task, config=config,
                strategy="s3",
            ),
            make_task(
                "batching/online-only", balance_task, config=config,
                strategy="s3", online_only=True,
            ),
        ]
    )


def run_batching(
    config: ExperimentConfig = PAPER,
    runtime: Optional[RuntimeOptions] = None,
) -> AblationResult:
    """Clique-based batch distribution vs online-only selection."""
    values = _execute(plan_batching(config), runtime)
    rows: List[Tuple[object, ...]] = [
        ("clique-batched", values["batching/clique-batched"]),
        ("online-only", values["batching/online-only"]),
    ]
    return AblationResult(
        title="Ablation — clique batching vs online-only",
        headers=["variant", "mean_balance"],
        rows=rows,
    )


def plan_threshold(
    config: ExperimentConfig = PAPER,
    thresholds: Sequence[float] = (0.05, 0.3, 0.6, 1.5),
) -> SweepPlan:
    """The edge-threshold sweep as an executable task graph."""
    return SweepPlan(
        [
            make_task(
                f"threshold/{threshold!r}", balance_task, config=config,
                strategy="s3",
                training=replace(
                    config.training,
                    selection=SelectionConfig(edge_threshold=threshold),
                ),
            )
            for threshold in thresholds
        ]
    )


def run_threshold(
    config: ExperimentConfig = PAPER,
    thresholds: Sequence[float] = (0.05, 0.3, 0.6, 1.5),
    runtime: Optional[RuntimeOptions] = None,
) -> AblationResult:
    """Sweep of the social-graph edge threshold (paper: 0.3)."""
    values = _execute(plan_threshold(config, thresholds), runtime)
    rows: List[Tuple[object, ...]] = [
        (threshold, values[f"threshold/{threshold!r}"])
        for threshold in thresholds
    ]
    return AblationResult(
        title="Ablation — social-graph edge threshold",
        headers=["edge_threshold", "mean_balance"],
        rows=rows,
    )


@dataclass
class AllAblations:
    """Every ablation, for the command-line runner."""

    results: List[AblationResult]

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        return "\n\n".join(result.render() for result in self.results)


def run(
    config: ExperimentConfig = PAPER,
    runtime: Optional[RuntimeOptions] = None,
) -> AllAblations:
    """Run all four ablations (the ``ablations`` runner entry)."""
    return AllAblations(
        results=[
            run_terms(config, runtime=runtime),
            run_batching(config, runtime=runtime),
            run_threshold(config, runtime=runtime),
            run_staleness(config, runtime=runtime),
        ]
    )


def plan_staleness(
    config: ExperimentConfig = PAPER,
    poll_intervals: Sequence[float] = (1.0, 5 * MINUTE, 15 * MINUTE),
) -> SweepPlan:
    """The staleness sweep as an executable task graph."""
    tasks = []
    for interval in poll_intervals:
        replay = replace(config.replay, load_measurement_interval=interval)
        tasks.append(
            make_task(
                f"staleness/{interval!r}/llf", balance_task, config=config,
                strategy="llf", replay=replay,
            )
        )
        tasks.append(
            make_task(
                f"staleness/{interval!r}/s3", balance_task, config=config,
                strategy="s3", replay=replay,
            )
        )
    return SweepPlan(tasks)


def run_staleness(
    config: ExperimentConfig = PAPER,
    poll_intervals: Sequence[float] = (1.0, 5 * MINUTE, 15 * MINUTE),
    runtime: Optional[RuntimeOptions] = None,
) -> AblationResult:
    """Load-measurement staleness sweep for LLF vs S³."""
    values = _execute(plan_staleness(config, poll_intervals), runtime)
    rows: List[Tuple[object, ...]] = [
        (
            interval,
            values[f"staleness/{interval!r}/llf"],
            values[f"staleness/{interval!r}/s3"],
        )
        for interval in poll_intervals
    ]
    return AblationResult(
        title="Ablation — load-measurement staleness",
        headers=["poll_interval_s", "llf_balance", "s3_balance"],
        rows=rows,
    )
