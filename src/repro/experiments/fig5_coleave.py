"""Fig. 5 — most departures are co-leavings.

Section III.D.1 plots the CDF, over all users, of the ratio of a user's
co-leaving events to their total leaving events, for extraction windows of
10, 20 and 30 minutes, and concludes "most users show strong sociality in
their AP access behavior and do not leave an AP independently".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.churn import coleaving_fraction_per_user
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_cdf_summary
from repro.experiments.workload import build_workload
from repro.sim.timeline import MINUTE

WINDOWS = (10 * MINUTE, 20 * MINUTE, 30 * MINUTE)


@dataclass
class Fig5Result:
    """Per-user co-leaving fractions by extraction window."""

    fractions: Dict[float, np.ndarray]

    def median(self, window: float) -> float:
        """Median per-user co-leaving fraction for the given window."""
        return float(np.median(self.fractions[window]))

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        lines = ["Fig. 5 — fraction of departures that are co-leavings, per user"]
        for window in sorted(self.fractions):
            label = f"{window / MINUTE:.0f}-min window"
            lines.append(
                format_cdf_summary(label, self.fractions[window], thresholds=(0.5,))
            )
        lines.append(
            "paper: most users show strong sociality (CDF mass at high "
            "fractions, larger windows shift it right)"
        )
        return "\n".join(lines)


def run(config: ExperimentConfig = PAPER) -> Fig5Result:
    """Execute the Fig. 5 measurement on the given preset."""
    workload = build_workload(config)
    # One shared columnar view: the three window sweeps pay the transpose
    # (and the per-AP sort) once.
    columns = workload.collected.columns()
    fractions: Dict[float, np.ndarray] = {}
    for window in WINDOWS:
        per_user = coleaving_fraction_per_user(columns, window)
        fractions[window] = np.asarray(sorted(per_user.values()))
    return Fig5Result(fractions=fractions)
