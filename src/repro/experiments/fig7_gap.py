"""Fig. 7 — the gap statistic selects k = 4 user types.

Section III.D.2 clusters users' normalized application-usage vectors with
k-means and chooses k via the gap statistic: the smallest k with
``Gap(k) >= Gap(k+1) - s_{k+1}``.  The paper observes the rule firing at
k = 4.  The synthetic campus plants exactly four usage types, so the
reproduction should recover the same selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.gap import GapResult, gap_statistic
from repro.core.profiles import build_daily_profiles
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_workload


@dataclass
class Fig7Result:
    """Gap-statistic curve plus the selected k."""
    gap: GapResult
    n_users: int

    @property
    def selected_k(self) -> int:
        """The k chosen by the gap-statistic rule."""
        return self.gap.selected_k

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        rows = [
            (row["k"], row["gap"], row["s_k"], row["log_wk"])
            for row in self.gap.as_rows()
        ]
        table = format_table(
            ["k", "Gap(k)", "s_k", "log W_k"],
            rows,
            title=f"Fig. 7 — gap statistic over {self.n_users} user profiles",
        )
        return (
            f"{table}\n"
            f"selected k = {self.selected_k} (paper: k = 4, matching the "
            f"four planted usage types)"
        )


def run(
    config: ExperimentConfig = PAPER,
    k_max: int = 10,
    n_references: int = 10,
) -> Fig7Result:
    """Execute the Fig. 7 selection on the given preset."""
    workload = build_workload(config)
    store = build_daily_profiles(workload.collected.flows)
    lookback = min(config.training.lookback_days, config.train_days)
    users, matrix = store.profile_matrix(
        end_day=config.train_days, lookback=lookback
    )
    rng = np.random.default_rng(config.training.seed)
    gap = gap_statistic(matrix, k_max=k_max, n_references=n_references, rng=rng)
    return Fig7Result(gap=gap, n_users=len(users))
