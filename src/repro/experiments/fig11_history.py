"""Fig. 11 — balance vs the amount of training history.

Section V.B varies how many days of history feed the learning stage (for
alpha in {0.1, 0.3, 0.5}) and finds the balance index rising with history
and stabilizing at about 15 days — matching the NMI plateau of Fig. 6:
older data neither helps nor hurts.

The reproduction truncates the *whole* learning stage (profiles, churn
events, demand history) to the last n days before the evaluation split,
retrains, and replays the evaluation days under S³.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.core.pipeline import train_s3
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.evaluation import mean_daytime_balance, social_graph_quality
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_workload
from repro.sim.timeline import DAY
from repro.wlan.strategies import S3Strategy

HISTORY_DAYS = (1, 3, 5, 10, 15, 20)
ALPHAS = (0.1, 0.3, 0.5)


@dataclass
class Fig11Result:
    """Balance by (history, alpha) plus social-graph quality per history.

    As with Fig. 10, the balance surface on the synthetic campus is nearly
    flat (the balance guard masks model degradation); the history effect
    the paper describes — relations accumulate with history and saturate —
    shows directly in the graph-quality curve (measured at alpha = 0.3).
    """

    history_days: Tuple[int, ...]
    alphas: Tuple[float, ...]
    balance: np.ndarray  # (n_history, n_alphas)
    graph_quality: List[Dict[str, float]]  # per history depth

    def plateau_day(self, alpha: float, tolerance: float = 0.01) -> int:
        """First history depth whose balance is within ``tolerance`` of the
        best achieved for this alpha."""
        column = self.alphas.index(alpha)
        best = float(self.balance[:, column].max())
        for i, days in enumerate(self.history_days):
            if self.balance[i, column] >= best - tolerance:
                return days
        return self.history_days[-1]

    def recall_curve(self) -> np.ndarray:
        """Graph recall per history depth."""
        return np.asarray([q["recall"] for q in self.graph_quality])

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        headers = ["history_days"] + [f"alpha={a:g}" for a in self.alphas]
        rows = [
            [d] + [float(v) for v in self.balance[i]]
            for i, d in enumerate(self.history_days)
        ]
        table = format_table(
            headers, rows,
            title="Fig. 11 — mean normalized balance vs days of history",
        )
        quality_rows = [
            (d, q["edges"], q["precision"], q["recall"], q["f1"])
            for d, q in zip(self.history_days, self.graph_quality)
        ]
        quality = format_table(
            ["history_days", "edges", "precision", "recall", "F1"],
            quality_rows,
            title="social-graph quality vs history (alpha = 0.3, ground truth)",
        )
        plateaus = {a: self.plateau_day(a) for a in self.alphas}
        return (
            f"{table}\n{quality}\n"
            f"balance plateau reached by (days): {plateaus} "
            f"(paper: rises then stabilizes around 15 days)"
        )


def run(
    config: ExperimentConfig = PAPER,
    history_days: Tuple[int, ...] = None,
    alphas: Tuple[float, ...] = ALPHAS,
) -> Fig11Result:
    """Execute the Fig. 11 history sweep on the given preset."""
    workload = build_workload(config)
    if history_days is None:
        history_days = tuple(
            d for d in HISTORY_DAYS if d <= config.train_days
        )
    split = config.split_time
    balance = np.zeros((len(history_days), len(alphas)))
    graph_quality: List[Dict[str, float]] = []
    quality_alpha = 0.3 if 0.3 in alphas else alphas[0]
    for i, days in enumerate(history_days):
        window_bundle = workload.collected.restrict(split - days * DAY, split)
        for j, alpha in enumerate(alphas):
            training = replace(config.training, alpha=alpha, lookback_days=days)
            model = train_s3(window_bundle, training)
            result = workload.replay_test(S3Strategy(model.selector()))
            balance[i, j] = mean_daytime_balance(result)
            if alpha == quality_alpha:
                graph_quality.append(
                    social_graph_quality(model, workload.world)
                )
    return Fig11Result(
        history_days=tuple(history_days),
        alphas=tuple(alphas),
        balance=balance,
        graph_quality=graph_quality,
    )
