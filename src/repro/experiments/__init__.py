"""Per-figure / per-table experiment runners.

One module per experiment, each exposing ``run(config) -> <Result>`` with a
``render()`` method that prints the same rows/series the paper reports.
The mapping to the paper (see DESIGN.md §4):

=================  ====================================================
``fig2_balance``   CDF of normalized balance index under LLF (Fig. 2)
``fig3_appdyn``    CDF of the variance-of-balance statistic S (Fig. 3)
``fig4_userload``  user-count vs traffic balance time series (Fig. 4)
``fig5_coleave``   CDF of per-user co-leaving fraction (Fig. 5)
``fig6_nmi``       NMI vs history depth (Fig. 6)
``fig7_gap``       gap statistic over k (Fig. 7)
``fig8_centroids`` the four cluster centroids (Fig. 8)
``table1``         type-pair co-leaving affinity matrix (Table I)
``fig10_window``   balance vs co-leaving window x alpha (Fig. 10)
``fig11_history``  balance vs history depth x alpha (Fig. 11)
``fig12_compare``  S3 vs LLF comparison with CIs (Fig. 12)
=================  ====================================================

``config`` holds the shared experiment presets (the PAPER preset is the
calibrated campus used by the benchmark harness; SMALL is a fast variant
for tests) and ``workload`` materializes and caches the synthetic campus,
the LLF-collected training trace and the trained S³ model.
"""

from repro.experiments.config import (
    PAPER,
    SMALL,
    TINY,
    ExperimentConfig,
)
from repro.experiments.workload import Workload, build_workload, trained_model

__all__ = [
    "PAPER",
    "SMALL",
    "TINY",
    "ExperimentConfig",
    "Workload",
    "build_workload",
    "trained_model",
]
