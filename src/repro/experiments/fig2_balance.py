"""Fig. 2 — CDF of the normalized balance index under the production LLF.

The paper computes, over all WLAN controllers, the distribution of the
normalized balance index of per-AP traffic, separately for *peak hours*
(10:00-11:00 and 15:00-16:00) and for *average hours* of the workday, and
reads off that the index is below 0.5 for ~20% of peak-hour time and ~60%
of all-day time — LLF does not keep the network balanced.

Here the same measurement runs over the synthetic campus's collected
(LLF-replayed) training trace: one balance-index sample per (controller,
workday hour) with traffic, split into the peak-hour and all-hour
populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.balance import ap_throughputs, normalized_balance_index
from repro.analysis.cdf import EmpiricalCDF, fraction_below
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_cdf_summary, format_series
from repro.experiments.workload import build_workload
from repro.sim.timeline import HOUR, PEAK_HOURS, Timeline, hour_of_day, is_workday


@dataclass
class Fig2Result:
    """Hourly balance-index samples under LLF."""

    all_hours: np.ndarray
    peak_hours: np.ndarray
    frac_below_half_all: float
    frac_below_half_peak: float

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        lines = ["Fig. 2 — normalized balance index under LLF (hourly, per controller)"]
        lines.append(format_cdf_summary("average hours", self.all_hours))
        lines.append(format_cdf_summary("peak hours   ", self.peak_hours))
        grid, cdf = EmpiricalCDF(self.all_hours).series(points=11)
        lines.append(
            format_series(grid, cdf, "balance_index", "CDF", title="all-hours CDF")
        )
        lines.append(
            f"paper: ~60% of average-hour time and ~20% of peak-hour time "
            f"below 0.5; measured: {self.frac_below_half_all:.0%} / "
            f"{self.frac_below_half_peak:.0%}"
        )
        return "\n".join(lines)


def run(config: ExperimentConfig = PAPER) -> Fig2Result:
    """Execute the Fig. 2 measurement on the given preset."""
    workload = build_workload(config)
    sessions = workload.collected.sessions
    layout = workload.world.layout

    controller_ids = sorted(layout.controller_ids)
    sessions_by_controller = {cid: [] for cid in controller_ids}
    for session in sessions:
        sessions_by_controller[session.controller_id].append(session)
    ap_ids_by_controller = {
        cid: [ap.ap_id for ap in layout.aps_of_controller(cid)]
        for cid in controller_ids
    }

    all_samples: List[float] = []
    peak_samples: List[float] = []
    span = Timeline(0.0, config.train_days * 24 * HOUR)
    for day in span.days():
        if not is_workday(day.start):
            continue
        for hour_window in day.hours():
            hour = hour_of_day(hour_window.start)
            if not 8 <= hour < 24:
                continue
            for controller_id in controller_ids:
                loads = ap_throughputs(
                    sessions_by_controller[controller_id],
                    ap_ids_by_controller[controller_id],
                    hour_window.start,
                    hour_window.end,
                )
                values = list(loads.values())
                if sum(values) <= 0:
                    continue  # idle domain-hours carry no balance information
                index = normalized_balance_index(values)
                all_samples.append(index)
                if hour in PEAK_HOURS:
                    peak_samples.append(index)

    all_array = np.asarray(all_samples)
    peak_array = np.asarray(peak_samples)
    return Fig2Result(
        all_hours=all_array,
        peak_hours=peak_array,
        frac_below_half_all=fraction_below(all_array, 0.5),
        frac_below_half_peak=fraction_below(peak_array, 0.5),
    )
