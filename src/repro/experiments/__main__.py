"""Run every experiment and print its rendered report.

    python -m repro.experiments [paper|small|tiny] [--perf] [fig2 fig5 ...]

Without experiment names, all twelve run in paper order.  ``--perf``
appends a :mod:`repro.perf` timer/counter table after each experiment
(reset in between, so each table covers exactly one experiment — note the
in-process workload cache means only the first experiment pays generation
and training).  This is the human-facing sibling of the benchmark harness
(``pytest benchmarks/``), which runs the same code and asserts the
qualitative shapes.
"""

from __future__ import annotations

import sys
from typing import Sequence

from repro import perf
from repro.experiments import config as config_module
from repro.experiments import (
    fig2_balance,
    fig3_appdyn,
    fig4_userload,
    fig5_coleave,
    fig6_nmi,
    fig7_gap,
    fig8_centroids,
    table1,
    fig10_window,
    fig11_history,
    fig12_compare,
    forecast,
    ablations,
)

EXPERIMENTS = {
    "fig2": fig2_balance,
    "fig3": fig3_appdyn,
    "fig4": fig4_userload,
    "fig5": fig5_coleave,
    "fig6": fig6_nmi,
    "fig7": fig7_gap,
    "fig8": fig8_centroids,
    "table1": table1,
    "fig10": fig10_window,
    "fig11": fig11_history,
    "fig12": fig12_compare,
    "forecast": forecast,
    "ablations": ablations,
}

PRESETS = {
    "paper": config_module.PAPER,
    "small": config_module.SMALL,
    "tiny": config_module.TINY,
}


def main(argv: Sequence[str]) -> int:
    """Run the named experiments on the chosen preset; returns exit code."""
    args = list(argv)
    show_perf = "--perf" in args
    if show_perf:
        args.remove("--perf")
    preset = config_module.PAPER
    if args and args[0] in PRESETS:
        preset = PRESETS[args.pop(0)]
    names = args if args else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}")
        return 2
    for name in names:
        perf.reset()
        with perf.timer("experiment.total"):
            result = EXPERIMENTS[name].run(preset)
        elapsed = perf.PERF.total("experiment.total")
        print(f"\n=== {name} (preset {preset.name}, {elapsed:.1f}s) " + "=" * 20)
        print(result.render())
        if show_perf:
            print()
            print(perf.report(title=f"--- perf: {name} ---"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
