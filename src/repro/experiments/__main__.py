"""Run every experiment and print its rendered report.

    python -m repro.experiments [paper|small|tiny] [--perf] [--trace]
                                [--journal PATH] [--metrics] [--workers N]
                                [fig2 fig5 ...]

Without experiment names, all twelve run in paper order.  ``--workers N``
(N > 1) fans the named experiments out over a process pool via
:mod:`repro.runtime` — each worker rebuilds its workload from the preset
seed, so results are identical to the serial path; it cannot be combined
with ``--trace``/``--journal`` (those observe one in-process run).  ``--perf``
appends a :mod:`repro.perf` timer/counter table after each experiment
(reset in between, so each table covers exactly one experiment — note the
in-process workload cache means only the first experiment pays generation
and training).  ``--journal PATH`` enables the :mod:`repro.obs` tracer
and writes the whole run's structured journal — spans, association
decisions, balance samples, perf footer — to ``PATH`` (render it with
``python -m repro.obs.report PATH``).  ``--metrics`` additionally turns
on the :mod:`repro.obs.metrics` registry, so the journal carries the
windowed metric series and rollup (export them with ``python -m
repro.obs.metrics PATH``).  ``--trace`` enables the tracer
and prints the aggregated span table instead of persisting it.  With
either flag the perf registry is reset once up front rather than between
experiments, so the journal footer covers the full run.  This is the
human-facing sibling of the benchmark harness (``pytest benchmarks/``),
which runs the same code and asserts the qualitative shapes.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro import obs, perf
from repro.obs import report as obs_report
from repro.experiments import config as config_module
from repro.experiments import (
    fig2_balance,
    fig3_appdyn,
    fig4_userload,
    fig5_coleave,
    fig6_nmi,
    fig7_gap,
    fig8_centroids,
    table1,
    fig10_window,
    fig11_history,
    fig12_compare,
    forecast,
    ablations,
    resilience,
)

EXPERIMENTS = {
    "fig2": fig2_balance,
    "fig3": fig3_appdyn,
    "fig4": fig4_userload,
    "fig5": fig5_coleave,
    "fig6": fig6_nmi,
    "fig7": fig7_gap,
    "fig8": fig8_centroids,
    "table1": table1,
    "fig10": fig10_window,
    "fig11": fig11_history,
    "fig12": fig12_compare,
    "forecast": forecast,
    "ablations": ablations,
    "resilience": resilience,
}

PRESETS = {
    "paper": config_module.PAPER,
    "small": config_module.SMALL,
    "tiny": config_module.TINY,
}


def _run_parallel(
    names: Sequence[str], preset_key: str, workers: int, show_perf: bool
) -> int:
    """Fan the named experiments out over a process pool.

    Each task re-runs one experiment in a worker that rebuilds the
    workload from the preset seed; the parent merges worker perf
    snapshots, so ``--perf`` prints one table covering the whole fleet.
    """
    from repro.runtime.sweep import SweepPlan, experiment_task, make_task, run_sweep

    perf.reset()
    plan = SweepPlan(
        [
            make_task(name, experiment_task, name=name, preset=preset_key)
            for name in names
        ]
    )
    with perf.timer("experiment.total"):
        rendered = run_sweep(plan, engine="process", workers=workers)
    for name in names:
        print(f"\n=== {name} (preset {preset_key}, workers={workers}) " + "=" * 20)
        print(rendered[name])
    if show_perf:
        print()
        print(perf.report(title=f"--- perf: {len(names)} experiments ---"))
    return 0


def main(argv: Sequence[str]) -> int:
    """Run the named experiments on the chosen preset; returns exit code."""
    args = list(argv)
    show_perf = "--perf" in args
    if show_perf:
        args.remove("--perf")
    show_trace = "--trace" in args
    if show_trace:
        args.remove("--trace")
    with_metrics = "--metrics" in args
    if with_metrics:
        args.remove("--metrics")
    journal_path: Optional[str] = None
    if "--journal" in args:
        index = args.index("--journal")
        if index + 1 >= len(args):
            print("--journal requires a path argument")
            return 2
        journal_path = args[index + 1]
        del args[index : index + 2]
    workers: Optional[int] = None
    if "--workers" in args:
        index = args.index("--workers")
        if index + 1 >= len(args):
            print("--workers requires a positive integer argument")
            return 2
        try:
            workers = int(args[index + 1])
        except ValueError:
            print(f"--workers requires an integer, got {args[index + 1]!r}")
            return 2
        if workers < 1:
            print("--workers requires a positive integer argument")
            return 2
        del args[index : index + 2]
    preset_key = "paper"
    if args and args[0] in PRESETS:
        preset_key = args.pop(0)
    preset = PRESETS[preset_key]
    names = args if args else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}")
        return 2
    if with_metrics and journal_path is None:
        print("--metrics requires --journal (metrics land in the journal)")
        return 2
    if workers is not None and workers > 1:
        if show_trace or journal_path is not None:
            print(
                "--workers cannot be combined with --trace/--journal: "
                "the fan-out runs experiments in worker processes whose "
                "tracers are not merged (use python -m repro.runtime for "
                "journaled parallel replays)"
            )
            return 2
        return _run_parallel(names, preset_key, workers, show_perf)

    observing = show_trace or journal_path is not None
    if observing:
        obs.enable(reset=True)
        perf.reset()
    if with_metrics:
        obs.metrics.enable(reset=True)
    try:
        for name in names:
            if not observing:
                perf.reset()
            before = perf.PERF.total("experiment.total")
            with perf.timer("experiment.total"):
                with obs.span(f"experiment.{name}", preset=preset.name):
                    result = EXPERIMENTS[name].run(preset)
            elapsed = perf.PERF.total("experiment.total") - before
            print(f"\n=== {name} (preset {preset.name}, {elapsed:.1f}s) " + "=" * 20)
            print(result.render())
            if show_perf:
                print()
                print(perf.report(title=f"--- perf: {name} ---"))
        if journal_path is not None:
            tracer = obs.get_tracer()
            obs.write_journal(
                journal_path,
                tracer=tracer,
                meta={
                    "preset": preset.name,
                    "seed": preset.seed,
                    "experiments": list(names),
                },
            )
            metric_windows = (
                len(obs.metrics.metric_records()) if with_metrics else 0
            )
            print(
                f"\njournal: {journal_path} ({len(tracer.spans())} spans, "
                f"{len(tracer.decisions())} decisions, "
                f"{len(tracer.samples())} samples, "
                f"{metric_windows} metric windows)"
            )
        if show_trace:
            print()
            print("--- spans ---")
            print(obs_report.format_top_spans(obs.get_tracer().spans()))
    finally:
        if observing:
            obs.disable()
        if with_metrics:
            obs.metrics.disable()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
