"""Fig. 8 — the four cluster centroids over the six application realms.

The paper plots each cluster's centroid as normalized traffic volumes over
IM / P2P / music / email / video / browsing and observes that "a user can
be divided into a distinct group according to its application usage
profile" — each centroid is dominated by a different realm mix.  The
reproduction reports the centroids of the trained type model and, because
the synthetic campus plants its types, also the match between recovered
clusters and planted types (cluster purity) — a validation the paper
could not perform on real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_workload, trained_model
from repro.trace.apps import REALMS


@dataclass
class Fig8Result:
    """Centroids, sizes and ground-truth purity of the type model."""
    centroids: np.ndarray  # (k, 6)
    type_sizes: np.ndarray
    dominant_realms: List[str]
    purity: float

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        headers = ["type"] + [realm.label for realm in REALMS] + ["users", "dominant"]
        rows = []
        for i in range(self.k):
            rows.append(
                [f"type{i + 1}"]
                + [float(v) for v in self.centroids[i]]
                + [int(self.type_sizes[i]), self.dominant_realms[i]]
            )
        table = format_table(
            headers, rows, title="Fig. 8 — cluster centroids of user groups"
        )
        return (
            f"{table}\n"
            f"cluster purity vs planted types = {self.purity:.3f} "
            f"(ground-truth validation; paper: centroids visibly distinct)"
        )


def run(config: ExperimentConfig = PAPER) -> Fig8Result:
    """Execute the Fig. 8 clustering report on the given preset."""
    workload = build_workload(config)
    model = trained_model(config)
    centroids = model.types.centroids
    sizes = model.types.type_sizes()
    dominant = [REALMS[int(np.argmax(row))].label for row in centroids]

    # Purity against the generator's planted types (best-match accounting).
    ground_truth = workload.world.ground_truth_types()
    k = model.types.k
    n_planted = len(workload.world.type_profiles)
    confusion = np.zeros((k, n_planted))
    for user_id, cluster in model.types.assignments.items():
        if user_id in ground_truth:
            confusion[cluster, ground_truth[user_id]] += 1
    total = confusion.sum()
    purity = float(confusion.max(axis=1).sum() / total) if total else float("nan")

    return Fig8Result(
        centroids=centroids,
        type_sizes=sizes,
        dominant_realms=dominant,
        purity=purity,
    )
