"""Table I — co-leaving probability between usage types.

The paper tabulates ``T(type_i, type_j)``, the mean probability that a
pair of users from groups i and j leave together, and reads diagonal
dominance off it: same-type pairs co-leave far more often (0.51-0.66 on
the diagonal vs 0.17-0.31 off it).  This is the prior S³ uses for pairs
with no shared history.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.workload import trained_model


@dataclass
class Table1Result:
    """The measured type-pair co-leaving affinity matrix."""
    affinity: np.ndarray

    @property
    def k(self) -> int:
        """Number of user types."""
        return int(self.affinity.shape[0])

    @property
    def diagonal_mean(self) -> float:
        """Mean same-type co-leaving probability."""
        return float(self.affinity.diagonal().mean())

    @property
    def offdiagonal_mean(self) -> float:
        """Mean cross-type co-leaving probability."""
        k = self.k
        if k < 2:
            return float("nan")
        off_sum = float(self.affinity.sum() - self.affinity.trace())
        return off_sum / (k * k - k)

    @property
    def dominance_ratio(self) -> float:
        """diag mean / off-diag mean (paper's matrix: ~2.2)."""
        off = self.offdiagonal_mean
        return self.diagonal_mean / off if off > 0 else float("inf")

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        headers = ["T"] + [f"type{j + 1}" for j in range(self.k)]
        rows = [
            [f"type{i + 1}"] + [float(v) for v in self.affinity[i]]
            for i in range(self.k)
        ]
        table = format_table(
            headers, rows, title="Table I — co-leaving probability by type pair"
        )
        return (
            f"{table}\n"
            f"diagonal mean {self.diagonal_mean:.3f} vs off-diagonal mean "
            f"{self.offdiagonal_mean:.3f} (ratio {self.dominance_ratio:.2f}; "
            f"paper: diagonal-dominant, ratio ~2.2)"
        )


def run(config: ExperimentConfig = PAPER) -> Table1Result:
    """Compute Table I on the given preset."""
    model = trained_model(config)
    return Table1Result(affinity=model.types.affinity.copy())
