"""Shared evaluation metrics for the Section-V experiments.

All comparisons score a replay run the same way the paper does: the
normalized balance index of per-AP traffic, sampled over the evaluation
days, restricted to the active daytime (8:00-24:00) so that idle night
hours — where every strategy is trivially "balanced" — do not dilute the
differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.pipeline import S3Model
from repro.experiments.reporting import confidence_interval_95
from repro.sim.timeline import DAY, HOUR, in_departure_peak
from repro.trace.social import SocialWorld
from repro.wlan.replay import ReplayResult

DAY_START_HOUR = 8
DAY_END_HOUR = 24


def daytime_samples(result: ReplayResult) -> np.ndarray:
    """All active daytime balance-index samples, pooled over controllers."""
    values: List[float] = []
    for series in result.series.values():
        mask = series.active_mask()
        betas = series.balance_series()
        for t, beta, active in zip(series.times, betas, mask):
            if not active:
                continue
            time_of_day = t % DAY
            if DAY_START_HOUR * HOUR <= time_of_day < DAY_END_HOUR * HOUR:
                values.append(float(beta))
    return np.asarray(values)


def departure_peak_samples(result: ReplayResult) -> np.ndarray:
    """Active samples inside the paper's departure-peak windows."""
    values: List[float] = []
    for series in result.series.values():
        mask = series.active_mask()
        betas = series.balance_series()
        for t, beta, active in zip(series.times, betas, mask):
            if active and in_departure_peak(t):
                values.append(float(beta))
    return np.asarray(values)


def mean_daytime_balance(result: ReplayResult) -> float:
    """Mean of the active daytime balance samples (1.0 when idle)."""
    samples = daytime_samples(result)
    return float(samples.mean()) if samples.size else 1.0


def per_controller_day_means(result: ReplayResult) -> Dict[str, List[float]]:
    """Per-controller daily mean balances (one value per evaluation day).

    These day-level units are what the paper's error bars vary over: a
    strategy is "stable" when a controller's balance looks the same every
    day, not merely when the pooled sample is large.
    """
    out: Dict[str, List[float]] = {}
    for controller_id, series in result.series.items():
        mask = series.active_mask()
        betas = series.balance_series()
        per_day: Dict[int, List[float]] = {}
        for t, beta, active in zip(series.times, betas, mask):
            if not active:
                continue
            if not DAY_START_HOUR * HOUR <= t % DAY < DAY_END_HOUR * HOUR:
                continue
            per_day.setdefault(int(t // DAY), []).append(float(beta))
        means = [float(np.mean(vals)) for _, vals in sorted(per_day.items()) if vals]
        if means:
            out[controller_id] = means
    return out


def per_controller_stats(result: ReplayResult) -> Dict[str, Tuple[float, float]]:
    """Per-controller (mean, 95%-CI half-width) of daytime balance.

    The CI is computed over the controller's *daily means* (see
    :func:`per_controller_day_means`), matching the paper's per-site error
    bars; a pooled-sample CI would shrink with the sampling rate and say
    nothing about day-to-day stability.
    """
    out: Dict[str, Tuple[float, float]] = {}
    for controller_id, means in per_controller_day_means(result).items():
        out[controller_id] = confidence_interval_95(means)
    return out


def social_graph_quality(
    model: S3Model, world: SocialWorld, threshold: float = 0.3
) -> Dict[str, float]:
    """Precision/recall/F1 of the trained social graph against ground truth.

    The synthetic campus knows which user pairs actually share a group;
    the S³ social graph (edges where delta > threshold) can therefore be
    scored directly.  This metric exposes the trade-off behind the paper's
    Fig. 10/11 sweeps — short windows or little history find too few real
    relations (recall), long windows admit fake ones (precision) — which
    the balance index alone can hide because Algorithm 1's balance guard
    makes S³ fail-safe under a degraded social model.
    """
    import itertools

    member_sets = [set(group.member_ids) for group in world.groups.values()]
    truth = set()
    for members in member_sets:
        for u, v in itertools.combinations(sorted(members), 2):
            truth.add((u, v))
    users = sorted(model.types.assignments)
    graph = model.social.build_graph(users, threshold=threshold)
    true_positives = 0
    false_positives = 0
    for u, v, _ in graph.edges():
        pair = (u, v) if u < v else (v, u)
        if pair in truth:
            true_positives += 1
        else:
            false_positives += 1
    edges = true_positives + false_positives
    recall = true_positives / len(truth) if truth else 0.0
    precision = true_positives / edges if edges else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {
        "edges": float(edges),
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }


def hourly_means(result: ReplayResult) -> Tuple[np.ndarray, np.ndarray]:
    """(hours, mean balance per hour-of-day) pooled over controllers/days."""
    buckets: Dict[int, List[float]] = {}
    for series in result.series.values():
        mask = series.active_mask()
        betas = series.balance_series()
        for t, beta, active in zip(series.times, betas, mask):
            if not active:
                continue
            hour = int((t % DAY) // HOUR)
            buckets.setdefault(hour, []).append(float(beta))
    hours = np.asarray(sorted(buckets))
    means = np.asarray([np.mean(buckets[h]) for h in hours])
    return hours, means
