"""Forecast evaluation: does delta(u, v) predict future co-leavings?

Section IV: "We expect the social relation index can effectively forecast
the co-leaving events between users."  The paper never evaluates this
claim directly — it only reports the downstream balance gain.  Here the
claim is tested head-on: train the social model on the learning stage,
replay the evaluation days under the production strategy, extract the
co-leavings that *actually happened*, and measure how well the trained
index ranks co-leaving pairs above non-co-leaving pairs.

Metrics:

* **AUC** — probability that a random positive pair (co-left during the
  evaluation days) outranks a random negative pair under delta;
* **precision@k** — the fraction of the k highest-delta pairs that did
  co-leave, for k = number of positives;
* baseline comparison — the same AUC for the type-prior term alone,
  showing how much of the forecast comes from the pair history versus
  the type prior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.analysis.churn import extract_churn, make_pair
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_workload, trained_model
from repro.wlan.strategies import LeastLoadedFirst


@dataclass
class ForecastResult:
    """AUC / precision of the co-leaving forecast."""
    auc_full: float
    auc_type_only: float
    precision_at_k: float
    n_positive_pairs: int
    n_scored_pairs: int

    def render(self) -> str:
        """The report text the paper's figure/table corresponds to."""
        rows = [
            ("AUC (full delta)", self.auc_full),
            ("AUC (type prior only)", self.auc_type_only),
            ("precision@k (k = positives)", self.precision_at_k),
            ("co-leaving pairs (positives)", self.n_positive_pairs),
            ("scored pairs", self.n_scored_pairs),
        ]
        return (
            format_table(
                ["metric", "value"],
                rows,
                title="Co-leaving forecast — delta(u,v) vs evaluation days",
            )
            + "\nchance AUC = 0.5; the paper's claim is that delta "
            "'effectively forecasts' co-leavings"
        )


def _auc(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """Mann-Whitney AUC via rank sums (ties get half credit)."""
    if positive_scores.size == 0 or negative_scores.size == 0:
        return float("nan")
    combined = np.concatenate([positive_scores, negative_scores])
    order = combined.argsort(kind="mergesort")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, combined.size + 1)
    # average ranks for ties
    sorted_scores = combined[order]
    i = 0
    while i < combined.size:
        j = i
        while j + 1 < combined.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    positive_rank_sum = ranks[: positive_scores.size].sum()
    n_pos = positive_scores.size
    n_neg = negative_scores.size
    u_statistic = positive_rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def run(
    config: ExperimentConfig = PAPER,
    max_negative_pairs: int = 60_000,
    seed: int = 5,
) -> ForecastResult:
    """Evaluate the forecast claim on the given preset."""
    workload = build_workload(config)
    model = trained_model(config)
    social = model.social

    # Ground truth: co-leavings that actually happened on the evaluation
    # days under the production strategy.
    result = workload.replay_test(LeastLoadedFirst())
    churn = extract_churn(
        result.sessions,
        coleave_window=config.training.coleave_window,
        cocome_window=config.training.cocome_window,
        encounter_min_duration=config.training.encounter_min_duration,
    )
    positives: Set[Tuple[str, str]] = set(churn.co_leaving_pairs())

    # Candidate universe: users the model knows that appear in the test
    # sessions (a pair absent from the test days is unknowable).
    test_users = sorted(
        {s.user_id for s in result.sessions} & set(model.types.assignments)
    )
    rng = np.random.default_rng(seed)
    positive_scores: List[float] = []
    type_positive: List[float] = []
    negative_scores: List[float] = []
    type_negative: List[float] = []

    positive_list = [
        pair for pair in positives
        if pair[0] in model.types.assignments and pair[1] in model.types.assignments
    ]
    for user_a, user_b in positive_list:
        positive_scores.append(social.social_index(user_a, user_b))
        type_positive.append(social.type_term(user_a, user_b))

    # Sample negatives uniformly from non-co-leaving pairs.
    n_users = len(test_users)
    attempts = 0
    while len(negative_scores) < max_negative_pairs and attempts < max_negative_pairs * 3:
        attempts += 1
        i, j = rng.integers(n_users), rng.integers(n_users)
        if i == j:
            continue
        pair = make_pair(test_users[int(i)], test_users[int(j)])
        if pair in positives:
            continue
        negative_scores.append(social.social_index(*pair))
        type_negative.append(social.type_term(*pair))

    positive_array = np.asarray(positive_scores)
    negative_array = np.asarray(negative_scores)
    auc_full = _auc(positive_array, negative_array)
    auc_type = _auc(np.asarray(type_positive), np.asarray(type_negative))

    # precision@k over the scored universe.
    k = positive_array.size
    all_scores = np.concatenate([positive_array, negative_array])
    labels = np.concatenate(
        [np.ones(positive_array.size), np.zeros(negative_array.size)]
    )
    top_k = labels[np.argsort(-all_scores, kind="mergesort")[:k]]
    precision = float(top_k.mean()) if k else float("nan")

    return ForecastResult(
        auc_full=auc_full,
        auc_type_only=auc_type,
        precision_at_k=precision,
        n_positive_pairs=int(positive_array.size),
        n_scored_pairs=int(all_scores.size),
    )
