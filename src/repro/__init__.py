"""repro — a reproduction of "S3: Characterizing Sociality for
User-Friendly Steady Load Balancing in Enterprise WLANs" (ICDCS 2013).

The package implements the paper's contribution — the social-aware AP
selection scheme S³ — together with every substrate its evaluation needs:

``repro.sim``          deterministic discrete-event simulation kernel
``repro.trace``        trace data model + synthetic campus-trace generator
``repro.analysis``     balance index, churn/co-leaving extraction, NMI
``repro.cluster``      k-means and the gap statistic (from scratch)
``repro.graph``        weighted graphs, greedy coloring, max-clique search
``repro.core``         the S³ pipeline: profiles, typing, social model,
                       demand estimation and the selection algorithm
``repro.wlan``         enterprise WLAN simulator with pluggable strategies
``repro.experiments``  per-figure/table experiment runners
``repro.prototype``    message-level 802.11-style feasibility prototype
``repro.service``      asyncio controller-as-a-service: event loop,
                       micro-batched admission, online decision fast path

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "trace",
    "analysis",
    "cluster",
    "graph",
    "core",
    "wlan",
    "experiments",
    "prototype",
    "service",
]
