"""Application profiles: per-user, per-day traffic over the six realms.

Section III.D.2: "we used normalized history traffic volumes of the six
major application categories ... to characterize the application interest
of a user", with the day-x profile ``T_x(u)`` and the cumulative history
``sum_{i=1..n} T_{x-i}(u)``.  Profiles are recovered from router flow
records via the port classifier — the same path the paper takes — never
from the generator's ground truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.info import normalized_mutual_information
from repro.sim.timeline import day_index
from repro.trace.apps import N_REALMS
from repro.trace.classifier import PortClassifier
from repro.trace.records import FlowRecord


class DailyProfileStore:
    """Per-user, per-day realm-volume vectors.

    Stored volumes are raw bytes; normalization happens on read so that
    histories can be aggregated by summation first (the paper's cumulative
    traffic vector) and normalized once.
    """

    def __init__(self) -> None:
        self._volumes: Dict[str, Dict[int, np.ndarray]] = {}

    def add(self, user_id: str, day: int, volumes: Sequence[float]) -> None:
        """Accumulate realm volumes for ``user_id`` on ``day``."""
        vector = np.asarray(list(volumes), dtype=float)
        if vector.shape != (N_REALMS,):
            raise ValueError(f"expected {N_REALMS} realm volumes, got {vector.shape}")
        if np.any(vector < 0):
            raise ValueError("negative realm volume")
        per_day = self._volumes.setdefault(user_id, {})
        if day in per_day:
            per_day[day] = per_day[day] + vector
        else:
            per_day[day] = vector.copy()

    # -------------------------------------------------------------- queries

    @property
    def user_ids(self) -> List[str]:
        """All users with any recorded traffic, sorted."""
        return sorted(self._volumes)

    def days_of(self, user_id: str) -> List[int]:
        """Days on which the user has recorded traffic, sorted."""
        return sorted(self._volumes.get(user_id, {}))

    def raw(self, user_id: str, day: int) -> Optional[np.ndarray]:
        """Raw byte vector for one day, or ``None`` if the user was absent."""
        per_day = self._volumes.get(user_id)
        if per_day is None or day not in per_day:
            return None
        return per_day[day].copy()

    def daily(self, user_id: str, day: int) -> Optional[np.ndarray]:
        """Normalized day profile ``T_day(u)``, or ``None`` if absent/empty."""
        raw = self.raw(user_id, day)
        if raw is None:
            return None
        total = raw.sum()
        if total <= 0:
            return None
        return raw / total

    def cumulative(
        self, user_id: str, end_day: int, lookback: int
    ) -> Optional[np.ndarray]:
        """Normalized profile over days ``[end_day - lookback, end_day)``.

        This is the paper's cumulative traffic vector
        ``sum_{i=1..n} T_{x-i}(u)``; returns ``None`` when the user has no
        traffic in the window.
        """
        if lookback <= 0:
            raise ValueError(f"lookback must be positive, got {lookback}")
        per_day = self._volumes.get(user_id)
        if per_day is None:
            return None
        total = np.zeros(N_REALMS)
        for day in range(end_day - lookback, end_day):
            if day in per_day:
                total += per_day[day]
        mass = total.sum()
        if mass <= 0:
            return None
        return total / mass

    def overall(self, user_id: str) -> Optional[np.ndarray]:
        """Normalized profile over every recorded day of the user."""
        per_day = self._volumes.get(user_id)
        if not per_day:
            return None
        total = sum(per_day.values())
        mass = float(np.sum(total))
        if mass <= 0:
            return None
        return total / mass

    def profile_matrix(
        self, end_day: Optional[int] = None, lookback: Optional[int] = None
    ) -> Tuple[List[str], np.ndarray]:
        """(users, matrix) of normalized profiles for clustering.

        With ``end_day``/``lookback`` the cumulative window is used;
        otherwise the all-time profile.  Users without traffic are skipped.
        """
        users: List[str] = []
        rows: List[np.ndarray] = []
        for user_id in self.user_ids:
            if end_day is not None and lookback is not None:
                profile = self.cumulative(user_id, end_day, lookback)
            else:
                profile = self.overall(user_id)
            if profile is not None:
                users.append(user_id)
                rows.append(profile)
        if not rows:
            return [], np.empty((0, N_REALMS))
        return users, np.vstack(rows)


def build_daily_profiles(
    flows: Iterable[FlowRecord],
    classifier: Optional[PortClassifier] = None,
) -> DailyProfileStore:
    """Classify flows and accumulate them into a daily profile store.

    A flow is attributed to the day of its start timestamp; unclassifiable
    flows are dropped (the paper restricts itself to the identified top
    applications).
    """
    classifier = classifier if classifier is not None else PortClassifier()
    store = DailyProfileStore()
    for flow in flows:
        realm = classifier.classify(flow)
        if realm is None:
            continue
        volumes = np.zeros(N_REALMS)
        volumes[realm] = flow.bytes_total
        store.add(flow.user_id, day_index(flow.start), volumes)
    return store


def history_profile(
    store: DailyProfileStore, user_id: str, day: int, lookback: int
) -> Optional[np.ndarray]:
    """Convenience alias for the cumulative look-back profile."""
    return store.cumulative(user_id, day, lookback)


def nmi_history_curve(
    store: DailyProfileStore,
    target_day: int,
    max_lookback: int,
    min_users: int = 5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig. 6: mean NMI between day-``target_day`` profiles and cumulative
    histories of increasing depth.

    Returns ``(lookbacks, mean_nmi)`` over users active on the target day
    with at least some history.  Raises when fewer than ``min_users`` users
    qualify — a curve over two users is noise, not signal.
    """
    if max_lookback <= 0:
        raise ValueError("max_lookback must be positive")
    lookbacks = np.arange(1, max_lookback + 1)
    sums = np.zeros(max_lookback)
    counts = np.zeros(max_lookback, dtype=int)
    qualified = 0
    for user_id in store.user_ids:
        current = store.daily(user_id, target_day)
        if current is None:
            continue
        has_any = False
        for i, lookback in enumerate(lookbacks):
            history = store.cumulative(user_id, target_day, int(lookback))
            if history is None:
                continue
            sums[i] += normalized_mutual_information(current, history)
            counts[i] += 1
            has_any = True
        if has_any:
            qualified += 1
    if qualified < min_users:
        raise ValueError(
            f"only {qualified} users have both a day-{target_day} profile "
            f"and history (need {min_users})"
        )
    means = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
    return lookbacks, means
