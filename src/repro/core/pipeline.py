"""End-to-end S³ training: collected trace -> deployable model.

Mirrors the paper's methodology (Section V.A): a learning stage over the
collected trace establishes application profiles, user types and pairwise
social relationships; the resulting model then drives AP selection during
the experiment stage.  All knobs default to the operating point the paper
settles on: five-minute co-leaving extraction window, alpha = 0.3, 15-day
history look-back, k = 4 user types, 0.3 edge threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import perf
from repro.analysis.churn import (
    AUTO_NUMPY_MIN_SESSIONS,
    ENGINES,
    ChurnEvents,
    extract_churn,
)
from repro.core.demand import DemandEstimator
from repro.core.profiles import DailyProfileStore, build_daily_profiles
from repro.core.selection import S3Selector, SelectionConfig
from repro.core.social import SocialModel, build_social_model
from repro.core.typing import TypeModel, fit_type_model
from repro.sim.timeline import MINUTE, day_index
from repro.trace.records import TraceBundle


@dataclass(frozen=True)
class TrainingConfig:
    """Every learning-stage knob, at the paper's defaults."""

    #: Co-leaving extraction window (Fig. 10 optimum: five minutes).
    coleave_window: float = 5 * MINUTE
    #: Co-coming window (same scale; co-comings are informational only).
    cocome_window: float = 5 * MINUTE
    #: Minimum joint time on an AP for an encounter.
    encounter_min_duration: float = 20 * MINUTE
    #: Weight of the type-affinity prior in delta(u, v).
    alpha: float = 0.3
    #: Days of history used for profile aggregation (Fig. 6/11 plateau).
    lookback_days: int = 15
    #: Number of user types; ``None`` re-runs the gap-statistic selection.
    k: Optional[int] = 4
    #: Encounter-count floor below which P(L|E) is not trusted.
    min_encounters: int = 2
    #: Selection-stage tunables (threshold, top-30%, enumeration cap).
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    #: EWMA smoothing of the demand estimator.
    demand_smoothing: float = 0.3
    #: RNG seed for clustering.
    seed: int = 7
    #: Churn-extraction engine ("auto" | "python" | "numpy").
    churn_engine: str = "auto"

    def __post_init__(self) -> None:
        if self.coleave_window <= 0 or self.cocome_window <= 0:
            raise ValueError("extraction windows must be positive")
        if self.lookback_days <= 0:
            raise ValueError("lookback_days must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.churn_engine not in ENGINES:
            raise ValueError(
                f"unknown churn engine {self.churn_engine!r}; "
                f"choose from {ENGINES}"
            )


@dataclass
class S3Model:
    """A trained S³ model: everything the controller needs at run time."""

    profiles: DailyProfileStore
    churn: ChurnEvents
    types: TypeModel
    social: SocialModel
    demand: DemandEstimator
    config: TrainingConfig

    def selector(self) -> S3Selector:
        """A fresh decision engine bound to this model."""
        return S3Selector(self.social, self.demand, config=self.config.selection)

    def summary(self) -> str:
        """One-line description of the trained model."""
        sizes = ", ".join(str(int(s)) for s in self.types.type_sizes())
        return (
            f"S3Model(users={len(self.types.assignments)}, types={self.types.k} "
            f"[sizes {sizes}], pairs={self.social.known_pairs()}, "
            f"alpha={self.social.alpha})"
        )


def train_s3(
    bundle: TraceBundle,
    config: Optional[TrainingConfig] = None,
) -> S3Model:
    """Train S³ on a collected trace (sessions + flows required).

    The session log must come from the production strategy (LLF in the
    paper's campus); the flows provide application profiles.  Raises when
    the bundle lacks either record family — a model trained on nothing
    would silently degenerate to LLF.
    """
    config = config if config is not None else TrainingConfig()
    if not bundle.sessions:
        raise ValueError("training bundle has no session records")
    if not bundle.flows:
        raise ValueError("training bundle has no flow records")

    rng = np.random.default_rng(config.seed)

    with perf.timer("train.profiles"):
        profiles = build_daily_profiles(bundle.flows)
    # Hand the shared columnar view to the numpy engine so later consumers
    # (Fig. 5 sweeps, re-training) reuse the same transpose.
    use_columns = config.churn_engine == "numpy" or (
        config.churn_engine == "auto"
        and len(bundle.sessions) >= AUTO_NUMPY_MIN_SESSIONS
    )
    with perf.timer("train.churn"):
        churn = extract_churn(
            bundle.columns() if use_columns else bundle.sessions,
            coleave_window=config.coleave_window,
            cocome_window=config.cocome_window,
            encounter_min_duration=config.encounter_min_duration,
            engine=config.churn_engine,
        )

    # Profile aggregation window ends on the day after the last session.
    end_day = day_index(max(s.disconnect for s in bundle.sessions)) + 1
    with perf.timer("train.types"):
        types = fit_type_model(
            profiles,
            churn,
            k=config.k,
            rng=rng,
            min_encounters=config.min_encounters,
            end_day=end_day,
            lookback=min(config.lookback_days, end_day),
        )
    with perf.timer("train.social"):
        social = build_social_model(
            churn,
            types,
            alpha=config.alpha,
            min_encounters=config.min_encounters,
        )
    with perf.timer("train.demand"):
        demand = DemandEstimator(smoothing=config.demand_smoothing)
        demand.observe_sessions(bundle.sessions)
        demand.fit_population_default()

    return S3Model(
        profiles=profiles,
        churn=churn,
        types=types,
        social=social,
        demand=demand,
        config=config,
    )
