"""Temporal usage profiles — the paper's future-work extension.

Section VII: "In our future work, we will further examine more aspects in
characterizing the network usage profiles of users so that they can be
used to obtain more accurate sociality information."  The most natural
second aspect is *when* a user is online: two users who are active at the
same hours are far likelier to share schedules (and co-leave) than two
users with the same app mix active at disjoint hours.

This module adds:

* :func:`build_temporal_profiles` — per-user normalized time-of-day
  activity vectors (24 hourly bins of connected time) from the session
  log;
* :func:`combine_profiles` — the joint feature vector
  ``[(1-w) * app_profile, w * temporal_profile]`` used for extended
  typing;
* :func:`fit_extended_type_model` — the Section III.D pipeline run on the
  joint features, producing a drop-in :class:`~repro.core.typing.TypeModel`
  whose affinity matrix now conditions on *both* what and when users
  consume.

The extended model is evaluated in ``benchmarks/test_bench_extension_
temporal.py``: on the synthetic campus the temporal dimension sharpens
the type-affinity contrast because schedules, not app tastes, are what
actually drive co-leaving.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analysis.churn import ChurnEvents
from repro.cluster.kmeans import KMeans
from repro.core.profiles import DailyProfileStore
from repro.core.typing import TypeModel, type_affinity_matrix
from repro.sim.timeline import DAY, HOUR
from repro.trace.records import SessionRecord

N_HOURS = 24


def build_temporal_profiles(
    sessions: Iterable[SessionRecord],
) -> Dict[str, np.ndarray]:
    """Per-user normalized hour-of-day activity vectors.

    Bin ``h`` holds the fraction of the user's total connected time spent
    during clock hour ``h`` (summed over all days).  Users with zero
    connected time are omitted.
    """
    raw: Dict[str, np.ndarray] = {}
    for session in sessions:
        vector = raw.setdefault(session.user_id, np.zeros(N_HOURS))
        first_day = int(session.connect // DAY)
        last_day = int(max(session.connect, session.disconnect - 1e-9) // DAY)
        for day in range(first_day, last_day + 1):
            for hour in range(N_HOURS):
                lo = day * DAY + hour * HOUR
                overlap = session.overlap(lo, lo + HOUR)
                if overlap > 0:
                    vector[hour] += overlap
    profiles: Dict[str, np.ndarray] = {}
    for user_id, vector in raw.items():
        total = vector.sum()
        if total > 0:
            profiles[user_id] = vector / total
    return profiles


def combine_profiles(
    app_profile: np.ndarray,
    temporal_profile: np.ndarray,
    temporal_weight: float = 0.5,
) -> np.ndarray:
    """The joint feature vector for extended typing.

    Both inputs are distributions; each block is scaled so the blocks'
    masses are ``(1 - w)`` and ``w`` — the joint vector is again a
    distribution, and ``w`` controls how much the clustering listens to
    *when* versus *what*.
    """
    if not 0.0 <= temporal_weight <= 1.0:
        raise ValueError("temporal_weight must be in [0, 1]")
    app = np.asarray(app_profile, dtype=float)
    temporal = np.asarray(temporal_profile, dtype=float)
    if app.sum() <= 0 or temporal.sum() <= 0:
        raise ValueError("profiles must carry mass")
    return np.concatenate(
        [
            (1.0 - temporal_weight) * app / app.sum(),
            temporal_weight * temporal / temporal.sum(),
        ]
    )


def fit_extended_type_model(
    store: DailyProfileStore,
    sessions: List[SessionRecord],
    churn: ChurnEvents,
    k: int = 4,
    temporal_weight: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    min_encounters: int = 2,
    end_day: Optional[int] = None,
    lookback: Optional[int] = None,
) -> TypeModel:
    """Fit a TypeModel over joint app + temporal features.

    Drop-in compatible with :func:`repro.core.typing.fit_type_model`; the
    centroids have ``6 + 24`` dimensions (``classify_profile`` expects the
    joint vector).  Users lacking either profile are skipped.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    app_users, app_matrix = store.profile_matrix(end_day=end_day, lookback=lookback)
    temporal = build_temporal_profiles(sessions)

    users: List[str] = []
    rows: List[np.ndarray] = []
    for user_id, app_profile in zip(app_users, app_matrix):
        when = temporal.get(user_id)
        if when is None:
            continue
        users.append(user_id)
        rows.append(combine_profiles(app_profile, when, temporal_weight))
    if len(users) < k:
        raise ValueError(
            f"only {len(users)} users have both profiles, need >= {k}"
        )
    matrix = np.vstack(rows)
    result = KMeans(k=k, rng=rng).fit(matrix)
    assignments = {user: int(label) for user, label in zip(users, result.labels)}
    affinity = type_affinity_matrix(
        assignments, k, churn, min_encounters=min_encounters
    )
    return TypeModel(
        centroids=result.centroids, assignments=assignments, affinity=affinity
    )
