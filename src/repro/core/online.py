"""Online-learning S³: keep the social model current from live traffic.

The paper's future work: "we will implement S³ in our campus WLAN and
further improve the S³ design by solving the issues encountered in
practice."  The first practical issue is model aging — a model trained on
a snapshot drifts as the semester's schedules change and new users appear.

This module closes the loop: the controller already sees every
association and disassociation, so the same event definitions used in
training (Section III.D) can be evaluated *incrementally*:

* **encounters** — when a user disassociates, every user still on the AP
  whose co-presence lasted at least the encounter threshold yields one
  encounter event for the pair;
* **co-leavings** — a per-AP ring of recent departures; a departure within
  the extraction window of another user's departure on the same AP yields
  one co-leaving event per pair;
* **demand** — each finished session's mean rate feeds the per-user EWMA.

The :class:`OnlineS3Strategy` wraps a trained (or empty) model, applies
the updates through the engine's observation hooks, and keeps serving
Algorithm 1 decisions from the continuously refreshed model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Sequence, Tuple

from repro.core.selection import APState, S3Selector
from repro.core.social import SocialModel
from repro.sim.timeline import MINUTE
from repro.wlan.strategies import SelectionStrategy


@dataclass(frozen=True)
class OnlineConfig:
    """Event-extraction parameters for the online learner.

    Defaults match the training-stage operating point (five-minute
    co-leaving window, twenty-minute encounter threshold).
    """

    coleave_window: float = 5 * MINUTE
    encounter_min_duration: float = 20 * MINUTE
    #: Departures older than this are dropped from the per-AP ring.
    departure_memory: float = 30 * MINUTE

    def __post_init__(self) -> None:
        if self.coleave_window <= 0:
            raise ValueError("coleave_window must be positive")
        if self.encounter_min_duration < 0:
            raise ValueError("encounter_min_duration must be non-negative")
        if self.departure_memory < self.coleave_window:
            raise ValueError("departure_memory must cover the co-leave window")


class OnlineLearner:
    """Incremental churn-event extraction over the association stream."""

    def __init__(self, social: SocialModel, config: Optional[OnlineConfig] = None):
        self.social = social
        self.config = config if config is not None else OnlineConfig()
        #: ap id -> {user id -> association time}
        self._present: Dict[str, Dict[str, float]] = {}
        #: ap id -> recent departures (time, user), oldest first
        self._departures: Dict[str, Deque[Tuple[float, str]]] = {}
        self.encounters_recorded = 0
        self.co_leavings_recorded = 0
        #: Stream events permanently lost before this learner saw them
        #: (gap skips reported by the supervisor after a crash recovery).
        self.lost_events = 0

    # ----------------------------------------------------------- staleness

    @property
    def is_stale(self) -> bool:
        """Whether the model missed events it can never re-observe."""
        return self.lost_events > 0

    def mark_lost_events(self, count: int) -> None:
        """Record ``count`` stream events the learner permanently missed.

        Every skipped seq is an arrival/departure the incremental
        extractors never folded in, so the pair statistics are now an
        undercount.  The supervisor calls this after a lossy recovery and
        degrades the next decisions through the admission queue's
        fallback chain until fresh observations dilute the gap.
        """
        if count < 0:
            raise ValueError(f"lost event count must be >= 0: {count}")
        self.lost_events += count

    def acknowledge_staleness(self) -> None:
        """Reset the lost-event tally once the degraded window has run."""
        self.lost_events = 0

    # -------------------------------------------------------------- events

    def on_arrival(self, user_id: str, ap_id: str, time: float) -> None:
        """Record that a user associated to an AP."""
        self._present.setdefault(ap_id, {})[user_id] = time

    def on_departure(self, user_id: str, ap_id: str, time: float) -> None:
        """Process a disassociation: emit encounter and co-leaving events."""
        present = self._present.setdefault(ap_id, {})
        joined_at = present.pop(user_id, None)
        if joined_at is None:
            return  # arrival never observed (e.g. learner attached late)

        # Encounters: co-presence with everyone still on the AP.
        for other, other_joined in present.items():
            overlap = time - max(joined_at, other_joined)
            if overlap >= self.config.encounter_min_duration:
                self.social.record_events(user_id, other, encounters=1)
                self.encounters_recorded += 1

        # Co-leavings: pair with recent departures on the same AP.
        ring = self._departures.setdefault(ap_id, deque())
        horizon = time - self.config.departure_memory
        while ring and ring[0][0] < horizon:
            ring.popleft()
        for departed_at, other in ring:
            if other == user_id:
                continue
            if time - departed_at <= self.config.coleave_window:
                self.social.record_events(user_id, other, co_leavings=1)
                self.co_leavings_recorded += 1
        ring.append((time, user_id))


class OnlineS3Strategy(SelectionStrategy):
    """S³ with live model updates from the association stream.

    Wraps a selector (trained or cold-start) and learns as it serves.  A
    cold-start deployment — empty pair statistics, uniform type prior —
    behaves like load balancing on day one and grows its social knowledge
    from the events it observes, which is exactly the bootstrap story an
    operator needs.

    **Why ``shard_safe = False`` stays false.**  The learner folds every
    ``observe_arrival`` / ``observe_departure`` into the shared
    :class:`~repro.core.social.SocialModel` in global event order, and
    each ``select`` reads the model *as of* that moment.  Sharding the
    demand stream across controller processes changes which events a
    worker has seen before each of its decisions — not merely the order
    of independent work, but the training set behind every answer — so
    serial and process engines would legitimately disagree.  The PR 9
    incremental patch path does not change this: patches are cheap, but
    they are still writes, and the write order *is* the model.  A
    read-only replay of a frozen model is exactly what the plain
    :class:`~repro.wlan.strategies.S3Strategy` already provides, so
    flipping the flag here would only duplicate that mode while losing
    the learning semantics this class exists for.  The machine-readable
    half of this paragraph is ``shard_safe_reason``, enforced by the
    **shard-safe-note** lint rule.
    """

    name = "s3-online"
    shard_safe = False
    shard_safe_reason = (
        "online learner mutates the shared social model from observe "
        "hooks in global event order"
    )

    def __init__(
        self,
        selector: S3Selector,
        config: Optional[OnlineConfig] = None,
    ) -> None:
        self.selector = selector
        self.learner = OnlineLearner(selector.social, config)

    def select(
        self,
        user_id: str,
        aps: Sequence[APState],
        rssi: Optional[Dict[str, float]] = None,
    ) -> str:
        """Serve one arrival from the continuously updated model."""
        return self.selector.select(user_id, aps)

    def assign_batch(
        self,
        user_ids: Sequence[str],
        aps: Sequence[APState],
        rssi_by_user: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> Optional[Dict[str, str]]:
        """Serve a batch (Algorithm 1) from the continuously updated model."""
        return self.selector.assign_batch(user_ids, aps)

    def observe_arrival(self, user_id: str, ap_id: str, time: float) -> None:
        """Engine hook: feed an association into the learner."""
        self.learner.on_arrival(user_id, ap_id, time)

    def observe_departure(
        self, user_id: str, ap_id: str, time: float, mean_rate: float = 0.0
    ) -> None:
        """Engine hook: feed a disassociation into learner and demand EWMA."""
        self.learner.on_departure(user_id, ap_id, time)
        if mean_rate > 0:
            self.selector.demand.observe(user_id, mean_rate)
