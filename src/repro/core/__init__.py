"""The paper's contribution: the S³ social-aware AP selection pipeline.

The pipeline turns a *collected* trace (session log + router flows) into a
deployable AP-selection model, exactly following Section IV:

1. ``profiles``  — per-user daily application profiles from classified
   flows, plus look-back aggregation (the 15-day history of Fig. 6);
2. ``typing``    — k-means user types over profiles (k via gap statistic)
   and the empirical type-affinity matrix T (Table I);
3. ``social``    — pairwise social relation indices
   ``delta(u, v) = P(L|E) + alpha * T(type_u, type_v)``;
4. ``demand``    — per-user bandwidth demand estimates from history
   (paper ref [10] stand-in);
5. ``selection`` — Algorithm 1: clique-based batch distribution and the
   online minimal-social-increment AP choice with LLF fallback;
6. ``pipeline``  — the one-call trainer producing an :class:`S3Model`.

Nothing in this package imports the WLAN simulator; the selection
algorithm sees only :class:`~repro.core.selection.APState` snapshots, so
it can run equally under trace-driven simulation or the message-level
prototype.
"""

from repro.core.profiles import (
    DailyProfileStore,
    build_daily_profiles,
    history_profile,
    nmi_history_curve,
)
from repro.core.typing import TypeModel, fit_type_model, type_affinity_matrix
from repro.core.social import PairStats, SocialModel, build_social_model
from repro.core.demand import DemandEstimator
from repro.core.selection import APState, S3Selector, SelectionConfig
from repro.core.pipeline import S3Model, TrainingConfig, train_s3
from repro.core.online import OnlineConfig, OnlineLearner, OnlineS3Strategy

__all__ = [
    "DailyProfileStore",
    "build_daily_profiles",
    "history_profile",
    "nmi_history_curve",
    "TypeModel",
    "fit_type_model",
    "type_affinity_matrix",
    "PairStats",
    "SocialModel",
    "build_social_model",
    "DemandEstimator",
    "APState",
    "S3Selector",
    "SelectionConfig",
    "S3Model",
    "TrainingConfig",
    "train_s3",
    "OnlineConfig",
    "OnlineLearner",
    "OnlineS3Strategy",
]
