"""The social relation index delta(u, v) (Section IV).

    delta(u, v) = P(L(u,v) | E(u,v)) + alpha * T(type_u, type_v)

The conditional term is estimated from the learning trace as the ratio of
the pair's co-leaving events to its encounter events; the type term is the
Table-I affinity weighted by the constant ``alpha`` (0.3 at the paper's
chosen operating point, Fig. 10).  Pairs that never encountered each other
fall back to the type term alone — "if the pair of users have not
encountered each other before, we need other information to guess the
possibility that they will leave together."

Noise control: fake social relationships (coincidental co-leavings) are
suppressed by requiring a minimum number of encounters before the
conditional term is trusted, mirroring the paper's "aggregating multiple
common events between the same pair of users."
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro import perf
from repro.analysis.churn import ChurnEvents, Pair, make_pair
from repro.core.typing import TypeModel
from repro.graph.graph import Graph

#: Engines accepted by :meth:`SocialModel.build_graph`.
GRAPH_ENGINES = ("auto", "python", "numpy")

#: Delta matrices kept per model; one controller batch rarely revisits
#: more than a handful of member sets before the model learns new events.
_DELTA_CACHE_SIZE = 32


@dataclass(frozen=True)
class PairStats:
    """Observed event counts for one user pair."""

    encounters: int
    co_leavings: int

    @property
    def conditional_probability(self) -> float:
        """P(co-leave | encounter), capped at 1.

        Pairs can log more co-leavings than encounters (brief joint stays
        below the encounter-duration threshold still co-leave); the cap
        keeps the index a probability.
        """
        if self.encounters <= 0:
            return 0.0
        return min(1.0, self.co_leavings / self.encounters)


class SocialModel:
    """Pairwise social relation indices over a trained user population."""

    def __init__(
        self,
        pair_stats: Dict[Pair, PairStats],
        type_model: TypeModel,
        alpha: float = 0.3,
        min_encounters: int = 2,
        shrinkage: float = 1.0,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if min_encounters < 1:
            raise ValueError("min_encounters must be >= 1")
        if shrinkage < 0:
            raise ValueError("shrinkage must be non-negative")
        self._pairs = dict(pair_stats)
        self.type_model = type_model
        self.alpha = alpha
        self.min_encounters = min_encounters
        self.shrinkage = shrinkage
        # Indexed fast-path state: every structure below is a pure function
        # of (_pairs, type_model, alpha, min_encounters, shrinkage) at one
        # generation.  Mutators bump the generation, then *patch* the
        # structures in place and restamp them — a single co-leaving event
        # touches one delta(u, v) entry, not the whole dense cache.
        self._generation = 0
        self._partners_generation = -1
        self._partners: Dict[str, List[Tuple[str, PairStats]]] = {}
        self._adjacency_generation = -1
        self._adjacency: Dict[str, Dict[str, float]] = {}
        self._delta_cache: "OrderedDict[Tuple[str, ...], Tuple[int, np.ndarray]]" = (
            OrderedDict()
        )
        # Per-user fine-grained stamps: the generation at which a user was
        # last touched by record_events / assign_user_type.  External
        # per-user caches (e.g. the service's social-cost index) key on
        # these instead of the global counter.
        self._user_generation: Dict[str, int] = {}
        self._extended: Optional[np.ndarray] = None

    # -------------------------------------------------------------- queries

    def pair_stats(self, user_a: str, user_b: str) -> Optional[PairStats]:
        """Observed event counts for the pair, or None if never seen."""
        return self._pairs.get(make_pair(user_a, user_b))

    def conditional_term(self, user_a: str, user_b: str) -> float:
        """P(L|E) for the pair, zero below the encounter-count floor.

        Shrinkage (``co_leavings / (encounters + shrinkage)``) keeps a pair
        observed only a couple of times from scoring a certain 1.0 — the
        same fake-relationship suppression applied to the Table-I matrix.
        """
        stats = self.pair_stats(user_a, user_b)
        if stats is None or stats.encounters < self.min_encounters:
            return 0.0
        return min(
            1.0, stats.co_leavings / (stats.encounters + self.shrinkage)
        )

    def type_term(self, user_a: str, user_b: str) -> float:
        """alpha * T(type_u, type_v)."""
        return self.alpha * self.type_model.affinity_of(user_a, user_b)

    def social_index(self, user_a: str, user_b: str) -> float:
        """The full delta(u, v)."""
        if user_a == user_b:
            raise ValueError("social index of a user with themselves")
        return self.conditional_term(user_a, user_b) + self.type_term(user_a, user_b)

    # --------------------------------------------------------------- graphs

    @property
    def generation(self) -> int:
        """Bumped by every mutator; stamps the fast-path caches."""
        return self._generation

    def user_generation(self, user_id: str) -> int:
        """The generation at which ``user_id`` was last touched (0 never).

        This is the fine-grained counterpart of :attr:`generation`: a
        consumer caching per-user derived state (partner lists, cost
        aggregates) compares this stamp instead of the global counter, so
        an event between ``(a, b)`` does not invalidate its view of ``c``.
        """
        return self._user_generation.get(user_id, 0)

    def _extended_affinity(self) -> np.ndarray:
        """The (k+1) x (k+1) affinity with the unknown-user mean appended.

        Pure function of the fitted affinity table (which never changes
        after construction), so it is computed once and shared by the
        batch build and the incremental patches — bit-for-bit.
        """
        if self._extended is None:
            k = self.type_model.k
            affinity = np.asarray(self.type_model.affinity, dtype=np.float64)
            extended = np.empty((k + 1, k + 1), dtype=np.float64)
            extended[:k, :k] = affinity
            mean = float(affinity.mean())
            extended[k, :] = mean
            extended[:, k] = mean
            self._extended = extended
        return self._extended

    def _partner_index(self) -> Dict[str, List[Tuple[str, PairStats]]]:
        """user -> [(partner, stats)] for pairs above the encounter floor.

        Pairs are canonical (smaller id first), so each appears under its
        smaller member only.  Rebuilt lazily after ``record_events``.
        """
        if self._partners_generation != self._generation:
            index: Dict[str, List[Tuple[str, PairStats]]] = {}
            floor = self.min_encounters
            for (user_a, user_b), stats in self._pairs.items():
                if stats.encounters >= floor:
                    index.setdefault(user_a, []).append((user_b, stats))
            self._partners = index
            self._partners_generation = self._generation
        return self._partners

    def _delta_matrix(self, members: Tuple[str, ...]) -> np.ndarray:
        """Dense delta over a sorted member tuple (cached per generation).

        The type term is a table lookup: an extended (k+1) x (k+1) affinity
        whose last row/column hold the unknown-user mean reproduces
        ``affinity_of`` exactly.  The sparse conditional terms are added
        from the partner index — only observed pairs cost anything.
        """
        cached = self._delta_cache.get(members)
        if cached is not None and cached[0] == self._generation:
            self._delta_cache.move_to_end(members)
            perf.count("social.delta.cache_hit")
            return cached[1]
        k = self.type_model.k
        extended = self._extended_affinity()
        assignments = self.type_model.assignments
        codes = np.fromiter(
            (assignments.get(user, k) for user in members),
            dtype=np.intp,
            count=len(members),
        )
        delta = self.alpha * extended[codes[:, None], codes[None, :]]
        position = {user: i for i, user in enumerate(members)}
        shrinkage = self.shrinkage
        for i, user in enumerate(members):
            for partner, stats in self._partner_index().get(user, ()):
                j = position.get(partner)
                if j is None:
                    continue
                conditional = min(
                    1.0, stats.co_leavings / (stats.encounters + shrinkage)
                )
                delta[i, j] += conditional
                delta[j, i] += conditional
        self._delta_cache[members] = (self._generation, delta)
        if len(self._delta_cache) > _DELTA_CACHE_SIZE:
            self._delta_cache.popitem(last=False)
        perf.count("social.delta.build")
        return delta

    def build_graph(
        self, users: Iterable[str], threshold: float = 0.3, engine: str = "auto"
    ) -> Graph:
        """The user graph of Section IV.A: edges where delta > threshold.

        Every user appears as a node; only pairs above the threshold get an
        edge (weight = delta).  This is the input to the clique cover, which
        mutates its input — a fresh ``Graph`` is returned on every call even
        when the underlying delta matrix is served from cache.

        ``engine="python"`` forces the reference pairwise loop (kept for
        equivalence testing); ``"numpy"`` / ``"auto"`` use the indexed
        fast path: one cached dense delta matrix per member set, one
        vectorized thresholding per call.
        """
        if threshold < 0:
            raise ValueError(f"negative threshold {threshold!r}")
        if engine not in GRAPH_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {GRAPH_ENGINES}"
            )
        members = sorted(set(users))
        graph = Graph()
        for user in members:
            graph.add_node(user)
        if engine == "python" or len(members) < 2:
            for i, user_a in enumerate(members):
                for user_b in members[i + 1 :]:
                    delta = self.social_index(user_a, user_b)
                    if delta > threshold:
                        graph.add_edge(user_a, user_b, delta)
            return graph
        delta = self._delta_matrix(tuple(members))
        above = np.triu(delta > threshold, k=1)
        for i, j in np.argwhere(above).tolist():
            graph.add_edge(members[i], members[j], float(delta[i, j]))
        return graph

    def known_pairs(self) -> int:
        """Number of pairs with any recorded events."""
        return len(self._pairs)

    def conditional_partners(self, user_id: str) -> Mapping[str, float]:
        """partner -> conditional term, for pairs above the encounter floor.

        Unlike :meth:`_partner_index` (canonical pairs, smaller id first)
        this adjacency is bidirectional — the natural query shape for an
        online controller asking "which residents does this arrival
        co-leave with?".  Built lazily once, then patched in place by
        :meth:`record_events`.  Treat the returned mapping as read-only.
        """
        self._adjacency_index()
        return self._adjacency.get(user_id, {})

    def _adjacency_index(self) -> Dict[str, Dict[str, float]]:
        if self._adjacency_generation != self._generation:
            index: Dict[str, Dict[str, float]] = {}
            floor = self.min_encounters
            shrinkage = self.shrinkage
            for (user_a, user_b), stats in self._pairs.items():
                if stats.encounters >= floor:
                    conditional = min(
                        1.0, stats.co_leavings / (stats.encounters + shrinkage)
                    )
                    index.setdefault(user_a, {})[user_b] = conditional
                    index.setdefault(user_b, {})[user_a] = conditional
            self._adjacency = index
            self._adjacency_generation = self._generation
        return self._adjacency

    # ------------------------------------------------------ online updates

    def record_events(
        self, user_a: str, user_b: str, encounters: int = 0, co_leavings: int = 0
    ) -> None:
        """Fold freshly observed events into the pair's statistics.

        This is the hook the online-learning extension
        (:mod:`repro.core.online`) uses: the controller observes
        encounters and co-leavings from the association stream it manages
        anyway, and keeps the model current without retraining.

        The update is a true delta: the pair's entry in the partner and
        adjacency indexes is patched in place, and every cached dense
        delta matrix containing both users has exactly its ``(u, v)``
        entries recomputed — in the same operation order as the batch
        build, so patched matrices stay *byte-identical* to a from-scratch
        rebuild (the equivalence the parity registry proves).  Everything
        is restamped to the new generation; only the two touched users'
        :meth:`user_generation` stamps move.
        """
        if encounters < 0 or co_leavings < 0:
            raise ValueError("event deltas must be non-negative")
        pair = make_pair(user_a, user_b)
        old = self._pairs.get(pair, PairStats(0, 0))
        stats = PairStats(
            encounters=old.encounters + encounters,
            co_leavings=old.co_leavings + co_leavings,
        )
        self._pairs[pair] = stats
        self._generation += 1
        generation = self._generation
        self._user_generation[pair[0]] = generation
        self._user_generation[pair[1]] = generation

        conditional = 0.0
        above_floor = stats.encounters >= self.min_encounters
        if above_floor:
            conditional = min(
                1.0, stats.co_leavings / (stats.encounters + self.shrinkage)
            )

        # Partner index: replace (or append) the pair's entry in place.
        if self._partners_generation == generation - 1:
            if above_floor:
                bucket = self._partners.setdefault(pair[0], [])
                for position, (partner, _) in enumerate(bucket):
                    if partner == pair[1]:
                        bucket[position] = (pair[1], stats)
                        break
                else:
                    bucket.append((pair[1], stats))
            self._partners_generation = generation

        # Bidirectional adjacency: patch both directions.
        if self._adjacency_generation == generation - 1:
            if above_floor:
                self._adjacency.setdefault(pair[0], {})[pair[1]] = conditional
                self._adjacency.setdefault(pair[1], {})[pair[0]] = conditional
            self._adjacency_generation = generation

        if self._delta_cache:
            self._patch_delta_cache(pair, conditional, generation)

    def assign_user_type(self, user_id: str, type_index: int) -> None:
        """Re-assign one user's type and patch the caches incrementally.

        The online counterpart of re-running the k-means step for a user
        whose profile drifted: the assignment map is updated, and every
        cached delta matrix containing the user has exactly its row and
        column recomputed (batch-build operation order, so the matrices
        stay byte-identical to a rebuild).  The conditional terms are
        untouched — only the type prior moves.
        """
        k = self.type_model.k
        if not 0 <= type_index < k:
            raise ValueError(
                f"type index {type_index!r} out of range for k={k}"
            )
        if self.type_model.assignments.get(user_id) == type_index:
            return
        self.type_model.assignments[user_id] = type_index
        self._generation += 1
        generation = self._generation
        self._user_generation[user_id] = generation
        # The partner/adjacency indexes hold conditional terms only; a
        # type change leaves them valid, so just restamp.
        if self._partners_generation == generation - 1:
            self._partners_generation = generation
        if self._adjacency_generation == generation - 1:
            self._adjacency_generation = generation
        if self._delta_cache:
            self._patch_delta_cache_user(user_id, generation)

    def _patch_delta_cache(
        self, pair: Pair, conditional: float, generation: int
    ) -> None:
        """Recompute the pair's entries in every current cached matrix.

        A matrix not stamped ``generation - 1`` missed an earlier patch
        (it can only happen through direct mutation of internals) and is
        dropped rather than served stale.  The recomputed value follows
        the batch build exactly — ``alpha * extended[ci, cj]`` first, the
        conditional added second — because float addition does not
        reassociate and byte-identity is the contract.
        """
        extended = self._extended_affinity()
        k = self.type_model.k
        assignments = self.type_model.assignments
        code_a = assignments.get(pair[0], k)
        code_b = assignments.get(pair[1], k)
        value = self.alpha * extended[code_a, code_b] + conditional
        stale: List[Tuple[str, ...]] = []
        for members, (stamped, matrix) in self._delta_cache.items():
            if stamped != generation - 1:
                stale.append(members)
                continue
            i = bisect_left(members, pair[0])
            j = bisect_left(members, pair[1])
            if (
                i < len(members)
                and members[i] == pair[0]
                and j < len(members)
                and members[j] == pair[1]
            ):
                matrix[i, j] = value
                matrix[j, i] = value
            self._delta_cache[members] = (generation, matrix)
        for members in stale:
            del self._delta_cache[members]
        perf.count("social.delta.patch")

    def _patch_delta_cache_user(self, user_id: str, generation: int) -> None:
        """Recompute one user's row/column in every current cached matrix."""
        extended = self._extended_affinity()
        k = self.type_model.k
        assignments = self.type_model.assignments
        code = assignments.get(user_id, k)
        alpha = self.alpha
        stale: List[Tuple[str, ...]] = []
        for members, (stamped, matrix) in self._delta_cache.items():
            if stamped != generation - 1:
                stale.append(members)
                continue
            i = bisect_left(members, user_id)
            if i < len(members) and members[i] == user_id:
                for j, other in enumerate(members):
                    if j == i:
                        matrix[i, i] = alpha * extended[code, code]
                        continue
                    other_code = assignments.get(other, k)
                    value = (
                        alpha * extended[code, other_code]
                        + self.conditional_term(user_id, other)
                    )
                    matrix[i, j] = value
                    matrix[j, i] = value
            self._delta_cache[members] = (generation, matrix)
        for members in stale:
            del self._delta_cache[members]
        perf.count("social.delta.patch")


def build_social_model(
    churn: ChurnEvents,
    type_model: TypeModel,
    alpha: float = 0.3,
    min_encounters: int = 2,
    shrinkage: float = 1.0,
) -> SocialModel:
    """Assemble the social model from extracted churn events."""
    encounters = churn.encounter_pairs()
    co_leavings = churn.co_leaving_pairs()
    pairs: Dict[Pair, PairStats] = {}
    for pair in sorted(set(encounters) | set(co_leavings)):
        pairs[pair] = PairStats(
            encounters=encounters.get(pair, 0),
            co_leavings=co_leavings.get(pair, 0),
        )
    return SocialModel(
        pair_stats=pairs,
        type_model=type_model,
        alpha=alpha,
        min_encounters=min_encounters,
        shrinkage=shrinkage,
    )
