"""The social relation index delta(u, v) (Section IV).

    delta(u, v) = P(L(u,v) | E(u,v)) + alpha * T(type_u, type_v)

The conditional term is estimated from the learning trace as the ratio of
the pair's co-leaving events to its encounter events; the type term is the
Table-I affinity weighted by the constant ``alpha`` (0.3 at the paper's
chosen operating point, Fig. 10).  Pairs that never encountered each other
fall back to the type term alone — "if the pair of users have not
encountered each other before, we need other information to guess the
possibility that they will leave together."

Noise control: fake social relationships (coincidental co-leavings) are
suppressed by requiring a minimum number of encounters before the
conditional term is trusted, mirroring the paper's "aggregating multiple
common events between the same pair of users."
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import perf
from repro.analysis.churn import ChurnEvents, Pair, make_pair
from repro.core.typing import TypeModel
from repro.graph.graph import Graph

#: Engines accepted by :meth:`SocialModel.build_graph`.
GRAPH_ENGINES = ("auto", "python", "numpy")

#: Delta matrices kept per model; one controller batch rarely revisits
#: more than a handful of member sets before the model learns new events.
_DELTA_CACHE_SIZE = 32


@dataclass(frozen=True)
class PairStats:
    """Observed event counts for one user pair."""

    encounters: int
    co_leavings: int

    @property
    def conditional_probability(self) -> float:
        """P(co-leave | encounter), capped at 1.

        Pairs can log more co-leavings than encounters (brief joint stays
        below the encounter-duration threshold still co-leave); the cap
        keeps the index a probability.
        """
        if self.encounters <= 0:
            return 0.0
        return min(1.0, self.co_leavings / self.encounters)


class SocialModel:
    """Pairwise social relation indices over a trained user population."""

    def __init__(
        self,
        pair_stats: Dict[Pair, PairStats],
        type_model: TypeModel,
        alpha: float = 0.3,
        min_encounters: int = 2,
        shrinkage: float = 1.0,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if min_encounters < 1:
            raise ValueError("min_encounters must be >= 1")
        if shrinkage < 0:
            raise ValueError("shrinkage must be non-negative")
        self._pairs = dict(pair_stats)
        self.type_model = type_model
        self.alpha = alpha
        self.min_encounters = min_encounters
        self.shrinkage = shrinkage
        # Indexed fast-path state: every structure below is a pure function
        # of (_pairs, type_model, alpha, min_encounters, shrinkage) at one
        # generation; record_events bumps the generation to invalidate.
        self._generation = 0
        self._partners_generation = -1
        self._partners: Dict[str, List[Tuple[str, PairStats]]] = {}
        self._delta_cache: "OrderedDict[Tuple[str, ...], Tuple[int, np.ndarray]]" = (
            OrderedDict()
        )

    # -------------------------------------------------------------- queries

    def pair_stats(self, user_a: str, user_b: str) -> Optional[PairStats]:
        """Observed event counts for the pair, or None if never seen."""
        return self._pairs.get(make_pair(user_a, user_b))

    def conditional_term(self, user_a: str, user_b: str) -> float:
        """P(L|E) for the pair, zero below the encounter-count floor.

        Shrinkage (``co_leavings / (encounters + shrinkage)``) keeps a pair
        observed only a couple of times from scoring a certain 1.0 — the
        same fake-relationship suppression applied to the Table-I matrix.
        """
        stats = self.pair_stats(user_a, user_b)
        if stats is None or stats.encounters < self.min_encounters:
            return 0.0
        return min(
            1.0, stats.co_leavings / (stats.encounters + self.shrinkage)
        )

    def type_term(self, user_a: str, user_b: str) -> float:
        """alpha * T(type_u, type_v)."""
        return self.alpha * self.type_model.affinity_of(user_a, user_b)

    def social_index(self, user_a: str, user_b: str) -> float:
        """The full delta(u, v)."""
        if user_a == user_b:
            raise ValueError("social index of a user with themselves")
        return self.conditional_term(user_a, user_b) + self.type_term(user_a, user_b)

    # --------------------------------------------------------------- graphs

    @property
    def generation(self) -> int:
        """Bumped by :meth:`record_events`; stamps the fast-path caches."""
        return self._generation

    def _partner_index(self) -> Dict[str, List[Tuple[str, PairStats]]]:
        """user -> [(partner, stats)] for pairs above the encounter floor.

        Pairs are canonical (smaller id first), so each appears under its
        smaller member only.  Rebuilt lazily after ``record_events``.
        """
        if self._partners_generation != self._generation:
            index: Dict[str, List[Tuple[str, PairStats]]] = {}
            floor = self.min_encounters
            for (user_a, user_b), stats in self._pairs.items():
                if stats.encounters >= floor:
                    index.setdefault(user_a, []).append((user_b, stats))
            self._partners = index
            self._partners_generation = self._generation
        return self._partners

    def _delta_matrix(self, members: Tuple[str, ...]) -> np.ndarray:
        """Dense delta over a sorted member tuple (cached per generation).

        The type term is a table lookup: an extended (k+1) x (k+1) affinity
        whose last row/column hold the unknown-user mean reproduces
        ``affinity_of`` exactly.  The sparse conditional terms are added
        from the partner index — only observed pairs cost anything.
        """
        cached = self._delta_cache.get(members)
        if cached is not None and cached[0] == self._generation:
            self._delta_cache.move_to_end(members)
            perf.count("social.delta.cache_hit")
            return cached[1]
        k = self.type_model.k
        affinity = np.asarray(self.type_model.affinity, dtype=np.float64)
        extended = np.empty((k + 1, k + 1), dtype=np.float64)
        extended[:k, :k] = affinity
        mean = float(affinity.mean())
        extended[k, :] = mean
        extended[:, k] = mean
        assignments = self.type_model.assignments
        codes = np.fromiter(
            (assignments.get(user, k) for user in members),
            dtype=np.intp,
            count=len(members),
        )
        delta = self.alpha * extended[codes[:, None], codes[None, :]]
        position = {user: i for i, user in enumerate(members)}
        shrinkage = self.shrinkage
        for i, user in enumerate(members):
            for partner, stats in self._partner_index().get(user, ()):
                j = position.get(partner)
                if j is None:
                    continue
                conditional = min(
                    1.0, stats.co_leavings / (stats.encounters + shrinkage)
                )
                delta[i, j] += conditional
                delta[j, i] += conditional
        self._delta_cache[members] = (self._generation, delta)
        if len(self._delta_cache) > _DELTA_CACHE_SIZE:
            self._delta_cache.popitem(last=False)
        perf.count("social.delta.build")
        return delta

    def build_graph(
        self, users: Iterable[str], threshold: float = 0.3, engine: str = "auto"
    ) -> Graph:
        """The user graph of Section IV.A: edges where delta > threshold.

        Every user appears as a node; only pairs above the threshold get an
        edge (weight = delta).  This is the input to the clique cover, which
        mutates its input — a fresh ``Graph`` is returned on every call even
        when the underlying delta matrix is served from cache.

        ``engine="python"`` forces the reference pairwise loop (kept for
        equivalence testing); ``"numpy"`` / ``"auto"`` use the indexed
        fast path: one cached dense delta matrix per member set, one
        vectorized thresholding per call.
        """
        if threshold < 0:
            raise ValueError(f"negative threshold {threshold!r}")
        if engine not in GRAPH_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {GRAPH_ENGINES}"
            )
        members = sorted(set(users))
        graph = Graph()
        for user in members:
            graph.add_node(user)
        if engine == "python" or len(members) < 2:
            for i, user_a in enumerate(members):
                for user_b in members[i + 1 :]:
                    delta = self.social_index(user_a, user_b)
                    if delta > threshold:
                        graph.add_edge(user_a, user_b, delta)
            return graph
        delta = self._delta_matrix(tuple(members))
        above = np.triu(delta > threshold, k=1)
        for i, j in np.argwhere(above).tolist():
            graph.add_edge(members[i], members[j], float(delta[i, j]))
        return graph

    def known_pairs(self) -> int:
        """Number of pairs with any recorded events."""
        return len(self._pairs)

    # ------------------------------------------------------ online updates

    def record_events(
        self, user_a: str, user_b: str, encounters: int = 0, co_leavings: int = 0
    ) -> None:
        """Fold freshly observed events into the pair's statistics.

        This is the hook the online-learning extension
        (:mod:`repro.core.online`) uses: the controller observes
        encounters and co-leavings from the association stream it manages
        anyway, and keeps the model current without retraining.
        """
        if encounters < 0 or co_leavings < 0:
            raise ValueError("event deltas must be non-negative")
        pair = make_pair(user_a, user_b)
        old = self._pairs.get(pair, PairStats(0, 0))
        self._pairs[pair] = PairStats(
            encounters=old.encounters + encounters,
            co_leavings=old.co_leavings + co_leavings,
        )
        self._generation += 1


def build_social_model(
    churn: ChurnEvents,
    type_model: TypeModel,
    alpha: float = 0.3,
    min_encounters: int = 2,
    shrinkage: float = 1.0,
) -> SocialModel:
    """Assemble the social model from extracted churn events."""
    encounters = churn.encounter_pairs()
    co_leavings = churn.co_leaving_pairs()
    pairs: Dict[Pair, PairStats] = {}
    for pair in sorted(set(encounters) | set(co_leavings)):
        pairs[pair] = PairStats(
            encounters=encounters.get(pair, 0),
            co_leavings=co_leavings.get(pair, 0),
        )
    return SocialModel(
        pair_stats=pairs,
        type_model=type_model,
        alpha=alpha,
        min_encounters=min_encounters,
        shrinkage=shrinkage,
    )
