"""The social relation index delta(u, v) (Section IV).

    delta(u, v) = P(L(u,v) | E(u,v)) + alpha * T(type_u, type_v)

The conditional term is estimated from the learning trace as the ratio of
the pair's co-leaving events to its encounter events; the type term is the
Table-I affinity weighted by the constant ``alpha`` (0.3 at the paper's
chosen operating point, Fig. 10).  Pairs that never encountered each other
fall back to the type term alone — "if the pair of users have not
encountered each other before, we need other information to guess the
possibility that they will leave together."

Noise control: fake social relationships (coincidental co-leavings) are
suppressed by requiring a minimum number of encounters before the
conditional term is trusted, mirroring the paper's "aggregating multiple
common events between the same pair of users."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.analysis.churn import ChurnEvents, Pair, make_pair
from repro.core.typing import TypeModel
from repro.graph.graph import Graph


@dataclass(frozen=True)
class PairStats:
    """Observed event counts for one user pair."""

    encounters: int
    co_leavings: int

    @property
    def conditional_probability(self) -> float:
        """P(co-leave | encounter), capped at 1.

        Pairs can log more co-leavings than encounters (brief joint stays
        below the encounter-duration threshold still co-leave); the cap
        keeps the index a probability.
        """
        if self.encounters <= 0:
            return 0.0
        return min(1.0, self.co_leavings / self.encounters)


class SocialModel:
    """Pairwise social relation indices over a trained user population."""

    def __init__(
        self,
        pair_stats: Dict[Pair, PairStats],
        type_model: TypeModel,
        alpha: float = 0.3,
        min_encounters: int = 2,
        shrinkage: float = 1.0,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if min_encounters < 1:
            raise ValueError("min_encounters must be >= 1")
        if shrinkage < 0:
            raise ValueError("shrinkage must be non-negative")
        self._pairs = dict(pair_stats)
        self.type_model = type_model
        self.alpha = alpha
        self.min_encounters = min_encounters
        self.shrinkage = shrinkage

    # -------------------------------------------------------------- queries

    def pair_stats(self, user_a: str, user_b: str) -> Optional[PairStats]:
        """Observed event counts for the pair, or None if never seen."""
        return self._pairs.get(make_pair(user_a, user_b))

    def conditional_term(self, user_a: str, user_b: str) -> float:
        """P(L|E) for the pair, zero below the encounter-count floor.

        Shrinkage (``co_leavings / (encounters + shrinkage)``) keeps a pair
        observed only a couple of times from scoring a certain 1.0 — the
        same fake-relationship suppression applied to the Table-I matrix.
        """
        stats = self.pair_stats(user_a, user_b)
        if stats is None or stats.encounters < self.min_encounters:
            return 0.0
        return min(
            1.0, stats.co_leavings / (stats.encounters + self.shrinkage)
        )

    def type_term(self, user_a: str, user_b: str) -> float:
        """alpha * T(type_u, type_v)."""
        return self.alpha * self.type_model.affinity_of(user_a, user_b)

    def social_index(self, user_a: str, user_b: str) -> float:
        """The full delta(u, v)."""
        if user_a == user_b:
            raise ValueError("social index of a user with themselves")
        return self.conditional_term(user_a, user_b) + self.type_term(user_a, user_b)

    # --------------------------------------------------------------- graphs

    def build_graph(self, users: Iterable[str], threshold: float = 0.3) -> Graph:
        """The user graph of Section IV.A: edges where delta > threshold.

        Every user appears as a node; only pairs above the threshold get an
        edge (weight = delta).  This is the input to the clique cover.
        """
        if threshold < 0:
            raise ValueError(f"negative threshold {threshold!r}")
        members = sorted(set(users))
        graph = Graph()
        for user in members:
            graph.add_node(user)
        for i, user_a in enumerate(members):
            for user_b in members[i + 1 :]:
                delta = self.social_index(user_a, user_b)
                if delta > threshold:
                    graph.add_edge(user_a, user_b, delta)
        return graph

    def known_pairs(self) -> int:
        """Number of pairs with any recorded events."""
        return len(self._pairs)

    # ------------------------------------------------------ online updates

    def record_events(
        self, user_a: str, user_b: str, encounters: int = 0, co_leavings: int = 0
    ) -> None:
        """Fold freshly observed events into the pair's statistics.

        This is the hook the online-learning extension
        (:mod:`repro.core.online`) uses: the controller observes
        encounters and co-leavings from the association stream it manages
        anyway, and keeps the model current without retraining.
        """
        if encounters < 0 or co_leavings < 0:
            raise ValueError("event deltas must be non-negative")
        pair = make_pair(user_a, user_b)
        old = self._pairs.get(pair, PairStats(0, 0))
        self._pairs[pair] = PairStats(
            encounters=old.encounters + encounters,
            co_leavings=old.co_leavings + co_leavings,
        )


def build_social_model(
    churn: ChurnEvents,
    type_model: TypeModel,
    alpha: float = 0.3,
    min_encounters: int = 2,
) -> SocialModel:
    """Assemble the social model from extracted churn events."""
    encounters = churn.encounter_pairs()
    co_leavings = churn.co_leaving_pairs()
    pairs: Dict[Pair, PairStats] = {}
    for pair in set(encounters) | set(co_leavings):
        pairs[pair] = PairStats(
            encounters=encounters.get(pair, 0),
            co_leavings=co_leavings.get(pair, 0),
        )
    return SocialModel(
        pair_stats=pairs,
        type_model=type_model,
        alpha=alpha,
        min_encounters=min_encounters,
    )
