"""Per-user bandwidth demand estimation from history.

Algorithm 1 needs the demanded throughput ``w(u)`` of an arriving user to
check the AP bandwidth constraint ``sum_u w(u) <= W(i)``.  The paper
estimates it "using the history trace of u as studied in [Qiao et al.,
HPDC'04]" — multi-scale predictability of a user's own past traffic.  The
stand-in here is an exponentially weighted moving average over the user's
past session mean rates, with a population-mean fallback for users with no
history (new MAC addresses exist in any real WLAN).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.trace.records import SessionRecord


class DemandEstimator:
    """EWMA estimator of per-user demanded throughput (bytes/second)."""

    def __init__(self, smoothing: float = 0.3, default_rate: float = 50e3) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if default_rate <= 0:
            raise ValueError(f"default_rate must be positive, got {default_rate}")
        self.smoothing = smoothing
        self._default = default_rate
        self._rates: Dict[str, float] = {}
        self._observations: Dict[str, int] = {}

    # ------------------------------------------------------------- training

    def observe(self, user_id: str, mean_rate: float) -> None:
        """Fold one finished session's mean rate into the user's estimate."""
        if mean_rate < 0:
            raise ValueError(f"negative rate {mean_rate!r}")
        if user_id in self._rates:
            old = self._rates[user_id]
            self._rates[user_id] = (
                self.smoothing * mean_rate + (1.0 - self.smoothing) * old
            )
        else:
            self._rates[user_id] = mean_rate
        self._observations[user_id] = self._observations.get(user_id, 0) + 1

    def observe_sessions(self, sessions: Iterable[SessionRecord]) -> None:
        """Train on a session log in chronological order."""
        for record in sorted(sessions, key=lambda s: s.disconnect):
            if record.duration > 0:
                self.observe(record.user_id, record.mean_rate)

    def fit_population_default(self) -> None:
        """Reset the unknown-user fallback to the trained population mean."""
        if self._rates:
            self._default = sum(self._rates.values()) / len(self._rates)

    # -------------------------------------------------------------- queries

    def estimate(self, user_id: str) -> float:
        """Estimated demand w(u) in bytes/second (fallback for strangers)."""
        return self._rates.get(user_id, self._default)

    def observations(self, user_id: str) -> int:
        """How many sessions have been folded in for this user."""
        return self._observations.get(user_id, 0)

    @property
    def known_users(self) -> List[str]:
        """Users with at least one observation, sorted."""
        return sorted(self._rates)

    @property
    def default_rate(self) -> float:
        """Fallback rate used for users with no history (bytes/second)."""
        return self._default
