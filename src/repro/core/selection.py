"""Algorithm 1: the S³ AP selection algorithm.

The controller distributes users to APs so that the total social relation
index *within* each AP is minimized — socially tight users, who tend to
co-leave, are spread across APs so their joint departure cannot crater any
single AP's load.  Secondary objective: do not degrade the balance index;
hard constraint: per-AP bandwidth.

For a batch of waiting users the paper's pseudocode is followed exactly:

1. build the graph over waiting users (edges where delta > 0.3);
2. iteratively extract the maximum clique (edge-weight tie-break);
3. for the clique, search the space of user->AP distributions, sort by the
   added social cost  sum_i C(AP_i), keep the top 30% cheapest, and among
   them pick the distribution with the best predicted balance index;
4. update AP state, erase the clique, repeat;

with LLF (least loaded first) as the fall-back when there is no social
information to exploit — empty APs, strangers, ties (Section IV.B: "if
S(AP) is empty or there are multiple candidate APs to choose, we simply
apply LLF").

The algorithm sees APs only through :class:`APState` snapshots, so it is
reusable by the trace-driven simulator and the message-level prototype
alike; it never mutates caller state.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.balance import normalized_balance_index
from repro.core.demand import DemandEstimator
from repro.core.social import SocialModel
from repro.graph.clique import clique_cover

INFEASIBLE = math.inf


@dataclass(frozen=True)
class APState:
    """A snapshot of one AP as the selection algorithm sees it."""

    ap_id: str
    bandwidth: float
    load: float
    users: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"AP {self.ap_id}: non-positive bandwidth")
        if self.load < 0:
            raise ValueError(f"AP {self.ap_id}: negative load")

    @property
    def user_count(self) -> int:
        """Number of currently associated users."""
        return len(self.users)

    def headroom(self) -> float:
        """Remaining bandwidth (bytes/second)."""
        return self.bandwidth - self.load

    def with_user(self, user_id: str, rate: float) -> "APState":
        """The state after associating ``user_id`` at ``rate`` bytes/s."""
        return replace(self, load=self.load + rate, users=self.users + (user_id,))


@dataclass(frozen=True)
class SelectionConfig:
    """Tunables of Algorithm 1, defaulting to the paper's operating point."""

    #: Social-graph edge threshold (Section IV.A).
    edge_threshold: float = 0.3
    #: Fraction of cheapest distributions re-ranked by balance index
    #: (line 6 of the pseudocode: "find the top 30% distribution").
    top_fraction: float = 0.3
    #: Exhaustive enumeration cap; larger cliques fall back to the greedy
    #: placement (the paper's own search is heuristic at this point).
    max_enumeration: int = 20000

    def __post_init__(self) -> None:
        if not 0.0 < self.top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        if self.max_enumeration < 1:
            raise ValueError("max_enumeration must be >= 1")
        if self.edge_threshold < 0:
            raise ValueError("edge_threshold must be non-negative")


def least_loaded(aps: Sequence[APState]) -> APState:
    """LLF: the AP with the least traffic load (user count, then id as
    deterministic tie-breaks)."""
    if not aps:
        raise ValueError("no candidate APs")
    return min(aps, key=lambda ap: (ap.load, ap.user_count, ap.ap_id))


class S3Selector:
    """The trained S³ decision engine."""

    def __init__(
        self,
        social: SocialModel,
        demand: DemandEstimator,
        config: Optional[SelectionConfig] = None,
    ) -> None:
        self.social = social
        self.demand = demand
        self.config = config if config is not None else SelectionConfig()

    # -------------------------------------------------------------- scoring

    def added_social_cost(self, user_id: str, ap: APState) -> float:
        """C(AP) increment of adding ``user_id``: sum of delta to residents."""
        return sum(
            self.social.social_index(user_id, resident)
            for resident in ap.users
            if resident != user_id
        )

    # ------------------------------------------------------- single arrival

    def select(self, user_id: str, aps: Sequence[APState]) -> str:
        """Online assignment of one arriving user; returns the AP id.

        This is Algorithm 1 for a singleton clique: rank feasible APs by
        the added social cost C, keep the cheapest ``top_fraction`` of
        them, and among those pick the AP whose post-assignment balance
        index is best (load as the final deterministic tie-break).  When
        the bandwidth constraint rules out every AP the user is still
        admitted at the least-loaded AP — rejecting association is not an
        option the paper considers.
        """
        if not aps:
            raise ValueError("no candidate APs")
        rate = self.demand.estimate(user_id)
        feasible = [ap for ap in aps if ap.load + rate <= ap.bandwidth]
        if not feasible:
            return least_loaded(aps).ap_id
        ranked = sorted(
            feasible,
            key=lambda ap: (self.added_social_cost(user_id, ap), ap.load, ap.ap_id),
        )
        keep = max(1, int(math.ceil(len(ranked) * self.config.top_fraction)))
        top = ranked[:keep]
        loads = {ap.ap_id: ap.load for ap in aps}

        def balance_after(candidate: APState) -> float:
            after = [
                load + rate if ap_id == candidate.ap_id else load
                for ap_id, load in loads.items()
            ]
            return normalized_balance_index(after)

        return min(
            top,
            key=lambda ap: (-balance_after(ap), ap.load, ap.user_count, ap.ap_id),
        ).ap_id

    # --------------------------------------------------------- batch arrival

    def assign_batch(
        self, user_ids: Sequence[str], aps: Sequence[APState]
    ) -> Dict[str, str]:
        """Algorithm 1 over a batch of waiting users.

        Returns user id -> AP id.  AP snapshots are updated internally as
        cliques are placed so later cliques see earlier placements.
        """
        if not aps:
            raise ValueError("no candidate APs")
        waiting = list(dict.fromkeys(user_ids))  # preserve order, dedupe
        if not waiting:
            return {}
        if len(waiting) == 1:
            return {waiting[0]: self.select(waiting[0], aps)}

        states: Dict[str, APState] = {ap.ap_id: ap for ap in aps}
        graph = self.social.build_graph(waiting, threshold=self.config.edge_threshold)
        cover = clique_cover(graph)

        assignment: Dict[str, str] = {}
        for clique in cover.cliques:
            placement = self._place_clique(clique, list(states.values()))
            for user_id, ap_id in placement.items():
                rate = self.demand.estimate(user_id)
                states[ap_id] = states[ap_id].with_user(user_id, rate)
                assignment[user_id] = ap_id
        return assignment

    # ---------------------------------------------------------- clique step

    def _place_clique(
        self, members: Sequence[str], aps: Sequence[APState]
    ) -> Dict[str, str]:
        """Place one clique: enumerate (or greedily construct) distributions,
        rank by social cost, re-rank the top fraction by balance index."""
        members = list(members)
        if len(members) == 1:
            return {members[0]: self.select(members[0], aps)}

        n_combinations = len(aps) ** len(members)
        if n_combinations <= self.config.max_enumeration:
            return self._place_exhaustive(members, aps)
        return self._place_greedy(members, aps)

    def _place_exhaustive(
        self, members: List[str], aps: Sequence[APState]
    ) -> Dict[str, str]:
        rates = [self.demand.estimate(user) for user in members]
        # delta between clique members, precomputed once.
        internal = {
            (i, j): self.social.social_index(members[i], members[j])
            for i in range(len(members))
            for j in range(i + 1, len(members))
        }
        scored: List[Tuple[float, float, Tuple[int, ...]]] = []
        for combo in itertools.product(range(len(aps)), repeat=len(members)):
            cost = 0.0
            added_load = [0.0] * len(aps)
            feasible = True
            for i, ap_index in enumerate(combo):
                ap = aps[ap_index]
                cost += self.added_social_cost(members[i], ap)
                added_load[ap_index] += rates[i]
            for (i, j), delta in internal.items():
                if combo[i] == combo[j]:
                    cost += delta
            for ap_index, extra in enumerate(added_load):
                ap = aps[ap_index]
                if extra > 0 and ap.load + extra > ap.bandwidth:
                    feasible = False
                    break
            if not feasible:
                continue
            loads_after = [
                ap.load + added_load[ap_index] for ap_index, ap in enumerate(aps)
            ]
            beta = normalized_balance_index(loads_after)
            scored.append((cost, -beta, combo))

        if not scored:
            # Bandwidth rules everything out; admit greedily anyway.
            return self._place_greedy(members, aps, ignore_bandwidth=True)

        scored.sort(key=lambda item: (item[0], item[1]))
        keep = max(1, int(math.ceil(len(scored) * self.config.top_fraction)))
        top = scored[:keep]
        # Among the cheapest distributions, maximize the balance index
        # (stored negated), breaking remaining ties by cost then combo for
        # determinism.
        best = min(top, key=lambda item: (item[1], item[0], item[2]))
        combo = best[2]
        return {members[i]: aps[ap_index].ap_id for i, ap_index in enumerate(combo)}

    def _place_greedy(
        self,
        members: List[str],
        aps: Sequence[APState],
        ignore_bandwidth: bool = False,
    ) -> Dict[str, str]:
        """Sequential fallback for cliques too large to enumerate: heaviest
        demand first, each user to the (feasible) AP with the smallest
        added social cost, load as the tie-break."""
        states: Dict[str, APState] = {ap.ap_id: ap for ap in aps}
        order = sorted(members, key=lambda u: -self.demand.estimate(u))
        placement: Dict[str, str] = {}
        for user_id in order:
            rate = self.demand.estimate(user_id)
            candidates = list(states.values())
            if not ignore_bandwidth:
                feasible = [
                    ap for ap in candidates if ap.load + rate <= ap.bandwidth
                ]
                if feasible:
                    candidates = feasible
            ranked = sorted(
                candidates,
                key=lambda ap: (
                    self.added_social_cost(user_id, ap),
                    ap.load,
                    ap.ap_id,
                ),
            )
            keep = max(1, int(math.ceil(len(ranked) * self.config.top_fraction)))
            top = ranked[:keep]

            def balance_after(candidate: APState) -> float:
                after = [
                    state.load + rate if state.ap_id == candidate.ap_id else state.load
                    for state in states.values()
                ]
                return normalized_balance_index(after)

            chosen = min(
                top,
                key=lambda ap: (-balance_after(ap), ap.load, ap.user_count, ap.ap_id),
            )
            placement[user_id] = chosen.ap_id
            states[chosen.ap_id] = states[chosen.ap_id].with_user(user_id, rate)
        return placement
