"""User types: k-means over application profiles + the affinity matrix.

Section III.D.2 clusters users' normalized application-usage vectors into
``k = 4`` groups (gap statistic, Fig. 7) and tabulates
``T(type_i, type_j)`` — "the mean possibility that a pair of tags from
group type_i and type_j will leave together" (Table I).  The diagonal
dominance of T is the prior S³ falls back on for user pairs that have
never encountered each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.churn import ChurnEvents
from repro.cluster.gap import gap_statistic
from repro.cluster.kmeans import KMeans, KMeansResult
from repro.core.profiles import DailyProfileStore


@dataclass(frozen=True)
class TypeModel:
    """A fitted user-type model.

    ``centroids`` are the cluster centers over the six realms (Fig. 8);
    ``assignments`` maps user id -> type index; ``affinity`` is the k x k
    Table-I matrix (NaN-free: unobserved type pairs get the global mean).
    """

    centroids: np.ndarray
    assignments: Dict[str, int]
    affinity: np.ndarray

    @property
    def k(self) -> int:
        """Number of user types."""
        return int(self.centroids.shape[0])

    def type_of(self, user_id: str) -> Optional[int]:
        """Type index of a known user, ``None`` for strangers."""
        return self.assignments.get(user_id)

    def affinity_of(self, user_a: str, user_b: str) -> float:
        """``T(type_a, type_b)`` with unknown users mapped to the mean."""
        type_a = self.assignments.get(user_a)
        type_b = self.assignments.get(user_b)
        if type_a is None or type_b is None:
            return float(self.affinity.mean())
        return float(self.affinity[type_a, type_b])

    def classify_profile(self, profile: Sequence[float]) -> int:
        """Nearest-centroid type for an arbitrary profile vector."""
        vector = np.asarray(list(profile), dtype=float)
        distances = np.linalg.norm(self.centroids - vector[None, :], axis=1)
        return int(np.argmin(distances))

    def type_sizes(self) -> np.ndarray:
        """Users per type, indexed by type."""
        counts = np.zeros(self.k, dtype=int)
        for type_index in self.assignments.values():
            counts[type_index] += 1
        return counts


def fit_user_clusters(
    store: DailyProfileStore,
    k: Optional[int] = None,
    k_max: int = 10,
    rng: Optional[np.random.Generator] = None,
    end_day: Optional[int] = None,
    lookback: Optional[int] = None,
) -> Tuple[List[str], KMeansResult, Optional[int]]:
    """Cluster user profiles; k chosen by the gap statistic when not given.

    Returns ``(user_ids, kmeans_result, selected_k_by_gap)`` — the third
    element is ``None`` when ``k`` was forced by the caller.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    users, matrix = store.profile_matrix(end_day=end_day, lookback=lookback)
    if len(users) < 2:
        raise ValueError(f"need at least 2 profiled users, got {len(users)}")
    selected: Optional[int] = None
    if k is None:
        gap = gap_statistic(matrix, k_max=min(k_max, len(users)), rng=rng)
        selected = gap.selected_k
        k = selected
    result = KMeans(k=k, rng=rng).fit(matrix)
    return users, result, selected


def type_affinity_matrix(
    assignments: Dict[str, int],
    k: int,
    churn: ChurnEvents,
    min_encounters: int = 2,
    shrinkage: float = 1.0,
) -> np.ndarray:
    """Table I: mean per-pair co-leaving probability by type pair.

    For every user pair with at least ``min_encounters`` encounters, the
    pair's co-leaving probability is estimated with Laplace-style
    shrinkage ``min(1, co_leavings / (encounters + shrinkage))`` — a pair
    seen together once that happened to co-leave once must not score a
    certain 1.0 (these are exactly the "fake social relationships" the
    paper treats as noise).  The matrix entry (i, j) is the
    encounter-weighted average over pairs with types {i, j}, so
    well-observed pairs dominate coincidences.  Type pairs never observed
    together fall back to the global mean so the matrix stays total (S³
    must be able to score any pair).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if shrinkage < 0:
        raise ValueError("shrinkage must be non-negative")
    encounter_counts = churn.encounter_pairs()
    coleave_counts = churn.co_leaving_pairs()

    sums = np.zeros((k, k))
    weights = np.zeros((k, k))
    for pair, n_encounters in encounter_counts.items():
        if n_encounters < min_encounters:
            continue
        user_a, user_b = pair
        type_a = assignments.get(user_a)
        type_b = assignments.get(user_b)
        if type_a is None or type_b is None:
            continue
        probability = min(
            1.0, coleave_counts.get(pair, 0) / (n_encounters + shrinkage)
        )
        weight = float(n_encounters)
        sums[type_a, type_b] += probability * weight
        weights[type_a, type_b] += weight
        if type_a != type_b:
            sums[type_b, type_a] += probability * weight
            weights[type_b, type_a] += weight

    observed = weights > 0
    matrix = np.zeros((k, k))
    matrix[observed] = sums[observed] / weights[observed]
    if observed.any():
        fallback = float(matrix[observed].mean())
    else:
        fallback = 0.0
    matrix[~observed] = fallback
    return matrix


def fit_type_model(
    store: DailyProfileStore,
    churn: ChurnEvents,
    k: Optional[int] = 4,
    rng: Optional[np.random.Generator] = None,
    min_encounters: int = 2,
    end_day: Optional[int] = None,
    lookback: Optional[int] = None,
) -> TypeModel:
    """Fit the full type model: clusters + affinity matrix.

    ``k`` defaults to the paper's 4; pass ``k=None`` to re-run the gap
    statistic selection instead.
    """
    users, result, _ = fit_user_clusters(
        store, k=k, rng=rng, end_day=end_day, lookback=lookback
    )
    assignments = {user: int(label) for user, label in zip(users, result.labels)}
    affinity = type_affinity_matrix(
        assignments, result.k, churn, min_encounters=min_encounters
    )
    return TypeModel(centroids=result.centroids, assignments=assignments, affinity=affinity)
