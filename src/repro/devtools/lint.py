"""The lint driver: ``python -m repro.devtools.lint [paths]``.

Walks the given files/directories (default ``src``), parses each
``*.py`` once, runs every registered rule's module check plus one round
of project checks, filters ``# repro: noqa[...]`` suppressions, and
prints findings as ``path:line:col: rule-id message``.  Exit status is
the CI contract: 0 when clean, 1 on findings, 2 on usage errors.

The framework pieces live beside this module — rules in
:mod:`repro.devtools.rules`, contexts in :mod:`repro.devtools.project`,
the parity table in :mod:`repro.devtools.parity_registry`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.devtools.findings import Finding
from repro.devtools.project import (
    LintModule,
    Project,
    default_repo_root,
    parse_module,
)
from repro.devtools.registry import Rule, all_rules
from repro.devtools.suppress import apply_suppressions

#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under ``paths``, depth-first, sorted."""
    for path in paths:
        if path.is_dir():
            for child in sorted(path.iterdir()):
                if child.is_dir() and child.name in SKIP_DIRS:
                    continue
                yield from iter_python_files([child])
        elif path.suffix == ".py":
            yield path


def lint_module(
    module: LintModule, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run module-level checks (suppression-filtered) on one parsed file."""
    rules = rules if rules is not None else all_rules()
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check_module(module))
    findings = list(apply_suppressions(raw, module.suppressions))
    for rule in rules:
        # Suppression audits (stale-noqa) see the raw findings and are
        # not themselves suppressible.
        findings.extend(rule.check_suppressions(module, raw))
    return sorted(findings, key=lambda f: f.sort_key)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[Project] = None,
    with_project_checks: bool = True,
) -> List[Finding]:
    """Lint every python file under ``paths``; returns sorted findings.

    Project-level checks (parity-registry staleness) run once per call —
    they assert repo-wide invariants, so they fire regardless of which
    subset of files was passed.
    """
    rules = rules if rules is not None else all_rules()
    if project is None:
        root = default_repo_root()
        project = Project(
            repo_root=root, src_root=root / "src", tests_root=root / "tests"
        )
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        module = parse_module(path)
        project.modules.append(module)
        findings.extend(lint_module(module, rules))
    if with_project_checks:
        for rule in rules:
            findings.extend(rule.check_project(project))
    return sorted(findings, key=lambda f: f.sort_key)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="repo-specific determinism / engine-parity lint",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule suite and exit"
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="with --list-rules, emit a markdown table (docs are generated "
        "from this)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip cross-file checks (parity-registry staleness)",
    )
    options = parser.parse_args(argv)

    rules = all_rules()
    if options.list_rules:
        if options.markdown:
            print("| rule | invariant |")
            print("| --- | --- |")
            for rule in rules:
                print(f"| `{rule.id}` | {rule.description} |")
        else:
            width = max(len(rule.id) for rule in rules)
            for rule in rules:
                print(f"{rule.id.ljust(width)}  {rule.description}")
        return 0

    paths = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    findings = lint_paths(
        paths, rules=rules, with_project_checks=not options.no_project
    )
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
