"""Repo-specific static analysis: determinism and engine-parity gates.

The reproduction's credibility rests on two invariants the compiler
cannot see:

* **Determinism** — the simulation must be bit-reproducible from a seed;
  the paper's trace statistics (Figs. 2-5) are only checkable if replay
  is deterministic.  Wall-clock reads, the global ``random`` module and
  unordered set iteration all silently break that.
* **Engine parity** — every numpy fast path (``engine="numpy"``) must
  stay byte-identical to its pure-Python reference, which means every
  dispatching function must be registered with its reference
  implementation and equivalence tests
  (:mod:`repro.devtools.parity_registry`).

This package is a small AST-based lint framework enforcing both:

* :mod:`repro.devtools.findings` — the :class:`Finding` record.
* :mod:`repro.devtools.registry` — the rule registry.
* :mod:`repro.devtools.rules` — the repo-specific rules.
* :mod:`repro.devtools.lint` — the CLI
  (``python -m repro.devtools.lint [paths]``), exits non-zero on
  findings.

Suppression: append ``# repro: noqa[rule-id]`` (comma-separated ids, or
bare ``# repro: noqa`` for all rules) to the flagged line.  See
``docs/static_analysis.md`` for each rule's rationale.
"""

from __future__ import annotations

from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, all_rules, register

__all__ = ["Finding", "Rule", "all_rules", "register"]
