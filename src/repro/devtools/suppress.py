"""``# repro: noqa[rule-id]`` suppression comments.

A finding is suppressed when the physical line it points at carries a
suppression comment naming its rule (or naming no rule, which suppresses
every rule on that line)::

    t = time.time()          # repro: noqa[no-wallclock]
    for u in set(users):     # repro: noqa[ordered-iteration,no-wallclock]
    x = legacy_call()        # repro: noqa

Suppressions are deliberately per-line (no file- or block-scoped form):
every exemption stays visible next to the code it excuses.  Comments are
found with :mod:`tokenize`, so the marker inside a string literal (like
the examples above) is *not* a suppression — which also lets the
``stale-noqa`` rule treat every real comment as a claim to be checked.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.devtools.findings import Finding

#: ``# repro: noqa`` with an optional ``[id, id, ...]`` rule list.
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\- ]+)\])?")

#: Suppression table: line number -> rule ids (empty set = all rules).
SuppressionMap = Dict[int, FrozenSet[str]]


@dataclass(frozen=True)
class NoqaComment:
    """One suppression comment, located precisely.

    ``rules`` is empty for the bare ``# repro: noqa`` form (suppress
    every rule on the line).
    """

    line: int
    column: int
    rules: Tuple[str, ...]


def suppression_comments(source: str) -> List[NoqaComment]:
    """Every real suppression comment in ``source``, in line order.

    Tokenizing (rather than a string scan) pins each suppression to an
    actual ``COMMENT`` token — the marker inside a string literal or
    docstring does not count.  Comments on a continuation line apply to
    that physical line, same as before.
    """
    comments: List[NoqaComment] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            # Anchored at the start of the comment token: a comment that
            # merely *mentions* the marker mid-text is not a suppression.
            match = _NOQA.match(token.string)
            if match is None:
                continue
            rules = match.group(1)
            names: Tuple[str, ...] = (
                tuple(
                    name.strip() for name in rules.split(",") if name.strip()
                )
                if rules is not None
                else ()
            )
            comments.append(
                NoqaComment(
                    line=token.start[0],
                    column=token.start[1] + match.start(),
                    rules=names,
                )
            )
    except (tokenize.TokenError, IndentationError):
        # Unparseable tails never reach the rules either (parse_module
        # has already ast.parse()d the file); fail open.
        pass
    return comments


def suppression_map(source: str) -> SuppressionMap:
    """Per-line suppression table derived from the real comments."""
    table: Dict[int, FrozenSet[str]] = {}
    for comment in suppression_comments(source):
        existing = table.get(comment.line)
        if comment.rules and existing is None:
            table[comment.line] = frozenset(comment.rules)
        elif comment.rules and existing:
            table[comment.line] = existing | frozenset(comment.rules)
        else:
            # A bare noqa (or one merged with a bare one) blankets the line.
            table[comment.line] = frozenset()
    return table


def is_suppressed(finding: Finding, table: SuppressionMap) -> bool:
    """Whether ``finding`` is silenced by a suppression on its line."""
    rules = table.get(finding.line)
    if rules is None:
        return False
    return not rules or finding.rule in rules


def apply_suppressions(
    findings: Iterable[Finding], table: Optional[SuppressionMap]
) -> Iterable[Finding]:
    """Drop findings whose line carries a matching suppression."""
    if not table:
        return list(findings)
    return [f for f in findings if not is_suppressed(f, table)]
