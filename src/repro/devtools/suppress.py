"""``# repro: noqa[rule-id]`` suppression comments.

A finding is suppressed when the physical line it points at carries a
suppression comment naming its rule (or naming no rule, which suppresses
every rule on that line):

    t = time.time()          # repro: noqa[no-wallclock]
    for u in set(users):     # repro: noqa[ordered-iteration,no-wallclock]
    x = legacy_call()        # repro: noqa

Suppressions are deliberately per-line (no file- or block-scoped form):
every exemption stays visible next to the code it excuses.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, Optional

from repro.devtools.findings import Finding

#: ``# repro: noqa`` with an optional ``[id, id, ...]`` rule list.
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\- ]+)\])?")

#: Suppression table: line number -> rule ids (empty set = all rules).
SuppressionMap = Dict[int, FrozenSet[str]]


def suppression_map(source: str) -> SuppressionMap:
    """Scan ``source`` for per-line suppression comments.

    A plain string scan (rather than :mod:`tokenize`) is enough here: a
    false positive requires the literal marker inside a string on a line
    that also triggers a rule, which the fixture suite would catch.
    """
    table: SuppressionMap = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(text)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            table[lineno] = frozenset()
        else:
            table[lineno] = frozenset(
                name.strip() for name in rules.split(",") if name.strip()
            )
    return table


def is_suppressed(finding: Finding, table: SuppressionMap) -> bool:
    """Whether ``finding`` is silenced by a suppression on its line."""
    rules = table.get(finding.line)
    if rules is None:
        return False
    return not rules or finding.rule in rules


def apply_suppressions(
    findings: Iterable[Finding], table: Optional[SuppressionMap]
) -> Iterable[Finding]:
    """Drop findings whose line carries a matching suppression."""
    if not table:
        return list(findings)
    return [f for f in findings if not is_suppressed(f, table)]
