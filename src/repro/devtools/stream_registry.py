"""The RNG stream-name registry: every derivation is declared here.

:class:`~repro.sim.rng.RandomStreams` derives child generators and
sub-factories from *names* (``crc32(name)`` seeds), so two modules
deriving the same name from the same factory silently share a stream —
their draws interleave and every downstream float decorrelates from the
run that had only one consumer.  The per-file rules cannot see that
collision; it is a whole-program property.  This registry makes the
stream namespace explicit:

* every ``streams.get(...)`` / ``streams.child(...)`` call site in
  ``src`` must use a string literal (or f-string prefix, or registered
  deriver function) that matches exactly one :class:`StreamEntry`, and
  must live in that entry's ``owner`` module;
* entry names and prefixes must be globally collision-free per kind;
* the seeded ``default_rng(...)`` *fallback* idiom (strategies and
  fitters that accept ``rng=None``) is closed over the same way: only
  the functions listed in :data:`FALLBACK_GENERATORS` may construct a
  generator directly.

The ``rng-stream-registry`` rule checks all of this against the actual
call sites **in both directions** (like ``parity_registry``): an
unregistered derivation fails lint, and a registered entry with no
surviving call site fails lint too — the table cannot rot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class StreamEntry:
    """One registered stream name (or name family) and its owner.

    Exactly one of ``name`` (exact match) or ``prefix`` (f-string /
    deriver family) is set.  ``owner`` is the one module whose call
    sites may derive it — ownership is what makes collisions loud.
    """

    #: ``"get"`` (generator) or ``"child"`` (sub-factory).
    kind: str
    owner: str
    description: str
    name: Optional[str] = None
    prefix: Optional[str] = None

    def matches(self, literal: str) -> bool:
        """Whether an exact literal stream name belongs to this entry."""
        if self.name is not None:
            return literal == self.name
        assert self.prefix is not None
        return literal.startswith(self.prefix)

    def matches_prefix(self, leading: str) -> bool:
        """Whether an f-string's leading literal falls in this family."""
        return self.prefix is not None and leading.startswith(self.prefix)

    @property
    def label(self) -> str:
        if self.name is not None:
            return f"{self.kind}:{self.name!r}"
        return f"{self.kind}:{self.prefix!r}*"


@dataclass(frozen=True)
class DeriverEntry:
    """A function whose return value is a sanctioned stream name.

    ``streams.child(shard_stream_name(cid))`` derives per-controller
    factories from a *computed* name; registering the deriver (and the
    prefix it emits) keeps such sites checkable without banning them.
    """

    #: Dotted qualname of the name-producing function.
    function: str
    #: ``"get"`` or ``"child"`` — where its result may be passed.
    kind: str
    #: The literal prefix every returned name starts with.
    prefix: str
    description: str


#: Every stream name the reproduction derives, by family.
STREAM_REGISTRY: Tuple[StreamEntry, ...] = (
    StreamEntry(
        kind="get",
        name="world",
        owner="repro.trace.social",
        description="campus layout + social-world construction draws",
    ),
    StreamEntry(
        kind="get",
        prefix="day-",
        owner="repro.trace.generator",
        description="per-day session schedule jitter (one stream per day)",
    ),
    StreamEntry(
        kind="get",
        prefix="mood-",
        owner="repro.trace.generator",
        description="per-day mood/shock modulation of traffic volumes",
    ),
    StreamEntry(
        kind="get",
        name="flows",
        owner="repro.trace.generator",
        description="flow-record size and pacing draws",
    ),
    StreamEntry(
        kind="child",
        name="faults",
        owner="repro.faults.schedule",
        description="the chaos-plan sub-factory (fault-determinism rule)",
    ),
    StreamEntry(
        kind="get",
        name="schedule",
        owner="repro.faults.schedule",
        description="fault-plan event schedule draws (under child('faults'))",
    ),
    StreamEntry(
        kind="get",
        prefix="radio-",
        owner="repro.wlan.replay",
        description="per-demand RSSI jitter (one stream per arrival)",
    ),
    StreamEntry(
        kind="get",
        name="service",
        owner="repro.service.workload",
        description="synthetic service-session event stream draws",
    ),
)

#: Functions allowed to compute stream names (prefix families).
DERIVERS: Tuple[DeriverEntry, ...] = (
    DeriverEntry(
        function="repro.wlan.replay.shard_stream_name",
        kind="child",
        prefix="shard:",
        description=(
            "per-controller shard factories — the cross-process stream "
            "identity serial/process parity rests on"
        ),
    ),
)

#: Functions (by dotted qualname) sanctioned to construct a generator
#: directly via seeded ``default_rng(...)`` — the documented fallback
#: idiom for components that accept ``rng=None``.  Anything else must
#: thread a Generator in from :class:`~repro.sim.rng.RandomStreams`.
FALLBACK_GENERATORS: Tuple[str, ...] = (
    "repro.cli.make_strategy",
    "repro.cluster.gap.gap_statistic",
    "repro.cluster.kmeans.KMeans.__init__",
    "repro.core.pipeline.train_s3",
    "repro.core.temporal.fit_extended_type_model",
    "repro.core.typing.fit_user_clusters",
    "repro.experiments.fig7_gap.run",
    "repro.experiments.forecast.run",
    "repro.prototype.testbed.Testbed.add_station",
    "repro.prototype.testbed.run_feasibility_demo",
    "repro.wlan.strategies.RandomSelection.__init__",
)


def find_entry(kind: str, literal: str) -> Optional[StreamEntry]:
    """The registry entry an exact literal name matches, if any.

    Exact-name entries win over prefix families; among prefix matches
    the longest prefix wins (collision checks keep this unambiguous).
    """
    exact = [
        e
        for e in STREAM_REGISTRY
        if e.kind == kind and e.name is not None and e.name == literal
    ]
    if exact:
        return exact[0]
    prefixed = [
        e for e in STREAM_REGISTRY if e.kind == kind and e.matches(literal)
    ]
    if not prefixed:
        return None
    return max(prefixed, key=lambda e: len(e.prefix or ""))


def find_prefix_entry(kind: str, leading: str) -> Optional[StreamEntry]:
    """The prefix-family entry an f-string's leading literal matches."""
    matches = [
        e
        for e in STREAM_REGISTRY
        if e.kind == kind and e.matches_prefix(leading)
    ]
    if not matches:
        return None
    return max(matches, key=lambda e: len(e.prefix or ""))


def find_deriver(function: str, kind: str) -> Optional[DeriverEntry]:
    """The deriver entry for a resolved call target, if registered."""
    for entry in DERIVERS:
        if entry.function == function and entry.kind == kind:
            return entry
    return None
