"""mutable-default and bare-except: the classic footguns.

Neither is determinism-specific, but both have bitten reproduction
pipelines: a mutable default accumulates state across figure runs
(breaking run-to-run equality), and a bare ``except`` swallows the
``ValueError`` an engine-validation path raises, turning a loud parity
break into a silently wrong figure.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register

#: Constructor calls that produce a fresh mutable per call site.
_MUTABLE_CONSTRUCTORS = ("list", "dict", "set", "bytearray")


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register
class MutableDefault(Rule):
    """Flag mutable argument defaults."""

    id = "mutable-default"
    description = "no mutable argument defaults ([] / {} / set() / dict())"

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_default(default):
                    yield Finding(
                        path=module.display_path,
                        line=default.lineno,
                        column=default.col_offset,
                        rule=self.id,
                        message=(
                            f"mutable default argument in {node.name}() is "
                            "shared across calls"
                        ),
                        hint="default to None and construct inside the body",
                    )


@register
class BareExcept(Rule):
    """Flag ``except:`` clauses."""

    id = "bare-except"
    description = "no bare except: clauses (they swallow KeyboardInterrupt too)"

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset,
                    rule=self.id,
                    message="bare except swallows every exception",
                    hint="catch the narrowest exception type that can occur",
                )
