"""cache-invalidation: memoizing mutable classes need a generation stamp.

``core/social.py`` sets the pattern: ``SocialModel`` memoizes derived
structures (``_delta_cache``, the partner index) while ``record_events``
keeps mutating the underlying pair statistics, so every cached value is
stamped with ``self._generation`` and ``record_events`` bumps it.  A
memo without such a stamp in a class that also mutates state is a stale
read waiting to happen — the class of bug no test catches until the
online-learning path revisits a cached member set.

Heuristics (documented so authors can name things to match):

* a *cache attribute* is a ``self.*`` name containing ``cache`` or
  starting with ``_memo``/``_cached``;
* a *generation attribute* is a ``self.*`` name containing
  ``generation``, ``epoch`` or ending in ``_version``;
* a method *mutates* when it stores to any other ``self.*`` attribute
  (including item assignment) outside ``__init__``.

A class with a cache attribute and a mutating method must also assign a
generation attribute somewhere, or carry a suppression explaining why
its cache can never go stale.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register


def is_cache_name(name: str) -> bool:
    """Whether a ``self.`` attribute name denotes a memo store."""
    return "cache" in name or name.startswith(("_memo", "_cached"))


def is_generation_name(name: str) -> bool:
    """Whether a ``self.`` attribute name denotes an invalidation stamp."""
    return "generation" in name or "epoch" in name or name.endswith("_version")


def _stored_self_attrs(func: ast.AST) -> Set[str]:
    """Names of ``self.X`` attributes stored to anywhere in ``func``.

    Covers plain/annotated/augmented assignment and item assignment on
    the attribute (``self.X[...] = ...``).
    """
    stored: Set[str] = set()
    for node in ast.walk(func):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Starred)):
                target = target.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                stored.add(target.attr)
    return stored


@register
class CacheInvalidation(Rule):
    """Memoizing classes that mutate state must stamp a generation."""

    id = "cache-invalidation"
    description = (
        "a class with a *_cache/_memo* attribute and mutating methods "
        "must also maintain a generation/epoch counter"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: LintModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        cache_attrs: Set[str] = set()
        generation = False
        mutating: Set[Tuple[str, int]] = set()
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stored = _stored_self_attrs(item)
            cache_attrs |= {name for name in stored if is_cache_name(name)}
            generation = generation or any(is_generation_name(n) for n in stored)
            if item.name != "__init__" and any(
                not is_cache_name(name) and not is_generation_name(name)
                for name in stored
            ):
                mutating.add((item.name, item.lineno))
        if cache_attrs and mutating and not generation:
            methods = ", ".join(sorted(name for name, _ in mutating))
            yield Finding(
                path=module.display_path,
                line=cls.lineno,
                column=cls.col_offset,
                rule=self.id,
                message=(
                    f"class {cls.name} memoizes {sorted(cache_attrs)} but "
                    f"mutates state in {methods} without a generation counter"
                ),
                hint=(
                    "stamp cached values with a self._generation bumped by "
                    "every mutator (see repro.core.social.SocialModel)"
                ),
            )
