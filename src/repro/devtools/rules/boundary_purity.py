"""boundary-purity: code that crosses the process boundary stays pure.

Whatever a worker process executes must be a pure function of its
pickled task arguments: serial/process parity (and replayability under
retries) dies the moment worker-reachable code reads ambient state.
This whole-program rule discovers the **boundary entry set** — the
public functions of :mod:`repro.runtime.workers`, every ``runner``
passed to :func:`repro.runtime.resilience.run_pool_with_retries` /
``serial_with_retries``, and every ``fn`` wrapped by
:func:`repro.runtime.sweep.make_task` — closes it over the inferred
call graph (:mod:`repro.devtools.flow`), and bans in the closure:

* reads of ``os.environ`` / ``os.getenv`` (spawned workers inherit a
  different environment than the parent you debugged);
* ``global`` statements and mutation of module-level mutable
  containers (state that silently diverges between serial and process
  engines), except in :data:`SANCTIONED_STATE_MODULES`;
* hidden-global RNG: stdlib ``random`` calls, legacy ``np.random.*``
  global-state draws, and unseeded ``default_rng()``.

Findings carry the call chain from the boundary entry, so a violation
three calls deep is still attributable.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.flow import (
    MUTATOR_METHODS,
    FlowAnalysis,
    FunctionInfo,
    universe,
)
from repro.devtools.project import Project
from repro.devtools.registry import Rule, register
from repro.devtools.rules.rng import CONSTRUCTORS, _numpy_random_member

#: The module whose public functions execute inside worker processes.
WORKERS_MODULE = "repro.runtime.workers"

#: Call targets whose ``runner`` argument (2nd positional / keyword)
#: becomes a boundary entry: the retry harness invokes it per task.
RUNNER_SINKS: FrozenSet[str] = frozenset(
    {
        "repro.runtime.resilience.run_pool_with_retries",
        "repro.runtime.resilience.serial_with_retries",
    }
)

#: Call targets whose ``fn`` argument (2nd positional / keyword) becomes
#: a boundary entry: the task callable shipped to workers.
TASK_SINKS: FrozenSet[str] = frozenset({"repro.runtime.sweep.make_task"})

#: Modules whose module-level state is *deliberately* per-process and
#: reset by ``init_worker`` (perf counters, tracer, the wall-clock
#: funnel, the workload memo).  State checks (mutation / ``global``)
#: are waived there; environment and RNG checks still apply.
SANCTIONED_STATE_MODULES: FrozenSet[str] = frozenset(
    {
        "repro.perf",
        "repro.obs.tracer",
        "repro.obs._clock",
        "repro.experiments.workload",
    }
)

#: ``os`` members that read or write the process environment.
_ENV_ATTRS = frozenset({"os.environ", "os.environb"})
_ENV_CALLS = frozenset({"os.getenv", "os.putenv", "os.unsetenv"})


@register
class BoundaryPurity(Rule):
    """Worker-reachable code must not touch ambient process state."""

    id = "boundary-purity"
    description = (
        "functions reachable from the worker boundary (runtime.workers "
        "entry points, retry runners, make_task callables) must not read "
        "os.environ, mutate module state, or draw hidden-global RNG"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        flow = universe(project)
        linted = {m.module for m in project.modules}
        chains = flow.reachable(self._entries(flow))
        for qualname in sorted(chains):
            info = flow.functions[qualname]
            if info.module not in linted:
                continue
            module = flow.modules.get(info.module)
            if module is None:
                continue
            chain = chains[qualname]
            for node, message, hint in self._violations(flow, info):
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=getattr(node, "col_offset", 0),
                    rule=self.id,
                    message=f"{message} [via {_render_chain(chain)}]",
                    hint=hint,
                )

    # ------------------------------------------------------ entry discovery

    def _entries(self, flow: FlowAnalysis) -> List[str]:
        entries: Set[str] = set()
        for info in flow.module_functions(WORKERS_MODULE):
            if info.class_qualname is None and not info.def_node.name.startswith(
                "_"
            ):
                entries.add(info.qualname)
        sinks = RUNNER_SINKS | TASK_SINKS
        for info in flow.functions.values():
            env = flow.function_env(info.qualname)
            for node in ast.walk(info.def_node):
                if not isinstance(node, ast.Call):
                    continue
                target = flow.resolve_call_target(info.module, node.func, env)
                if target not in sinks:
                    continue
                keyword = "runner" if target in RUNNER_SINKS else "fn"
                callable_arg = self._second_arg(node, keyword)
                if callable_arg is None:
                    continue
                resolved = self._resolve_callable(
                    flow, info.module, callable_arg
                )
                if resolved is not None:
                    entries.add(resolved)
        return sorted(entries)

    @staticmethod
    def _second_arg(node: ast.Call, keyword: str) -> Optional[ast.expr]:
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        if len(node.args) >= 2:
            return node.args[1]
        return None

    @staticmethod
    def _resolve_callable(
        flow: FlowAnalysis, module_name: str, node: ast.expr
    ) -> Optional[str]:
        dotted = flow.canonical(module_name, node)
        if dotted is None:
            return None
        target = flow.lookup(dotted)
        if target is not None and target in flow.functions:
            return target
        return None

    # ----------------------------------------------------------- violations

    def _violations(
        self, flow: FlowAnalysis, info: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str, str]]:
        module_name = info.module
        imported_roots = self._imported_roots(flow, module_name)
        check_state = module_name not in SANCTIONED_STATE_MODULES
        mutables = (
            flow.module_mutables(module_name) - _local_names(info.def_node)
            if check_state
            else frozenset()
        )
        for node in ast.walk(info.def_node):
            if isinstance(node, ast.Global) and check_state:
                yield (
                    node,
                    f"`global {', '.join(node.names)}` in worker-reachable "
                    f"{info.qualname}",
                    "pass state through task arguments and return values",
                )
            elif isinstance(node, ast.Attribute):
                dotted = flow.canonical(module_name, node)
                if (
                    dotted in _ENV_ATTRS
                    and "os" in imported_roots
                    and not isinstance(node.ctx, ast.Store)
                ):
                    yield (
                        node,
                        f"{dotted} read in worker-reachable {info.qualname}",
                        "workers must not read the inherited environment; "
                        "pass configuration through the task payload",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    flow, info, node, imported_roots, mutables
                )
            elif check_state and mutables:
                target = _mutated_subscript(node)
                if target is not None and target in mutables:
                    yield (
                        node,
                        f"module-level container {target!r} mutated in "
                        f"worker-reachable {info.qualname}",
                        "per-process caches belong in "
                        "SANCTIONED_STATE_MODULES resets, not ad-hoc globals",
                    )

    def _check_call(
        self,
        flow: FlowAnalysis,
        info: FunctionInfo,
        node: ast.Call,
        imported_roots: FrozenSet[str],
        mutables: FrozenSet[str],
    ) -> Iterator[Tuple[ast.AST, str, str]]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in mutables
        ):
            yield (
                node,
                f"module-level container {func.value.id!r} mutated via "
                f".{func.attr}() in worker-reachable {info.qualname}",
                "per-process caches belong in SANCTIONED_STATE_MODULES "
                "resets, not ad-hoc globals",
            )
        dotted = flow.canonical(info.module, func)
        if dotted is None:
            return
        if dotted in _ENV_CALLS and "os" in imported_roots:
            yield (
                node,
                f"{dotted}() in worker-reachable {info.qualname}",
                "workers must not read the inherited environment; pass "
                "configuration through the task payload",
            )
            return
        if dotted.startswith("random.") and "random" in imported_roots:
            yield (
                node,
                f"stdlib {dotted}() (hidden global state) in "
                f"worker-reachable {info.qualname}",
                "draw from a seeded Generator threaded through the task",
            )
            return
        member = _numpy_random_member(dotted)
        if member is None:
            return
        if member not in CONSTRUCTORS:
            yield (
                node,
                f"legacy np.random.{member}() (hidden global state) in "
                f"worker-reachable {info.qualname}",
                "draw from a seeded Generator threaded through the task",
            )
        elif member == "default_rng" and not node.args and not node.keywords:
            yield (
                node,
                f"unseeded default_rng() in worker-reachable {info.qualname}",
                "seed it from the task payload",
            )

    @staticmethod
    def _imported_roots(
        flow: FlowAnalysis, module_name: str
    ) -> FrozenSet[str]:
        return frozenset(
            edge.imported.split(".", 1)[0]
            for edge in flow.import_edges
            if edge.importer == module_name
        )


def _mutated_subscript(node: ast.AST) -> Optional[str]:
    """Name of a module-level container written through a subscript."""
    target: Optional[ast.expr] = None
    if isinstance(node, ast.Assign):
        for candidate in node.targets:
            if isinstance(candidate, ast.Subscript):
                target = candidate
                break
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node.target, ast.Subscript):
            target = node.target
    elif isinstance(node, ast.Delete):
        for candidate in node.targets:
            if isinstance(candidate, ast.Subscript):
                target = candidate
                break
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
    ):
        return target.value.id
    return None


def _local_names(def_node: ast.AST) -> Set[str]:
    """Names bound locally in ``def_node`` (they shadow module globals)."""
    names: Set[str] = set()
    assert isinstance(def_node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = def_node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for node in ast.walk(def_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _collect_targets(target, names)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            _collect_targets(node.target, names)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _collect_targets(node.target, names)
        elif isinstance(node, ast.comprehension):
            _collect_targets(node.target, names)
        elif isinstance(node, ast.NamedExpr):
            _collect_targets(node.target, names)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    _collect_targets(item.optional_vars, names)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not def_node
        ):
            names.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.difference_update(node.names)
    return names


def _collect_targets(target: ast.expr, names: Set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _collect_targets(element, names)
    elif isinstance(target, ast.Starred):
        _collect_targets(target.value, names)


def _render_chain(chain: Tuple[str, ...]) -> str:
    shown = list(chain)
    if len(shown) > 4:
        shown = [shown[0], "...", shown[-2], shown[-1]]
    return " -> ".join(shown)
