"""rng-stream-registry: the stream namespace is declared, owned, unique.

Stream names are seeds: ``RandomStreams`` derives a generator from
``crc32(name)``, so two modules deriving the same name share a stream
and their draws interleave — a collision no per-file rule can see.
This whole-program rule checks every ``streams.get(...)`` /
``streams.child(...)`` call site (receivers typed via
:mod:`repro.devtools.flow`) against
:mod:`repro.devtools.stream_registry`, plus the seeded
``default_rng(...)`` fallback sites, in **both directions**:

* a derivation whose name is not a registered literal / f-string prefix
  / deriver function fails lint;
* a derivation outside the registered owner module fails lint (global
  collision-freedom follows: names have unique owners);
* a ``default_rng`` call outside :data:`FALLBACK_GENERATORS` fails lint;
* and — the reverse direction — a registry entry, deriver, or fallback
  qualname with no surviving call site (or that no longer resolves)
  fails lint, so the registry cannot drift from the code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.flow import FlowAnalysis, StreamDerivation, universe
from repro.devtools.project import LintModule, Project
from repro.devtools.registry import Rule, register
from repro.devtools.stream_registry import (
    DERIVERS,
    FALLBACK_GENERATORS,
    STREAM_REGISTRY,
    StreamEntry,
    find_deriver,
    find_entry,
    find_prefix_entry,
)

#: Where findings against the registry itself are anchored.
REGISTRY_PATH = "src/repro/devtools/stream_registry.py"

#: The module that owns derivation internals (the factory itself).
EXEMPT_MODULE = "repro.sim.rng"

#: Canonical names of the sanctioned generator constructor.
_DEFAULT_RNG = ("numpy.random.default_rng", "np.random.default_rng")


def _in_scope(module_name: str) -> bool:
    return module_name.startswith("repro.") and module_name != EXEMPT_MODULE


def _fstring_leading(node: ast.JoinedStr) -> str:
    """The literal prefix of an f-string, up to the first placeholder."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            break
    return "".join(parts)


@register
class RngStreamRegistry(Rule):
    """Every stream derivation matches one registered, owned entry."""

    id = "rng-stream-registry"
    description = (
        "RandomStreams.get/child names and default_rng fallback sites "
        "must match repro.devtools.stream_registry, which is checked "
        "against call sites in both directions"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        flow = universe(project)
        yield from self._check_registry_consistency(flow)
        linted = {m.module for m in project.modules}
        used_entries: Set[Tuple[str, ...]] = set()
        used_derivers: Set[str] = set()
        fallback_hits: Set[str] = set()
        for module_name in sorted(flow.modules):
            if not _in_scope(module_name):
                continue
            module = flow.modules[module_name]
            report = module_name in linted
            for derivation in flow.stream_derivations(module):
                finding, entry, deriver = self._classify(
                    flow, module, derivation
                )
                if entry is not None:
                    used_entries.add(self._entry_key(entry))
                if deriver is not None:
                    used_derivers.add(deriver)
                if finding is not None and report:
                    yield finding
            for finding, hit in self._default_rng_sites(flow, module):
                if hit is not None:
                    fallback_hits.add(hit)
                if finding is not None and report:
                    yield finding
        # Reverse direction: the registry must not outlive the code.
        for entry in STREAM_REGISTRY:
            if self._entry_key(entry) not in used_entries:
                yield self._registry_finding(
                    f"entry {entry.label} (owner {entry.owner}) matches no "
                    "derivation call site"
                )
        for deriver in DERIVERS:
            if flow.lookup(deriver.function) not in flow.functions:
                yield self._registry_finding(
                    f"deriver {deriver.function} does not resolve under src/"
                )
            elif deriver.function not in used_derivers:
                yield self._registry_finding(
                    f"deriver {deriver.function} is never passed to a "
                    f"{deriver.kind}() derivation"
                )
        for qualname in FALLBACK_GENERATORS:
            if flow.lookup(qualname) is None:
                yield self._registry_finding(
                    f"fallback generator {qualname} does not resolve under src/"
                )
            elif qualname not in fallback_hits:
                yield self._registry_finding(
                    f"fallback generator {qualname} no longer calls "
                    "default_rng()"
                )

    # ------------------------------------------------------- registry shape

    def _check_registry_consistency(
        self, flow: FlowAnalysis
    ) -> Iterator[Finding]:
        families: Dict[str, List[Tuple[Optional[str], Optional[str], str]]] = {}
        for entry in STREAM_REGISTRY:
            if entry.kind not in ("get", "child") or (
                (entry.name is None) == (entry.prefix is None)
            ):
                yield self._registry_finding(
                    f"malformed entry {entry!r}: kind must be get/child and "
                    "exactly one of name/prefix must be set"
                )
                continue
            families.setdefault(entry.kind, []).append(
                (entry.name, entry.prefix, entry.label)
            )
        for deriver in DERIVERS:
            families.setdefault(deriver.kind, []).append(
                (None, deriver.prefix, f"deriver {deriver.function}")
            )
        for kind, members in sorted(families.items()):
            for i, (name_a, prefix_a, label_a) in enumerate(members):
                for name_b, prefix_b, label_b in members[i + 1 :]:
                    if self._collide(name_a, prefix_a, name_b, prefix_b):
                        yield self._registry_finding(
                            f"{kind} stream namespace collision: {label_a} "
                            f"overlaps {label_b}"
                        )

    @staticmethod
    def _collide(
        name_a: Optional[str],
        prefix_a: Optional[str],
        name_b: Optional[str],
        prefix_b: Optional[str],
    ) -> bool:
        if name_a is not None and name_b is not None:
            return name_a == name_b
        if prefix_a is not None and prefix_b is not None:
            return prefix_a.startswith(prefix_b) or prefix_b.startswith(
                prefix_a
            )
        name = name_a if name_a is not None else name_b
        prefix = prefix_a if prefix_a is not None else prefix_b
        assert name is not None and prefix is not None
        return name.startswith(prefix)

    @staticmethod
    def _entry_key(entry: StreamEntry) -> Tuple[str, ...]:
        return (entry.kind, entry.name or "", entry.prefix or "")

    # ----------------------------------------------------------- call sites

    def _classify(
        self,
        flow: FlowAnalysis,
        module: LintModule,
        derivation: StreamDerivation,
    ) -> Tuple[Optional[Finding], Optional[StreamEntry], Optional[str]]:
        """(finding-or-None, matched entry, matched deriver qualname)."""
        kind = derivation.kind
        arg = derivation.name_arg
        env = (
            flow.function_env(derivation.function)
            if derivation.function is not None
            else {}
        )
        if isinstance(arg, ast.Name):
            literal = self._local_constant(flow, derivation, arg.id)
            if literal is not None:
                arg = ast.copy_location(ast.Constant(value=literal), arg)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            entry = find_entry(kind, arg.value)
            if entry is None:
                return (
                    self._finding(
                        module,
                        derivation.call,
                        f"stream name {arg.value!r} ({kind}) is not in the "
                        "stream registry",
                        "register a StreamEntry in "
                        "repro/devtools/stream_registry.py",
                    ),
                    None,
                    None,
                )
            if entry.owner != module.module:
                return (
                    self._finding(
                        module,
                        derivation.call,
                        f"stream {entry.label} is owned by {entry.owner}; "
                        f"deriving it from {module.module} collides",
                        "derive a module-specific name and register it",
                    ),
                    entry,
                    None,
                )
            return None, entry, None
        if isinstance(arg, ast.JoinedStr):
            leading = _fstring_leading(arg)
            entry = find_prefix_entry(kind, leading) if leading else None
            if entry is None:
                return (
                    self._finding(
                        module,
                        derivation.call,
                        f"f-string stream name with prefix {leading!r} "
                        f"({kind}) matches no registered prefix family",
                        "register a prefix StreamEntry in "
                        "repro/devtools/stream_registry.py",
                    ),
                    None,
                    None,
                )
            if entry.owner != module.module:
                return (
                    self._finding(
                        module,
                        derivation.call,
                        f"stream family {entry.label} is owned by "
                        f"{entry.owner}; deriving it from {module.module} "
                        "collides",
                        "derive a module-specific prefix and register it",
                    ),
                    entry,
                    None,
                )
            return None, entry, None
        if isinstance(arg, ast.Call):
            target = flow.resolve_call_target(module.module, arg.func, env)
            if target is not None and find_deriver(target, kind) is not None:
                return None, None, target
            shown = target or ast.unparse(arg.func)
            return (
                self._finding(
                    module,
                    derivation.call,
                    f"stream name computed by {shown} ({kind}) which is not "
                    "a registered deriver",
                    "register a DeriverEntry in "
                    "repro/devtools/stream_registry.py",
                ),
                None,
                None,
            )
        return (
            self._finding(
                module,
                derivation.call,
                f"stream name for {kind}() is not a string literal, "
                "registered prefix f-string, or registered deriver",
                "use a literal name and register it in "
                "repro/devtools/stream_registry.py",
            ),
            None,
            None,
        )

    def _local_constant(
        self, flow: FlowAnalysis, derivation: StreamDerivation, name: str
    ) -> Optional[str]:
        """The single `name = "literal"` binding in scope, if unambiguous."""
        if derivation.function is None:
            return None
        info = flow.functions.get(derivation.function)
        if info is None:
            return None
        values: List[str] = []
        for node in ast.walk(info.def_node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, str
                ):
                    values.append(node.value.value)
                else:
                    return None  # rebound to something non-literal
        return values[0] if len(values) == 1 else None

    # -------------------------------------------------------- default_rng

    def _default_rng_sites(
        self, flow: FlowAnalysis, module: LintModule
    ) -> Iterator[Tuple[Optional[Finding], Optional[str]]]:
        indexed = {
            id(info.node)
            for info in flow.functions.values()
            if info.module == module.module
        }
        for info in flow.module_functions(module.module):
            for node in ast.walk(info.def_node):
                site = self._default_rng_call(flow, module, node)
                if site is None:
                    continue
                if info.qualname in FALLBACK_GENERATORS:
                    yield None, info.qualname
                else:
                    yield self._fallback_finding(module, site, info.qualname), None
        for node in flow.module_level_nodes(module, indexed):
            site = self._default_rng_call(flow, module, node)
            if site is None:
                continue
            if module.module in FALLBACK_GENERATORS:
                yield None, module.module
            else:
                yield self._fallback_finding(module, site, module.module), None

    def _default_rng_call(
        self, flow: FlowAnalysis, module: LintModule, node: ast.AST
    ) -> Optional[ast.Call]:
        if not isinstance(node, ast.Call):
            return None
        dotted = flow.canonical(module.module, node.func)
        if dotted in _DEFAULT_RNG:
            return node
        return None

    def _fallback_finding(
        self, module: LintModule, node: ast.Call, where: str
    ) -> Finding:
        return self._finding(
            module,
            node,
            f"default_rng() in {where}, which is not a registered fallback "
            "generator",
            "thread a stream from RandomStreams, or add the qualname to "
            "FALLBACK_GENERATORS in repro/devtools/stream_registry.py",
        )

    # ------------------------------------------------------------- helpers

    def _finding(
        self, module: LintModule, node: ast.AST, message: str, hint: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=node.lineno,
            column=node.col_offset,
            rule=self.id,
            message=message,
            hint=hint,
        )

    def _registry_finding(self, message: str) -> Finding:
        return Finding(
            path=REGISTRY_PATH,
            line=1,
            column=0,
            rule=self.id,
            message=message,
            hint="update repro/devtools/stream_registry.py",
        )
