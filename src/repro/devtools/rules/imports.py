"""Import-aware name resolution shared by the AST rules.

A rule that bans ``time.time()`` must also catch ``from time import
time`` and ``import time as clock``.  :class:`ImportMap` records every
import binding in a module so call sites can be resolved back to their
canonical ``module.attribute`` form before matching.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple


class ImportMap:
    """Local name -> imported dotted name, for one module."""

    def __init__(self, tree: ast.Module) -> None:
        self._names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, local: str) -> Optional[str]:
        """The imported dotted name bound to ``local``, if any."""
        return self._names.get(local)


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Flatten ``a.b.c`` attribute chains to ``("a", "b", "c")``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def canonical_call(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """The fully-qualified dotted name a call/attribute refers to.

    ``clock.time`` with ``import time as clock`` -> ``"time.time"``;
    ``now()`` with ``from datetime import datetime as now`` ->
    ``"datetime.datetime"``.  Returns None for non-name expressions
    (e.g. method calls on computed objects).
    """
    parts = dotted_name(node)
    if parts is None:
        return None
    head, rest = parts[0], parts[1:]
    resolved = imports.resolve(head)
    if resolved is not None:
        head = resolved
    return ".".join((head,) + rest)
