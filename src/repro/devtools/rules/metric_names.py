"""metric-name-registry: every metric name is declared, owned, kind-true.

Metric names are merge keys: the cross-worker fold in
:meth:`repro.obs.metrics.MetricsRegistry.merge` and the journal's byte
contract both key series by name, so two modules emitting the same name
silently interleave their windows — a collision no per-file rule can
see.  This whole-program rule checks every instrumentation site against
:mod:`repro.obs.metric_registry` in **both directions**:

* a call to ``repro.obs.metrics.inc`` / ``set_gauge`` / ``observe`` /
  ``register_memory_source`` (resolved through the import graph), or a
  ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` factory
  call, whose name is not a registered literal fails lint;
* a site naming a metric outside its registered ``owner`` module fails
  lint (global collision-freedom follows: names have unique owners);
* a site whose call form contradicts the registered kind fails lint —
  ``inc`` records counters, ``set_gauge`` gauges, ``observe``
  histograms, and ``register_memory_source`` needs a **host**-scoped
  gauge (its samples live under the strippable ``"wall"`` key);
* and — the reverse direction — a :class:`MetricSpec` with no surviving
  instrumentation site fails lint, so the registry cannot drift from
  the code.

:mod:`repro.obs.metrics` itself is exempt from findings (its factory
methods forward variable names by design) but is still scanned, so the
``mem.peak_rss_bytes`` registration it hosts counts as a call site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.flow import FlowAnalysis, universe
from repro.devtools.project import LintModule, Project
from repro.devtools.registry import Rule, register
from repro.obs.metric_registry import SPECS_BY_NAME

#: Where findings against the registry itself are anchored.
REGISTRY_PATH = "src/repro/obs/metric_registry.py"

#: The module that owns the registry consumers (the factory itself).
EXEMPT_MODULE = "repro.obs.metrics"

#: Module-level recording functions -> the kind their call form implies.
MODULE_FUNCS: Dict[str, str] = {
    "repro.obs.metrics.inc": "counter",
    "repro.obs.metrics.set_gauge": "gauge",
    "repro.obs.metrics.observe": "histogram",
    "repro.obs.metrics.register_memory_source": "gauge",
}

#: Registry factory methods -> the kind they create.
FACTORY_METHODS: Dict[str, str] = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

#: The class whose factory methods the heuristic belongs to.
_REGISTRY_CLASS = "repro.obs.metrics.MetricsRegistry"


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    """The ``name`` argument (first positional or keyword) of a call."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


@register
class MetricNameRegistry(Rule):
    """Every metric instrumentation site matches one registered spec."""

    id = "metric-name-registry"
    description = (
        "metric names recorded via repro.obs.metrics must match a "
        "MetricSpec in repro.obs.metric_registry — registered, owned by "
        "the recording module, kind-consistent, and checked against "
        "call sites in both directions"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        flow = universe(project)
        linted = {m.module for m in project.modules}
        used: Set[str] = set()
        for module_name in sorted(flow.modules):
            if not module_name.startswith("repro."):
                continue
            module = flow.modules[module_name]
            report = module_name in linted and module_name != EXEMPT_MODULE
            for finding, spec_name in self._sites(flow, module):
                if spec_name is not None:
                    used.add(spec_name)
                if finding is not None and report:
                    yield finding
        # Reverse direction: the registry must not outlive the code.
        for name in sorted(SPECS_BY_NAME):
            if name not in used:
                spec = SPECS_BY_NAME[name]
                yield Finding(
                    path=REGISTRY_PATH,
                    line=1,
                    column=0,
                    rule=self.id,
                    message=(
                        f"metric spec {name!r} (owner {spec.owner}) matches "
                        "no instrumentation call site"
                    ),
                    hint="remove the MetricSpec or restore the recording site",
                )

    # ----------------------------------------------------------- call sites

    def _sites(
        self, flow: FlowAnalysis, module: LintModule
    ) -> Iterator[Tuple[Optional[Finding], Optional[str]]]:
        indexed = {
            id(info.node)
            for info in flow.functions.values()
            if info.module == module.module
        }
        for info in flow.module_functions(module.module):
            env = flow.function_env(info.qualname)
            for node in ast.walk(info.def_node):
                yield from self._classify(flow, module, node, env)
        for node in flow.module_level_nodes(module, indexed):
            yield from self._classify(flow, module, node, {})

    def _classify(
        self,
        flow: FlowAnalysis,
        module: LintModule,
        node: ast.AST,
        env: Dict[str, str],
    ) -> Iterator[Tuple[Optional[Finding], Optional[str]]]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        # Factory methods: `.counter/.gauge/.histogram(<name>)`.  A
        # receiver typed to anything other than MetricsRegistry is not a
        # metric site; an untyped receiver engages the heuristic only
        # for string-literal names (`table.histogram(bins)` is spared).
        if isinstance(func, ast.Attribute) and func.attr in FACTORY_METHODS:
            receiver = flow.expr_type(module.module, func.value, env)
            if receiver is not None and receiver != _REGISTRY_CLASS:
                return
            arg = _name_argument(node)
            literal = self._literal(arg)
            if literal is not None:
                yield from self._check_name(
                    module, node, literal, FACTORY_METHODS[func.attr],
                    f".{func.attr}()",
                )
            elif receiver == _REGISTRY_CLASS:
                yield (
                    self._finding(
                        module,
                        node,
                        f"metric name for .{func.attr}() is not a string "
                        "literal",
                        "name the series with a literal registered in "
                        "repro/obs/metric_registry.py",
                    ),
                    None,
                )
            return
        # Module-level recording functions, resolved through imports.
        target = flow.resolve_call_target(module.module, func, env)
        if target not in MODULE_FUNCS:
            return
        arg = _name_argument(node)
        literal = self._literal(arg)
        if literal is None:
            yield (
                self._finding(
                    module,
                    node,
                    f"metric name passed to {target} is not a string literal",
                    "name the series with a literal registered in "
                    "repro/obs/metric_registry.py",
                ),
                None,
            )
            return
        assert target is not None
        yield from self._check_name(
            module, node, literal, MODULE_FUNCS[target], f"{target}()"
        )
        if target.endswith(".register_memory_source"):
            spec = SPECS_BY_NAME.get(literal)
            if spec is not None and spec.scope != "host":
                yield (
                    self._finding(
                        module,
                        node,
                        f"register_memory_source needs a host-scoped gauge; "
                        f"{literal!r} is {spec.scope}-scoped",
                        "memory samples are wall-derived and must live "
                        'under the strippable "wall" key',
                    ),
                    literal,
                )

    def _check_name(
        self,
        module: LintModule,
        node: ast.Call,
        name: str,
        expected_kind: str,
        label: str,
    ) -> Iterator[Tuple[Optional[Finding], Optional[str]]]:
        spec = SPECS_BY_NAME.get(name)
        if spec is None:
            yield (
                self._finding(
                    module,
                    node,
                    f"metric name {name!r} is not in the metric registry",
                    "add a MetricSpec to repro/obs/metric_registry.py",
                ),
                None,
            )
            return
        if spec.kind != expected_kind:
            yield (
                self._finding(
                    module,
                    node,
                    f"metric {name!r} is declared {spec.kind} but {label} "
                    f"records a {expected_kind}",
                    "match the call form to the registered kind",
                ),
                name,
            )
            return
        if spec.owner != module.module:
            yield (
                self._finding(
                    module,
                    node,
                    f"metric {name!r} is owned by {spec.owner}; recording "
                    f"it from {module.module} collides",
                    "record a module-specific name and register it",
                ),
                name,
            )
            return
        yield None, name

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _literal(arg: Optional[ast.expr]) -> Optional[str]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None

    def _finding(
        self, module: LintModule, node: ast.AST, message: str, hint: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=node.lineno,
            column=node.col_offset,
            rule=self.id,
            message=message,
            hint=hint,
        )
