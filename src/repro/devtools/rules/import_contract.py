"""import-contract: the layering table, private modules, and cycles.

The package layering that keeps the reproduction auditable is implicit
in the code; this rule makes it an explicit, machine-checked table.
Three invariants over the whole-program import graph
(:mod:`repro.devtools.flow`):

* **layering** — each ``repro.*`` package may import only the packages
  listed for it in :data:`ALLOWED_IMPORTS` (plus itself and non-repro
  modules).  The generative core (``sim``/``trace``/``graph``) must
  never depend on the execution layers (``wlan``/``runtime``/
  ``prototype``); module-level waivers live in :data:`EXCEPTIONS`;
* **private modules** — a module with a leading-underscore component
  (e.g. ``repro.obs._clock``) may be imported only from inside its
  parent package: the wall-clock funnel stays a funnel;
* **cycles** — no cycle among *top-level* imports (``TYPE_CHECKING``
  blocks excluded).  Function-body imports are the sanctioned lazy
  cycle-breaker (``runtime`` <-> ``experiments``) and are exempt from
  the cycle check, though still subject to layering.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.flow import FlowAnalysis, ImportEdge, universe
from repro.devtools.project import Project
from repro.devtools.registry import Rule, register

#: package (the component after ``repro.``) -> packages it may import.
#: Importing within your own package and importing non-repro modules is
#: always allowed; everything else must be listed here.
ALLOWED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "perf": frozenset(),
    "graph": frozenset(),
    "cluster": frozenset(),
    "obs": frozenset({"perf"}),
    "sim": frozenset({"obs", "perf"}),
    "trace": frozenset({"obs", "perf", "sim"}),
    "faults": frozenset({"obs", "perf", "sim", "trace"}),
    "analysis": frozenset({"obs", "perf", "sim", "trace"}),
    "core": frozenset(
        {"analysis", "cluster", "graph", "obs", "perf", "sim", "trace"}
    ),
    "wlan": frozenset(
        {"analysis", "core", "faults", "obs", "perf", "sim", "trace"}
    ),
    "service": frozenset(
        # "faults"/"runtime": the crash-safe supervisor consumes fault
        # plans and stores snapshots through the runtime's RunDirectory
        # conventions (runtime does not import service — no cycle).
        {"analysis", "core", "faults", "obs", "perf", "runtime", "sim", "wlan"}
    ),
    "runtime": frozenset(
        {"experiments", "faults", "obs", "perf", "sim", "trace", "wlan"}
    ),
    "experiments": frozenset(
        {
            "analysis",
            "cluster",
            "core",
            "faults",
            "graph",
            "obs",
            "perf",
            "runtime",
            "sim",
            "trace",
            "wlan",
        }
    ),
    "prototype": frozenset(
        {"analysis", "core", "faults", "obs", "perf", "sim", "trace", "wlan"}
    ),
    "cli": frozenset(
        {
            "analysis",
            "core",
            "experiments",
            "obs",
            "perf",
            "sim",
            "trace",
            "wlan",
        }
    ),
    "devtools": frozenset({"obs"}),
    "__main__": frozenset({"cli"}),
}

#: Module-level waivers: (importer module, imported module).  Each one
#: is a deliberate, documented hole in the layering table.
EXCEPTIONS: FrozenSet[Tuple[str, str]] = frozenset(
    {
        # The online-learning pipeline wraps a wlan strategy; the waiver
        # keeps the rest of core honest about not knowing the simulator.
        ("repro.core.online", "repro.wlan.strategies"),
    }
)


def _package_of(module_name: str) -> str:
    """The layer component after ``repro.`` (``""`` for the root)."""
    parts = module_name.split(".")
    return parts[1] if len(parts) > 1 else ""


def _private_parent(module_name: str) -> str:
    """Parent package of the first private component, or ``""``."""
    parts = module_name.split(".")
    for index, part in enumerate(parts[1:], start=1):
        if part.startswith("_") and not (
            part.startswith("__") and part.endswith("__")
        ):
            return ".".join(parts[:index])
    return ""


@register
class ImportContract(Rule):
    """Keep the package layering explicit and cycle-free."""

    id = "import-contract"
    description = (
        "repro.* imports must follow the layering table in "
        "repro/devtools/rules/import_contract.py; private modules stay "
        "package-internal; no top-level import cycles"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        flow = universe(project)
        linted = {m.module for m in project.modules}
        for edge in flow.import_edges:
            if edge.importer not in linted:
                continue
            yield from self._check_edge(flow, edge)
        yield from self._check_cycles(flow)

    # -------------------------------------------------------------- layering

    def _check_edge(
        self, flow: FlowAnalysis, edge: ImportEdge
    ) -> Iterator[Finding]:
        importer, imported = edge.importer, edge.imported
        if not importer.startswith("repro.") or not imported.startswith(
            "repro"
        ):
            return
        if imported == "repro" or importer == imported:
            return
        if (importer, imported) in EXCEPTIONS:
            return
        src_pkg = _package_of(importer)
        dst_pkg = _package_of(imported)
        module = flow.modules.get(importer)
        if module is None:
            return
        if src_pkg != dst_pkg:
            allowed = ALLOWED_IMPORTS.get(src_pkg)
            if allowed is not None and dst_pkg not in allowed:
                yield Finding(
                    path=module.display_path,
                    line=edge.lineno,
                    column=edge.column,
                    rule=self.id,
                    message=(
                        f"layer {src_pkg!r} may not import {imported} "
                        f"(layer {dst_pkg!r} is not in its contract)"
                    ),
                    hint=(
                        "invert the dependency, or extend ALLOWED_IMPORTS/"
                        "EXCEPTIONS in repro/devtools/rules/import_contract.py"
                    ),
                )
        parent = _private_parent(imported)
        if parent and not (
            importer == parent or importer.startswith(parent + ".")
        ):
            yield Finding(
                path=module.display_path,
                line=edge.lineno,
                column=edge.column,
                rule=self.id,
                message=(
                    f"{imported} is private to {parent}; only {parent}.* "
                    "may import it"
                ),
                hint=f"go through {parent}'s public API instead",
            )

    # ---------------------------------------------------------------- cycles

    def _check_cycles(self, flow: FlowAnalysis) -> Iterator[Finding]:
        graph: Dict[str, Set[str]] = {}
        for edge in flow.import_edges:
            if not edge.top_level or edge.type_only:
                continue
            if not edge.importer.startswith("repro"):
                continue
            if edge.imported not in flow.modules:
                continue
            if edge.imported == edge.importer:
                continue
            graph.setdefault(edge.importer, set()).add(edge.imported)
        for cycle in _strongly_connected(graph):
            anchor = flow.modules.get(cycle[0])
            yield Finding(
                path=(
                    anchor.display_path
                    if anchor is not None
                    else "src/repro/devtools/rules/import_contract.py"
                ),
                line=1,
                column=0,
                rule=self.id,
                message=(
                    "top-level import cycle: " + " -> ".join(cycle + [cycle[0]])
                ),
                hint=(
                    "break the cycle with a function-body (lazy) import on "
                    "one edge"
                ),
            )


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """SCCs of size > 1, each sorted, in deterministic order (Tarjan)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def visit(node: str) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for successor in sorted(graph.get(node, ())):
            if successor not in index:
                visit(successor)
                lowlink[node] = min(lowlink[node], lowlink[successor])
            elif successor in on_stack:
                lowlink[node] = min(lowlink[node], index[successor])
        if lowlink[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                cycles.append(sorted(component))

    # Iterative depth is fine here: the graph is ~100 nodes and visit
    # recursion depth is bounded by the longest import chain.
    for node in sorted(graph):
        if node not in index:
            visit(node)
    return sorted(cycles)
