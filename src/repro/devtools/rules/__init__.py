"""The repo-specific rule suite.

Importing this package registers every rule (each module applies the
:func:`repro.devtools.registry.register` decorator at import time):

================== ====================================================
rule id            invariant
================== ====================================================
no-wallclock       no wall-clock reads outside ``repro.perf`` /
                   ``repro.prototype`` — replay must not observe real
                   time
no-unseeded-rng    no ``random`` module, no legacy ``np.random.*``
                   global state, no unseeded ``default_rng()`` — all
                   randomness flows through seeded ``Generator``
                   objects (:mod:`repro.sim.rng`)
engine-parity      every public ``engine=`` dispatcher is registered in
                   :mod:`repro.devtools.parity_registry` with live
                   reference/fast impls and equivalence tests
ordered-iteration  no iteration over set-valued expressions or
                   ``.keys()`` in ``analysis``/``core``/``wlan`` —
                   event lists, pair counts and RNG draws must not
                   depend on hash order
cache-invalidation memoizing classes that also mutate state must carry
                   a generation counter (``core/social.py`` pattern)
mutable-default    no mutable argument defaults
bare-except        no ``except:`` clauses
fork-safe-rng      code under ``repro.runtime`` may not call
                   ``RandomStreams.get()`` on a root-seeded factory —
                   workers derive ``child()`` streams, the invariant
                   serial/process parity rests on
fault-determinism  code under ``repro.faults`` draws only from the
                   dedicated ``child("faults")`` stream family — chaos
                   plans are pure functions of their seed
no-pickled-columns code under ``repro.runtime`` may not pickle
                   ``SessionArrays``/``DemandArrays``/``FlowArrays``/
                   ``TraceBundle`` across a process pool — columnar
                   payloads travel through ``repro.runtime.shm``
================== ====================================================
"""

from __future__ import annotations

from repro.devtools.rules import (  # noqa: F401  (registration side effects)
    basics,
    cache_invalidation,
    engine_parity,
    fault_determinism,
    fork_safe_rng,
    no_pickled_columns,
    ordered_iteration,
    rng,
    wallclock,
)
