"""The repo-specific rule suite.

Importing this package registers every rule (each module applies the
:func:`repro.devtools.registry.register` decorator at import time):

================== ====================================================
rule id            invariant
================== ====================================================
no-wallclock       no wall-clock reads outside ``repro.perf`` /
                   ``repro.prototype`` — replay must not observe real
                   time
no-unseeded-rng    no ``random`` module, no legacy ``np.random.*``
                   global state, no unseeded ``default_rng()`` — all
                   randomness flows through seeded ``Generator``
                   objects (:mod:`repro.sim.rng`)
engine-parity      every public ``engine=`` dispatcher is registered in
                   :mod:`repro.devtools.parity_registry` with live
                   reference/fast impls and equivalence tests
ordered-iteration  no iteration over set-valued expressions or
                   ``.keys()`` in ``analysis``/``core``/``wlan`` —
                   event lists, pair counts and RNG draws must not
                   depend on hash order
cache-invalidation memoizing classes that also mutate state must carry
                   a generation counter (``core/social.py`` pattern)
mutable-default    no mutable argument defaults
bare-except        no ``except:`` clauses
fork-safe-rng      code under ``repro.runtime`` may not call
                   ``RandomStreams.get()`` on a root-seeded factory —
                   workers derive ``child()`` streams, the invariant
                   serial/process parity rests on
fault-determinism  code under ``repro.faults`` draws only from the
                   dedicated ``child("faults")`` stream family — chaos
                   plans are pure functions of their seed
no-pickled-columns code under ``repro.runtime`` may not pickle
                   ``SessionArrays``/``DemandArrays``/``FlowArrays``/
                   ``TraceBundle`` across a process pool — columnar
                   payloads travel through ``repro.runtime.shm``
shard-safe-note    a class setting ``shard_safe = False`` must declare
                   a ``shard_safe_reason`` string naming the mutable
                   cross-controller state that forbids sharding
================== ====================================================

Whole-program (flow) rules — these build the shared import/symbol/call
index from :mod:`repro.devtools.flow` and check cross-module invariants
no single file can witness:

=================== ===================================================
rule id             invariant
=================== ===================================================
rng-stream-registry every ``RandomStreams.get/child`` name (and every
                    seeded ``default_rng`` fallback site) matches
                    :mod:`repro.devtools.stream_registry`, checked
                    against call sites in **both** directions
metric-name-registry every metric recorded via ``repro.obs.metrics``
                    matches a :class:`MetricSpec` in
                    :mod:`repro.obs.metric_registry` — registered,
                    owned, kind-consistent, checked in both directions
import-contract     package imports follow the layering table in
                    :mod:`repro.devtools.rules.import_contract`;
                    private modules stay package-internal; no
                    top-level import cycles
boundary-purity     code reachable from the worker boundary must not
                    read ``os.environ``, mutate module-level state, or
                    draw hidden-global RNG
stale-noqa          a ``# repro: noqa[...]`` that suppresses no current
                    finding is itself a finding
=================== ===================================================
"""

from __future__ import annotations

from repro.devtools.rules import (  # noqa: F401  (registration side effects)
    basics,
    boundary_purity,
    cache_invalidation,
    engine_parity,
    fault_determinism,
    fork_safe_rng,
    import_contract,
    metric_names,
    no_pickled_columns,
    ordered_iteration,
    rng,
    rng_streams,
    shard_safe,
    stale_noqa,
    wallclock,
)
