"""no-pickled-columns: columnar containers never cross a pool by pickle.

The zero-copy transport (:mod:`repro.runtime.shm`) exists so that a
run's heavyweight columnar data — :class:`~repro.trace.columnar.SessionArrays`,
:class:`~repro.trace.columnar.DemandArrays`,
:class:`~repro.trace.columnar.FlowArrays` and whole
:class:`~repro.trace.records.TraceBundle` objects — is published into
shared memory once and referenced by a few-hundred-byte
:class:`~repro.runtime.shm.ShmHandle`.  Pickling any of those containers
into a :class:`~concurrent.futures.ProcessPoolExecutor` task would
silently reintroduce the serialization tax the transport removed.  This
rule bans, in modules under ``repro.runtime``:

* class-body field annotations naming a banned container — a task or
  outcome dataclass field is exactly what gets pickled across the pool;
* ``pool.submit(...)`` / ``pool.map(...)`` arguments that construct a
  banned container (``SessionArrays.from_sessions(...)``), call a
  ``TraceBundle`` column accessor (``.columns()``,
  ``.demand_columns()``, ``.flow_columns()``), or name a module-level
  value assigned from either.

The analysis is local and flow-insensitive, like ``fork-safe-rng`` —
enough to catch the construct the transport contract bans.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register
from repro.devtools.rules.imports import ImportMap, canonical_call

#: The package whose modules this rule applies to.
SCOPE = "repro.runtime"

#: Canonical names of the containers that must not be pickled.
BANNED = (
    "repro.trace.columnar.DemandArrays",
    "repro.trace.columnar.FlowArrays",
    "repro.trace.columnar.SessionArrays",
    "repro.trace.records.TraceBundle",
)

#: ``TraceBundle`` accessors whose results are the banned containers.
COLUMN_METHODS = ("columns", "demand_columns", "flow_columns")

#: Executor methods that pickle their arguments into worker processes.
POOL_METHODS = ("submit", "map")

_HINT = (
    "publish the columns once via repro.runtime.shm.SegmentSet and hand "
    "workers an ShmHandle/ShmSlice instead"
)


def _in_scope(module_name: str) -> bool:
    return module_name == SCOPE or module_name.startswith(SCOPE + ".")


def _banned_name(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """The banned container ``node`` resolves to (or prefixes), if any."""
    canonical = canonical_call(node, imports)
    if canonical is None:
        return None
    for banned in BANNED:
        if canonical == banned or canonical.startswith(banned + "."):
            return banned
    return None


def _is_column_accessor(node: ast.AST) -> bool:
    """Whether ``node`` is a call like ``something.columns()``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in COLUMN_METHODS
    )


@register
class NoPickledColumns(Rule):
    """Ban columnar containers crossing a pool boundary by pickle."""

    id = "no-pickled-columns"
    description = (
        "code under repro.runtime may not pickle SessionArrays/"
        "DemandArrays/FlowArrays/TraceBundle across a process pool; "
        "publish through repro.runtime.shm instead"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not _in_scope(module.module):
            return
        imports = ImportMap(module.tree)
        column_locals = self._column_locals(module.tree, imports)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class_fields(module, node, imports)
            elif isinstance(node, ast.Call):
                yield from self._check_pool_call(
                    module, node, imports, column_locals
                )

    # ------------------------------------------------------- class fields

    def _check_class_fields(
        self, module: LintModule, node: ast.ClassDef, imports: ImportMap
    ) -> Iterator[Finding]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            banned = self._annotation_names(stmt.annotation, imports)
            if banned:
                yield self._finding(
                    module,
                    stmt,
                    f"field annotated with {banned} inside repro.runtime — "
                    "a task/outcome dataclass field is pickled across the "
                    "pool boundary",
                )

    def _annotation_names(
        self, annotation: ast.AST, imports: ImportMap
    ) -> Optional[str]:
        """The first banned container an annotation expression mentions."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        for sub in ast.walk(annotation):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                banned = _banned_name(sub, imports)
                if banned is not None:
                    return banned
        return None

    # --------------------------------------------------------- pool calls

    def _check_pool_call(
        self,
        module: LintModule,
        node: ast.Call,
        imports: ImportMap,
        column_locals: Set[str],
    ) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in POOL_METHODS):
            return
        arguments = list(node.args)
        arguments.extend(keyword.value for keyword in node.keywords)
        for argument in arguments:
            if isinstance(argument, ast.Call):
                banned = _banned_name(argument.func, imports)
                if banned is not None:
                    yield self._finding(
                        module,
                        argument,
                        f"`{func.attr}()` pickles a {banned} into the pool",
                    )
                elif _is_column_accessor(argument):
                    assert isinstance(argument.func, ast.Attribute)
                    yield self._finding(
                        module,
                        argument,
                        f"`{func.attr}()` pickles a `.{argument.func.attr}()` "
                        "result (columnar arrays) into the pool",
                    )
            elif (
                isinstance(argument, ast.Name)
                and argument.id in column_locals
            ):
                yield self._finding(
                    module,
                    argument,
                    f"`{func.attr}()` pickles `{argument.id}` (columnar "
                    "arrays) into the pool",
                )

    def _column_locals(
        self, tree: ast.AST, imports: ImportMap
    ) -> Set[str]:
        """Names assigned from banned constructors or column accessors."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            if _banned_name(value.func, imports) is None and not (
                _is_column_accessor(value)
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=node.lineno,
            column=node.col_offset,
            rule=self.id,
            message=message,
            hint=_HINT,
        )
