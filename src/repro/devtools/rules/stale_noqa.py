"""stale-noqa: every suppression must still be earning its keep.

A ``# repro: noqa[rule]`` is a standing exemption from an invariant; once
the offending code is fixed or deleted, the comment outlives its reason
and silently licenses a *future* violation on that line.  This rule runs
against the raw (pre-suppression) findings of each module: a bare noqa
that suppresses nothing, or a named rule id with no matching finding on
its line, is itself a finding.  Stale-noqa findings bypass suppression —
a noqa cannot excuse itself.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Set

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register
from repro.devtools.suppress import suppression_comments


@register
class StaleNoqa(Rule):
    """Flag ``# repro: noqa`` comments that suppress no finding."""

    id = "stale-noqa"
    description = (
        "a `# repro: noqa[...]` must suppress at least one current "
        "finding on its line; stale suppressions are findings themselves"
    )

    def check_suppressions(
        self, module: LintModule, findings: Sequence[Finding]
    ) -> Iterator[Finding]:
        by_line: Dict[int, Set[str]] = {}
        for finding in findings:
            by_line.setdefault(finding.line, set()).add(finding.rule)
        for comment in suppression_comments(module.source):
            rules_here = by_line.get(comment.line, set())
            if not comment.rules:
                if not rules_here:
                    yield self._finding(
                        module,
                        comment.line,
                        comment.column,
                        "bare `# repro: noqa` suppresses no finding on "
                        "this line",
                    )
                continue
            stale = [r for r in comment.rules if r not in rules_here]
            if stale:
                yield self._finding(
                    module,
                    comment.line,
                    comment.column,
                    f"`# repro: noqa[{', '.join(stale)}]` suppresses no "
                    f"{'finding' if len(stale) == 1 else 'findings'} on "
                    "this line",
                )

    def _finding(
        self, module: LintModule, line: int, column: int, message: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=line,
            column=column,
            rule=self.id,
            message=message,
            hint="delete the suppression (or narrow it to rules that fire)",
        )
