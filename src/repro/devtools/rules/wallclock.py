"""no-wallclock: the simulation must never observe real time.

Replay is event-driven from the simulated timeline; a wall-clock read in
any model, analysis or replay path makes runs non-reproducible and the
paper's trace statistics uncheckable.  The only sanctioned consumers are
:mod:`repro.perf` (the timer facade everything else must go through),
:mod:`repro.prototype` (the live-testbed daemons, which run against real
hardware and real time by design), and the single registered read in
:mod:`repro.obs._clock` — the observability layer timestamps spans
through that one funnel, and every *other* ``repro.obs`` submodule is
still checked.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register
from repro.devtools.rules.imports import ImportMap, canonical_call

#: Modules whose prefix exempts them from this rule.
ALLOWED_MODULE_PREFIXES: Tuple[str, ...] = ("repro.perf", "repro.prototype")

#: Exact module names additionally exempted: the observability layer's
#: single sanctioned wall-clock funnel.  Deliberately *not* a prefix —
#: a stray read elsewhere in ``repro.obs`` must keep failing.
ALLOWED_MODULES: Tuple[str, ...] = ("repro.obs._clock",)

#: Canonical dotted names of wall-clock reads.
BANNED_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
)


def module_is_exempt(module: str) -> bool:
    """Whether the dotted module name is a sanctioned time consumer."""
    if module in ALLOWED_MODULES:
        return True
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in ALLOWED_MODULE_PREFIXES
    )


@register
class NoWallclock(Rule):
    """Ban wall-clock reads outside ``repro.perf`` / ``repro.prototype``."""

    id = "no-wallclock"
    description = (
        "wall-clock reads (time.time / datetime.now / time.monotonic ...) "
        "are only allowed in repro.perf and repro.prototype"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if module_is_exempt(module.module):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call(node.func, imports)
            if name in BANNED_CALLS:
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset,
                    rule=self.id,
                    message=f"wall-clock read {name}() outside repro.perf",
                    hint="time through the repro.perf timer API instead",
                )
