"""fork-safe-rng: runtime workers draw only from ``child()`` streams.

The parallel engine's determinism contract (see ``docs/runtime.md``)
hangs on every shard deriving its streams through
``RandomStreams.child(shard_stream_name(...))`` — content-addressed and
therefore bit-identical in any process.  Calling ``.get()`` directly on
a *root-seeded* factory inside :mod:`repro.runtime` would instead hand a
worker streams whose draws depend on which other consumers share the
factory, silently breaking serial/process parity.  This rule bans, in
modules under ``repro.runtime``:

* ``RandomStreams(seed).get(...)`` chained on the constructor;
* ``streams.get(...)`` where ``streams`` was assigned from a bare
  ``RandomStreams(...)`` constructor call in the same module.

Deriving children (``streams.child(name)``) and using factories handed
in from elsewhere remain allowed — the analysis is deliberately local
and flow-insensitive, enough to catch the construct the contract bans.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register
from repro.devtools.rules.imports import ImportMap, canonical_call

#: The package whose modules this rule applies to.
SCOPE = "repro.runtime"

#: The canonical dotted name of the stream factory constructor.
FACTORY = "repro.sim.rng.RandomStreams"


def _in_scope(module_name: str) -> bool:
    return module_name == SCOPE or module_name.startswith(SCOPE + ".")


@register
class ForkSafeRng(Rule):
    """Ban root-factory ``.get()`` calls inside ``repro.runtime``."""

    id = "fork-safe-rng"
    description = (
        "code under repro.runtime may not call RandomStreams.get() on a "
        "root-seeded factory; workers must derive child() streams"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not _in_scope(module.module):
            return
        imports = ImportMap(module.tree)
        roots = self._root_factories(module.tree, imports)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "get"):
                continue
            target = func.value
            if isinstance(target, ast.Name) and target.id in roots:
                yield self._finding(
                    module,
                    node,
                    f"`{target.id}.get()` draws from a root-seeded "
                    "RandomStreams inside repro.runtime",
                )
            elif isinstance(target, ast.Call) and (
                canonical_call(target.func, imports) == FACTORY
            ):
                yield self._finding(
                    module,
                    node,
                    "`RandomStreams(...).get()` draws from a root-seeded "
                    "factory inside repro.runtime",
                )

    def _root_factories(
        self, tree: ast.AST, imports: ImportMap
    ) -> Set[str]:
        """Names assigned from a bare ``RandomStreams(...)`` constructor."""
        roots: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not (
                isinstance(value, ast.Call)
                and canonical_call(value.func, imports) == FACTORY
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    roots.add(target.id)
        return roots

    def _finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=node.lineno,
            column=node.col_offset,
            rule=self.id,
            message=message,
            hint=(
                "derive a shard stream: "
                "streams.child(shard_stream_name(controller_id)).get(name)"
            ),
        )
