"""engine-parity: every ``engine=`` dispatcher carries an equivalence proof.

The numpy fast paths added for the Fig. 2-5 pipelines are only
trustworthy because byte-identity with the pure-Python reference is
asserted by tests.  This rule makes that pairing machine-checked in both
directions:

* **module check** — every *public* function or method with an
  ``engine`` parameter must appear (by fully-qualified dotted name) in
  :data:`repro.devtools.parity_registry.PARITY_REGISTRY`;
* **project check** — every registry entry must still resolve: the
  dispatcher itself, its ``reference``/``fast`` implementations, and
  each pytest node id in ``tests`` (matched statically against the test
  file's AST, the same shape pytest collects).

So adding a fast path without tests fails lint, and renaming a test or
implementation without updating the registry fails lint too.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.findings import Finding
from repro.devtools.parity_registry import PARITY_REGISTRY
from repro.devtools.project import (
    LintModule,
    Project,
    resolve_dotted,
    test_node_exists,
)
from repro.devtools.registry import Rule, register

#: Where findings against the registry itself are anchored.
REGISTRY_PATH = "src/repro/devtools/parity_registry.py"


def _public_path(parts: List[str]) -> bool:
    """Whether every component of a qualified name is public."""
    return all(not part.startswith("_") for part in parts)


@register
class EngineParity(Rule):
    """Keep ``engine=`` dispatchers and their equivalence tests paired."""

    id = "engine-parity"
    description = (
        "public engine= functions must be registered in "
        "repro.devtools.parity_registry with live equivalence tests"
    )

    # ------------------------------------------------------- module check

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        yield from self._walk(module, module.tree.body, [])

    def _walk(
        self, module: LintModule, body: List[ast.stmt], stack: List[str]
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._walk(module, node.body, stack + [node.name])
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, stack)

    def _check_function(
        self,
        module: LintModule,
        node: ast.AST,
        stack: List[str],
    ) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if "engine" not in names:
            return
        if node.name.startswith("test_"):
            # Tests parametrized over engines consume the dispatchers;
            # they are not dispatchers themselves.
            return
        qualified = stack + [node.name]
        if not _public_path(qualified):
            return
        dotted = ".".join([module.module] + qualified)
        if dotted not in PARITY_REGISTRY:
            yield Finding(
                path=module.display_path,
                line=node.lineno,
                column=node.col_offset,
                rule=self.id,
                message=(
                    f"public engine= dispatcher {dotted} is not in the "
                    "parity registry"
                ),
                hint=(
                    "add a ParityEntry (reference impl + equivalence tests) "
                    "to repro/devtools/parity_registry.py"
                ),
            )

    # ------------------------------------------------------ project check

    def check_project(self, project: Project) -> Iterator[Finding]:
        for dotted, entry in sorted(PARITY_REGISTRY.items()):
            implementations = [dotted, entry.reference]
            if entry.fast is not None:
                implementations.append(entry.fast)
            for name in implementations:
                if not resolve_dotted(name, project.src_root):
                    yield self._registry_finding(
                        f"registry entry {dotted}: implementation {name} "
                        "does not resolve under src/"
                    )
            if not entry.tests:
                yield self._registry_finding(
                    f"registry entry {dotted} lists no equivalence tests"
                )
            for test_id in entry.tests:
                if not test_node_exists(test_id, project.repo_root):
                    yield self._registry_finding(
                        f"registry entry {dotted}: equivalence test "
                        f"{test_id} is not collected"
                    )

    def _registry_finding(self, message: str) -> Finding:
        return Finding(
            path=REGISTRY_PATH,
            line=1,
            column=0,
            rule=self.id,
            message=message,
            hint="update repro/devtools/parity_registry.py",
        )
