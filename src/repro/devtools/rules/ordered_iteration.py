"""ordered-iteration: no hash-order iteration in deterministic paths.

Sets iterate in hash order, which varies across runs (string hashing is
salted) — iterating one to build event lists, pair counts or to drive
RNG draws makes replay non-reproducible even from a fixed seed.  The
rule flags ``for``-loop and comprehension iteration over set-valued
expressions inside the deterministic packages (``repro.analysis``,
``repro.core``, ``repro.wlan``): set literals/comprehensions,
``set()``/``frozenset()`` calls, set-operator expressions (``|&-^`` over
sets or ``.keys()`` views, which combine into bare sets), and ``.keys()``
calls (iterate the dict itself, or ``sorted()`` it, so a later refactor
to a set operation cannot slip through).

Membership tests (``x in set(...)``) are fine — only iteration order is
at stake.  The mechanical fix is ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register

#: Packages whose outputs must be independent of hash order.
SCOPED_PREFIXES: Tuple[str, ...] = ("repro.analysis", "repro.core", "repro.wlan")

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def module_in_scope(module: str) -> bool:
    """Whether the module lives in a determinism-critical package."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SCOPED_PREFIXES
    )


def describe_set_valued(node: ast.AST) -> str:
    """A short description if ``node`` is set-valued, else ``""``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return ".keys()"
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        left = describe_set_valued(node.left)
        right = describe_set_valued(node.right)
        if left or right:
            return f"a set expression ({left or right})"
    return ""


@register
class OrderedIteration(Rule):
    """Flag iteration over set-valued expressions in scoped packages."""

    id = "ordered-iteration"
    description = (
        "no iteration over sets / .keys() in repro.analysis, repro.core, "
        "repro.wlan — wrap in sorted() to fix the order"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not module_in_scope(module.module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(module, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iter(module, generator.iter)

    def _check_iter(self, module: LintModule, iter_node: ast.AST) -> Iterator[Finding]:
        what = describe_set_valued(iter_node)
        if what:
            yield Finding(
                path=module.display_path,
                line=iter_node.lineno,
                column=iter_node.col_offset,
                rule=self.id,
                message=f"iteration over {what} has no deterministic order",
                hint="wrap the iterable in sorted(...)",
            )
