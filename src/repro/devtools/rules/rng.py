"""no-unseeded-rng: all randomness flows through seeded Generators.

The reproduction derives every random draw from a root seed via named
:class:`~repro.sim.rng.RandomStreams` children; the stdlib ``random``
module and numpy's legacy global state (``np.random.rand`` & co.) both
read hidden process-wide state, so one stray call silently decorrelates
a replay from its seed.  Constructing a seeded ``Generator`` is allowed
anywhere (the ``default_rng(0)`` fallback idiom); an **unseeded**
``default_rng()`` is not.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register
from repro.devtools.rules.imports import ImportMap, canonical_call

#: The one module allowed to own stream derivation internals.
EXEMPT_MODULE = "repro.sim.rng"

#: ``numpy.random`` attributes that construct explicit generators —
#: allowed everywhere (everything else on the module is legacy global
#: state or a draw from it).
CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


def _numpy_random_member(name: str) -> Optional[str]:
    """The member name if ``name`` is ``numpy.random.<member>``."""
    for prefix in ("numpy.random.", "np.random."):
        if name.startswith(prefix):
            member = name[len(prefix) :]
            if "." not in member:
                return member
    return None


@register
class NoUnseededRng(Rule):
    """Ban hidden-global RNG state outside :mod:`repro.sim.rng`."""

    id = "no-unseeded-rng"
    description = (
        "no `import random`, no legacy np.random.* global-state calls, no "
        "unseeded default_rng(); thread seeded Generator objects instead"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if module.module == EXEMPT_MODULE:
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._finding(
                            module,
                            node,
                            "stdlib `random` draws from hidden global state",
                            "use a numpy Generator from repro.sim.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self._finding(
                        module,
                        node,
                        "stdlib `random` draws from hidden global state",
                        "use a numpy Generator from repro.sim.rng",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, imports, node)

    def _check_call(
        self, module: LintModule, imports: ImportMap, node: ast.Call
    ) -> Iterator[Finding]:
        name = canonical_call(node.func, imports)
        if name is None:
            return
        member = _numpy_random_member(name)
        if member is None:
            return
        if member not in CONSTRUCTORS:
            yield self._finding(
                module,
                node,
                f"legacy global-state call np.random.{member}()",
                "draw from a seeded np.random.Generator instead",
            )
        elif member == "default_rng" and not node.args and not node.keywords:
            yield self._finding(
                module,
                node,
                "unseeded default_rng() is entropy-seeded (non-reproducible)",
                "pass an explicit seed or thread a Generator in",
            )

    def _finding(
        self, module: LintModule, node: ast.AST, message: str, hint: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=node.lineno,
            column=node.col_offset,
            rule=self.id,
            message=message,
            hint=hint,
        )
