"""shard-safe-note: opting out of sharding must carry a stated reason.

``SelectionStrategy.shard_safe = False`` is load-bearing: it forces the
replay engine down the serial path and silently disables the process
pool.  ISSUE 9 made the contract explicit — any class that flips the
flag off must also declare *why* in a ``shard_safe_reason`` class
attribute holding a non-empty string literal, so the constraint is
visible to the lint suite (and greppable by an operator wondering where
their cores went) instead of living only in a comment.

A class trips this rule when it assigns ``shard_safe = False`` —
class-level or ``self.shard_safe = False`` in any method (the
conditional-staleness pattern in ``S3Strategy.__init__``) — without a
class-level ``shard_safe_reason`` string constant.  Setting the flag to
``True`` needs no note: that is the inherited default contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register


def _is_false(value: Optional[ast.expr]) -> bool:
    return isinstance(value, ast.Constant) and value.value is False


def _class_level_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
    elif isinstance(stmt, ast.AnnAssign):
        yield stmt.target


def _disables_sharding(cls: ast.ClassDef) -> Optional[int]:
    """Line of the first ``shard_safe = False`` assignment, else ``None``."""
    for stmt in cls.body:
        for target in _class_level_targets(stmt):
            if isinstance(target, ast.Name) and target.id == "shard_safe":
                value = getattr(stmt, "value", None)
                if _is_false(value):
                    return stmt.lineno
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_false(node.value):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "shard_safe"
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return node.lineno
    return None


def _has_reason(cls: ast.ClassDef) -> bool:
    """Whether the class declares a non-empty ``shard_safe_reason``."""
    for stmt in cls.body:
        for target in _class_level_targets(stmt):
            if (
                isinstance(target, ast.Name)
                and target.id == "shard_safe_reason"
            ):
                value = getattr(stmt, "value", None)
                return (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and bool(value.value.strip())
                )
    return False


@register
class ShardSafeNote(Rule):
    """``shard_safe = False`` requires a ``shard_safe_reason`` string."""

    id = "shard-safe-note"
    description = (
        "a class disabling sharding (shard_safe = False) must declare a "
        "non-empty shard_safe_reason string explaining why"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            line = _disables_sharding(node)
            if line is None or _has_reason(node):
                continue
            yield Finding(
                path=module.display_path,
                line=line,
                column=node.col_offset,
                rule=self.id,
                message=(
                    f"class {node.name} sets shard_safe = False without a "
                    "shard_safe_reason string"
                ),
                hint=(
                    "add a class-level shard_safe_reason = \"...\" naming "
                    "the mutable cross-controller state that forbids "
                    "sharding (see repro.core.online.OnlineS3Strategy)"
                ),
            )
