"""fault-determinism: chaos plans draw only from the ``faults`` stream.

A fault plan must be a pure function of its seed: the replay engine, the
prototype link policy and the resilience experiment all assume that the
same seed produces byte-identical chaos under any engine.  That holds
only if every random draw inside :mod:`repro.faults` flows through the
dedicated ``streams.child("faults")`` stream family — a draw from an ad
hoc ``numpy.random.default_rng(...)`` or from any other stream would tie
the plan to whatever else shares that generator.  This rule bans, in
every module of :data:`SCOPES`:

* any call of ``numpy.random.default_rng`` (aliased or not);
* any ``.get(...)`` call whose receiver is not derived from
  ``.child("faults")`` — either the chained form
  ``streams.child("faults").get(name)`` or a name assigned from a bare
  ``<expr>.child("faults")`` call in the same module.

The second check is deliberately blunt (it also rejects ``dict.get``):
plan-generation code is small, and keeping *every* ``.get`` in scope a
stream lookup makes the invariant auditable at a glance.

The scope covers ``repro.faults`` (where plans are generated) **and**
the service layer's fault consumers — the crash supervisor
(:mod:`repro.service.supervisor`) and the chaos soak
(:mod:`repro.service.soak`).  Those two re-execute fault plans through
kill/restore cycles whose recovery must be byte-reproducible, so they
are held to the same no-ad-hoc-randomness discipline as the plan
generators; the rest of :mod:`repro.service` (live dispatch, admission)
never touches fault plans and stays outside the scope.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.findings import Finding
from repro.devtools.project import LintModule
from repro.devtools.registry import Rule, register
from repro.devtools.rules.imports import ImportMap, canonical_call

#: The packages/modules this rule applies to (each covers submodules).
SCOPES = (
    "repro.faults",
    "repro.service.supervisor",
    "repro.service.soak",
)

#: The banned ad hoc generator constructor.
DEFAULT_RNG = "numpy.random.default_rng"

#: The only stream-family name fault code may draw from.
STREAM_NAME = "faults"


def _in_scope(module_name: str) -> bool:
    return any(
        module_name == scope or module_name.startswith(scope + ".")
        for scope in SCOPES
    )


def _is_faults_child_call(node: ast.AST) -> bool:
    """True for a ``<expr>.child("faults")`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "child"
        and len(node.args) == 1
        and not node.keywords
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == STREAM_NAME
    )


@register
class FaultDeterminism(Rule):
    """Ban non-``faults``-stream randomness inside ``repro.faults``."""

    id = "fault-determinism"
    description = (
        "fault-plan code (repro.faults, the service supervisor/soak) may "
        "not call numpy.random.default_rng or .get() on anything but a "
        'child("faults") stream family'
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if not _in_scope(module.module):
            return
        imports = ImportMap(module.tree)
        allowed = self._faults_children(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if canonical_call(node.func, imports) == DEFAULT_RNG:
                yield self._finding(
                    module,
                    node,
                    "`default_rng(...)` inside the fault-determinism scope "
                    'bypasses the dedicated child("faults") stream family',
                )
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "get"):
                continue
            target = func.value
            if _is_faults_child_call(target):
                continue
            if isinstance(target, ast.Name) and target.id in allowed:
                continue
            yield self._finding(
                module,
                node,
                "`.get(...)` on a receiver not derived from "
                '`.child("faults")` inside the fault-determinism scope',
            )

    def _faults_children(self, tree: ast.AST) -> Set[str]:
        """Names assigned from a bare ``<expr>.child("faults")`` call."""
        allowed: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not _is_faults_child_call(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    allowed.add(target.id)
        return allowed

    def _finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=node.lineno,
            column=node.col_offset,
            rule=self.id,
            message=message,
            hint=(
                "draw from the dedicated stream family: "
                'streams.child("faults").get("schedule")'
            ),
        )
