"""The engine-parity registry: dispatching functions and their proofs.

Every public function that takes an ``engine=`` kwarg dispatches between
a pure-Python reference implementation and a vectorized fast path that
must stay **byte-identical** to it.  That equivalence is the contract
the paper reproduction leans on — Figs. 2-5 are computed by whichever
engine ``auto`` picks — so each dispatcher is registered here with:

* ``reference`` — the dotted name of the pure-Python implementation
  (the dispatcher itself when the reference branch lives inline, as in
  ``SocialModel.build_graph``'s ``engine="python"`` arm);
* ``fast`` — the vectorized implementation, when it is a separate
  function;
* ``tests`` — the pytest node ids of the equivalence tests that assert
  byte-identical results across engines.

The **engine-parity** lint rule fails when a public ``engine=`` function
is missing from this table, and when a registered dotted name or test
node no longer exists (verified against the test files' collected ids),
so a refactor cannot silently drop an equivalence proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ParityEntry:
    """Reference implementation and equivalence tests for one dispatcher."""

    reference: str
    tests: Tuple[str, ...]
    fast: Optional[str] = None


#: Public ``engine=`` dispatchers, by fully-qualified dotted name.
PARITY_REGISTRY: Dict[str, ParityEntry] = {
    "repro.analysis.churn.extract_churn": ParityEntry(
        reference="repro.analysis.churn._extract_churn_python",
        fast="repro.analysis.fastchurn.extract_churn_numpy",
        tests=(
            "tests/test_analysis_fastchurn.py::test_extract_churn_engines_identical_random",
            "tests/test_analysis_fastchurn.py::test_extract_churn_engines_identical_grid_boundaries",
            "tests/test_analysis_fastchurn.py::test_extract_churn_engines_identical_duplicate_times",
        ),
    ),
    "repro.analysis.churn.coleaving_fraction_per_user": ParityEntry(
        reference="repro.analysis.churn._coleaving_fraction_python",
        fast="repro.analysis.fastchurn.coleaving_fraction_numpy",
        tests=(
            "tests/test_analysis_fastchurn.py::test_coleaving_fraction_engines_identical",
        ),
    ),
    "repro.core.social.SocialModel.build_graph": ParityEntry(
        reference="repro.core.social.SocialModel.build_graph",
        tests=(
            "tests/test_analysis_fastchurn.py::test_build_graph_engines_identical",
            "tests/test_analysis_fastchurn.py::test_build_graph_cache_invalidated_by_record_events",
        ),
    ),
    "repro.core.social.SocialModel.record_events": ParityEntry(
        # Not an ``engine=`` dispatcher but the same contract: the
        # incremental patch path must stay byte-identical to the batch
        # rebuild it replaces (ISSUE 9 online-delta updates).
        reference="repro.core.social.build_social_model",
        tests=(
            "tests/test_core_social_incremental.py::test_streamed_events_byte_identical_to_batch_rebuild",
            "tests/test_core_social_incremental.py::test_assign_user_type_patches_rows_byte_identically",
            "tests/test_core_social_incremental.py::test_streamed_model_matches_build_social_model",
        ),
    ),
    "repro.runtime.engine.replay": ParityEntry(
        reference="repro.runtime.engine.replay_serial",
        fast="repro.runtime.engine.replay_process",
        tests=(
            "tests/test_runtime_parity.py::test_replay_engines_identical_llf",
            "tests/test_runtime_parity.py::test_replay_engines_identical_s3",
            "tests/test_runtime_parity.py::test_merged_journal_byte_identical",
            "tests/test_faults_parity.py::test_fault_replay_engines_identical",
            "tests/test_faults_parity.py::test_fault_journal_byte_identical",
            "tests/test_runtime_shm.py::test_shm_replay_byte_identical_with_faults_armed",
            "tests/test_obs_metrics_parity.py::test_metric_series_byte_identical_across_engines",
        ),
    ),
    "repro.service.supervisor.run_supervised": ParityEntry(
        # Not an ``engine=`` dispatcher but the same contract: a
        # crashed-and-recovered supervised run must journal
        # byte-identically (post-``strip_wall``) to the same run with
        # the crash events removed from its plan, and to the plain
        # unsupervised service when the plan is empty (ISSUE 10
        # kill-and-restore parity).
        reference="repro.service.workload.run_journaled_service",
        tests=(
            "tests/test_service_recovery.py::test_kill_and_restore_byte_identical",
            "tests/test_service_recovery.py::test_multi_crash_with_stall_and_duplicate_byte_identical",
            "tests/test_service_recovery.py::test_metrics_on_same_plan_runs_byte_identical",
            "tests/test_service_recovery.py::test_supervised_empty_plan_matches_plain_service_run",
        ),
    ),
    "repro.runtime.sweep.run_sweep": ParityEntry(
        reference="repro.runtime.sweep.run_sweep_serial",
        fast="repro.runtime.sweep.run_sweep_process",
        tests=(
            "tests/test_runtime_sweep.py::test_run_sweep_engines_identical",
        ),
    ),
}
