"""The lint finding record and its rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is kept as given by the driver (repo-relative when linting
    from the repo root), ``line``/``column`` are 1- and 0-indexed as in
    :mod:`ast`.  ``hint`` is a short autofix suggestion shown after the
    message; empty when the fix is not mechanical.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str
    hint: str = field(default="", compare=False)

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report order: by file, then location, then rule id."""
        return (self.path, self.line, self.column, self.rule)

    def render(self) -> str:
        """``path:line:col: rule-id message (fix: hint)``."""
        text = f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text
