"""Rule base class and registry.

Rules register themselves at import time via the :func:`register`
decorator; :mod:`repro.devtools.rules` imports every rule module, so
``all_rules()`` after that import returns the full suite.  Tests build
reduced suites by instantiating rule classes directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence, Type, TypeVar

from repro.devtools.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lint imports us)
    from repro.devtools.project import LintModule, Project


class Rule:
    """One lint rule: a stable id plus module- and project-level checks.

    ``check_module`` runs once per linted file with its parsed AST;
    ``check_project`` runs once per lint invocation for cross-file
    invariants (e.g. parity-registry staleness).  Either may be a no-op.
    """

    #: Stable kebab-case identifier used in reports and suppressions.
    id: str = ""
    #: One-line description shown by ``lint --list-rules``.
    description: str = ""

    def check_module(self, module: "LintModule") -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Yield findings for cross-file invariants."""
        return iter(())

    def check_suppressions(
        self, module: "LintModule", findings: Sequence[Finding]
    ) -> Iterator[Finding]:
        """Yield findings about the module's suppression comments.

        ``findings`` are the *raw* (pre-suppression) module-check
        findings, so a rule can judge whether each ``# repro: noqa``
        actually silences something.  Findings yielded here bypass
        suppression filtering — a stale noqa cannot excuse itself.
        """
        return iter(())


R = TypeVar("R", bound=Type[Rule])

#: Registered rule classes by id.
_RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: R) -> R:
    """Class decorator adding ``rule_class`` to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} must define a rule id")
    existing = _RULES.get(rule_class.id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _RULES[rule_class.id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    import repro.devtools.rules  # noqa: F401  (registration side effect)

    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def rule_ids() -> List[str]:
    """The registered rule ids, sorted."""
    import repro.devtools.rules  # noqa: F401  (registration side effect)

    return sorted(_RULES)
