"""Runtime determinism sanitizer: run twice, diff journals, bisect.

The static rules prove the *code* cannot reach ambient state; this tool
checks the *runtime* contract they protect: a journaled scenario run
twice under different ``PYTHONHASHSEED`` values must produce
byte-identical journals after :func:`repro.obs.journal.strip_wall`.
Hash-seed variation is the sharpest cheap probe we have — any surviving
iteration over hash order, any ``hash()``-derived seed, any set-ordered
event list shows up as a journal divergence.

    python -m repro.devtools.sanitize fig2 --preset tiny
    python -m repro.devtools.sanitize replay --preset tiny \\
        --engine process --workers 2
    python -m repro.devtools.sanitize --diff a.jsonl b.jsonl

Each scenario is executed in a fresh subprocess (hash seeding is fixed
at interpreter start, so it cannot be toggled in-process).  On
divergence the tool binary-searches the journals' crc32 prefix-hash
arrays to the **first divergent record** and reports it with context:
both raw lines, the first differing key path, the nearest preceding
decision record and the nearest span — enough to attribute the
divergence to a subsystem without reading ten thousand lines of JSONL.
Exit status: 0 identical, 1 divergence, 2 usage/subprocess error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.devtools.project import default_repo_root
from repro.obs.journal import strip_wall

#: The scenario name that replays via the runtime engine CLI instead of
#: the experiments CLI (and therefore honors ``--engine/--workers``).
REPLAY_SCENARIO = "replay"


def journal_lines(text: str) -> List[str]:
    """Wall-stripped journal records, one JSON string per line."""
    return strip_wall(text).splitlines()


def _prefix_hashes(lines: Sequence[str]) -> List[int]:
    """``out[i]`` = crc32 of the first ``i`` lines (``out[0] == 0``)."""
    out = [0]
    running = 0
    for line in lines:
        running = zlib.crc32(line.encode("utf-8"), running)
        out.append(running)
    return out


def first_divergence(
    a_lines: Sequence[str], b_lines: Sequence[str]
) -> Optional[int]:
    """Index of the first differing record, or ``None`` when identical.

    Binary search over cumulative crc32 prefix hashes: O(n) hashing once,
    then O(log n) comparisons to localize — with a linear fallback in the
    (astronomically unlikely) event of a prefix-hash collision.
    """
    if list(a_lines) == list(b_lines):
        return None
    common = min(len(a_lines), len(b_lines))
    hashes_a = _prefix_hashes(a_lines)
    hashes_b = _prefix_hashes(b_lines)
    if hashes_a[common] == hashes_b[common]:
        # Equal up to the shorter journal; one simply has extra records.
        return common
    low, high = 0, common
    while low + 1 < high:
        mid = (low + high) // 2
        if hashes_a[mid] == hashes_b[mid]:
            low = mid
        else:
            high = mid
    index = high - 1
    if a_lines[index] == b_lines[index]:  # crc collision: fall back
        for i in range(common):
            if a_lines[i] != b_lines[i]:
                return i
        return common
    return index


def _record_type(line: Optional[str]) -> Optional[str]:
    if line is None:
        return None
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    value = payload.get("type")
    return value if isinstance(value, str) else None


def _first_diff_key(left: Any, right: Any, prefix: str = "") -> Optional[str]:
    """Dotted path of the first differing value between two JSON trees."""
    if type(left) is not type(right):
        return prefix.rstrip(".") or "<root>"
    if isinstance(left, dict):
        for key in sorted(set(left) | set(right)):
            if key not in left or key not in right:
                return f"{prefix}{key}"
            sub = _first_diff_key(left[key], right[key], f"{prefix}{key}.")
            if sub is not None:
                return sub
        return None
    if isinstance(left, list):
        if len(left) != len(right):
            return (prefix.rstrip(".") or "<root>") + ".<length>"
        for i, (a, b) in enumerate(zip(left, right)):
            sub = _first_diff_key(a, b, f"{prefix}{i}.")
            if sub is not None:
                return sub
        return None
    if left != right:
        return prefix.rstrip(".") or "<root>"
    return None


def _nearest(
    lines: Sequence[str], index: int, kind: str
) -> Optional[Dict[str, Any]]:
    """The nearest ``kind`` record at/before ``index`` (context anchor)."""
    for i in range(min(index, len(lines) - 1), -1, -1):
        if _record_type(lines[i]) == kind:
            return {"index": i, "record": lines[i]}
    return None


def describe_divergence(
    a_lines: Sequence[str], b_lines: Sequence[str], index: int
) -> Dict[str, Any]:
    """Structured context for the first divergent record."""
    left = a_lines[index] if index < len(a_lines) else None
    right = b_lines[index] if index < len(b_lines) else None
    first_key: Optional[str] = None
    if left is not None and right is not None:
        try:
            first_key = _first_diff_key(json.loads(left), json.loads(right))
        except ValueError:
            first_key = None
    return {
        "index": index,
        "lengths": [len(a_lines), len(b_lines)],
        "left": left,
        "right": right,
        "left_type": _record_type(left),
        "right_type": _record_type(right),
        "first_differing_key": first_key,
        "preceding_decision": _nearest(a_lines, index, "decision"),
        "preceding_span": _nearest(a_lines, index, "span"),
    }


def _render_report(report: Dict[str, Any]) -> str:
    divergence = report["divergence"]
    lines = [
        f"DIVERGENCE at record {divergence['index']} "
        f"(journal lengths {divergence['lengths'][0]} vs "
        f"{divergence['lengths'][1]})",
        f"  left  ({divergence['left_type']}): {divergence['left']}",
        f"  right ({divergence['right_type']}): {divergence['right']}",
    ]
    if divergence["first_differing_key"] is not None:
        lines.append(
            f"  first differing key: {divergence['first_differing_key']}"
        )
    for label, anchor in (
        ("nearest decision", divergence["preceding_decision"]),
        ("nearest span", divergence["preceding_span"]),
    ):
        if anchor is not None:
            lines.append(
                f"  {label} (record {anchor['index']}): {anchor['record']}"
            )
    return "\n".join(lines)


# ------------------------------------------------------------------ running


def _scenario_command(
    scenario: str,
    preset: str,
    engine: str,
    workers: Optional[int],
    journal_path: Path,
) -> List[str]:
    """The subprocess argv that runs ``scenario`` and writes a journal."""
    if scenario == REPLAY_SCENARIO:
        command = [
            sys.executable,
            "-m",
            "repro.runtime",
            "replay",
            preset,
            "--engine",
            engine,
            "--journal",
            str(journal_path),
        ]
        if workers is not None:
            command.extend(["--workers", str(workers)])
        return command
    # Experiment scenarios journal one in-process run; engine/workers do
    # not apply (the experiments CLI rejects --journal with --workers).
    return [
        sys.executable,
        "-m",
        "repro.experiments",
        preset,
        scenario,
        "--journal",
        str(journal_path),
    ]


def _run_scenario(
    scenario: str,
    preset: str,
    engine: str,
    workers: Optional[int],
    hash_seed: str,
    journal_path: Path,
    repo_root: Path,
) -> Optional[str]:
    """Run one journaled subprocess; returns an error string on failure."""
    command = _scenario_command(scenario, preset, engine, workers, journal_path)
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(repo_root / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    result = subprocess.run(
        command,
        cwd=str(repo_root),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    if result.returncode != 0:
        stderr = result.stderr.decode("utf-8", "replace").strip()
        return (
            f"{' '.join(command)} (PYTHONHASHSEED={hash_seed}) exited "
            f"{result.returncode}:\n{stderr}"
        )
    if not journal_path.exists():
        return f"{' '.join(command)} wrote no journal at {journal_path}"
    return None


def compare_texts(
    text_a: str, text_b: str
) -> Tuple[bool, Optional[Dict[str, Any]]]:
    """(identical-after-strip_wall, divergence context or None)."""
    a_lines = journal_lines(text_a)
    b_lines = journal_lines(text_b)
    index = first_divergence(a_lines, b_lines)
    if index is None:
        return True, None
    return False, describe_divergence(a_lines, b_lines, index)


# ---------------------------------------------------------------------- CLI


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.sanitize",
        description=(
            "run a journaled scenario twice under different "
            "PYTHONHASHSEED values and bisect any journal divergence"
        ),
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help=(
            "experiment name (fig2, table1, ...) or 'replay' for the "
            "runtime engine CLI"
        ),
    )
    parser.add_argument(
        "--preset",
        default="tiny",
        choices=["tiny", "small", "paper"],
        help="workload preset (default: tiny)",
    )
    parser.add_argument(
        "--engine",
        default="serial",
        choices=["auto", "serial", "process"],
        help="replay engine (replay scenario only; default: serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker processes (replay)"
    )
    parser.add_argument(
        "--hash-seeds",
        nargs=2,
        default=["0", "1"],
        metavar=("A", "B"),
        help="the two PYTHONHASHSEED values (default: 0 1)",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write the JSON divergence report here",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        type=Path,
        default=None,
        metavar=("A", "B"),
        help="diff two existing journal files instead of running anything",
    )
    options = parser.parse_args(argv)

    if options.diff is not None:
        texts: List[str] = []
        for path in options.diff:
            if not path.exists():
                print(f"no such journal: {path}", file=sys.stderr)
                return 2
            texts.append(path.read_text(encoding="utf-8"))
        report: Dict[str, Any] = {
            "mode": "diff",
            "journals": [str(p) for p in options.diff],
        }
        identical, divergence = compare_texts(texts[0], texts[1])
    else:
        if options.scenario is None:
            parser.print_usage(sys.stderr)
            print(
                "a scenario (or --diff A B) is required", file=sys.stderr
            )
            return 2
        report = {
            "mode": "run",
            "scenario": options.scenario,
            "preset": options.preset,
            "engine": options.engine,
            "workers": options.workers,
            "hash_seeds": list(options.hash_seeds),
        }
        repo_root = default_repo_root()
        texts = []
        with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as tmp:
            for run, hash_seed in enumerate(options.hash_seeds):
                journal_path = Path(tmp) / f"run{run}.jsonl"
                error = _run_scenario(
                    options.scenario,
                    options.preset,
                    options.engine,
                    options.workers,
                    hash_seed,
                    journal_path,
                    repo_root,
                )
                if error is not None:
                    print(error, file=sys.stderr)
                    return 2
                texts.append(journal_path.read_text(encoding="utf-8"))
        identical, divergence = compare_texts(texts[0], texts[1])

    report["identical"] = identical
    report["divergence"] = divergence
    if options.report is not None:
        options.report.parent.mkdir(parents=True, exist_ok=True)
        options.report.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if identical:
        records = len(journal_lines(texts[0]))
        print(f"OK: journals byte-identical after strip_wall ({records} records)")
        return 0
    print(_render_report(report))
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
